"""Area and power model at 22 nm (Fig. 10 of the paper).

The paper implements EdgeMM with Cadence Genus/Innovus in a commercial
TSMC 22 nm technology at 1 GHz and reports:

* total chip power of 112 mW (post-P&R),
* the SA coprocessor occupying 62 % of a CC-core's area,
* the CIM macro occupying 81 % of an MC-core's area.

We cannot rerun the physical flow, so this module provides an analytical
area/power model calibrated to those figures: per-block area/energy
coefficients are scaled so the default chip configuration reproduces the
published totals, while still responding sensibly to configuration changes
(more cores -> proportionally more area and power).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .chip import ChipConfig


@dataclass(frozen=True)
class TechnologyConfig:
    """Technology-node coefficients (defaults calibrated for 22 nm @ 1 GHz)."""

    node_nm: float = 22.0
    # Area coefficients in mm^2.
    host_core_area_mm2: float = 0.030
    sa_pe_area_um2: float = 180.0
    matrix_register_area_um2_per_bit: float = 0.35
    cim_bitcell_area_um2: float = 0.12
    cim_periphery_factor: float = 0.40
    sram_area_um2_per_bit: float = 0.22
    pruner_area_mm2: float = 0.004
    acu_area_mm2: float = 0.010
    dma_area_mm2: float = 0.012
    crossbar_area_mm2_per_port: float = 0.006
    # Power coefficients.
    leakage_mw_per_mm2: float = 1.2
    host_core_dynamic_mw: float = 0.55
    sa_mac_energy_pj: float = 0.55
    cim_mac_energy_pj: float = 0.18
    sram_access_energy_pj_per_byte: float = 0.9
    dram_access_energy_pj_per_byte: float = 16.0
    dynamic_activity_factor: float = 0.18

    def __post_init__(self) -> None:
        if self.node_nm <= 0:
            raise ValueError("node_nm must be positive")
        if self.dynamic_activity_factor <= 0 or self.dynamic_activity_factor > 1:
            raise ValueError("dynamic_activity_factor must be in (0, 1]")


@dataclass(frozen=True)
class AreaReport:
    """Per-block area breakdown in mm^2."""

    cc_core_mm2: float
    mc_core_mm2: float
    sa_fraction_of_cc_core: float
    cim_fraction_of_mc_core: float
    cc_cluster_mm2: float
    mc_cluster_mm2: float
    chip_mm2: float
    breakdown_mm2: Dict[str, float]


@dataclass(frozen=True)
class PowerReport:
    """Chip power breakdown in mW at a given utilisation."""

    leakage_mw: float
    host_cores_mw: float
    cc_compute_mw: float
    mc_compute_mw: float
    sram_mw: float
    total_mw: float


class AreaPowerModel:
    """Analytical area/power estimates for a chip configuration."""

    def __init__(
        self,
        chip: ChipConfig | None = None,
        technology: TechnologyConfig | None = None,
    ) -> None:
        self.chip = chip or ChipConfig()
        self.technology = technology or TechnologyConfig()

    # ------------------------------------------------------------------
    # Area
    # ------------------------------------------------------------------
    def cc_core_area_mm2(self) -> float:
        tech = self.technology
        sa_cfg = self.chip.group.cc_cluster.core.systolic
        pe_area = sa_cfg.rows * sa_cfg.cols * tech.sa_pe_area_um2 / 1e6
        reg_bits = (
            sa_cfg.matrix_registers
            * sa_cfg.rows
            * sa_cfg.cols
            * sa_cfg.accumulator_bits
        )
        reg_area = reg_bits * tech.matrix_register_area_um2_per_bit / 1e6
        return tech.host_core_area_mm2 + pe_area + reg_area

    def sa_area_mm2(self) -> float:
        return self.cc_core_area_mm2() - self.technology.host_core_area_mm2

    def mc_core_area_mm2(self) -> float:
        tech = self.technology
        cim_cfg = self.chip.group.mc_cluster.core.cim
        bitcells = cim_cfg.storage_bits
        cim_area = bitcells * tech.cim_bitcell_area_um2 / 1e6
        cim_area *= 1.0 + tech.cim_periphery_factor
        return tech.host_core_area_mm2 + cim_area + tech.pruner_area_mm2

    def cim_area_mm2(self) -> float:
        return (
            self.mc_core_area_mm2()
            - self.technology.host_core_area_mm2
            - self.technology.pruner_area_mm2
        )

    def cc_cluster_area_mm2(self) -> float:
        tech = self.technology
        cluster = self.chip.group.cc_cluster
        cores = cluster.n_cores * self.cc_core_area_mm2()
        sram_bits = 8 * (cluster.data_memory_bytes + cluster.instruction_memory_bytes)
        sram = sram_bits * tech.sram_area_um2_per_bit / 1e6
        return cores + sram + tech.acu_area_mm2 + tech.dma_area_mm2 + tech.host_core_area_mm2

    def mc_cluster_area_mm2(self) -> float:
        tech = self.technology
        cluster = self.chip.group.mc_cluster
        cores = cluster.n_cores * self.mc_core_area_mm2()
        sram_bits = 8 * (cluster.shared_buffer_bytes + cluster.instruction_memory_bytes)
        sram = sram_bits * tech.sram_area_um2_per_bit / 1e6
        return cores + sram + tech.acu_area_mm2 + tech.dma_area_mm2 + tech.host_core_area_mm2

    def chip_area_mm2(self) -> float:
        tech = self.technology
        cfg = self.chip
        clusters = (
            cfg.n_cc_clusters * self.cc_cluster_area_mm2()
            + cfg.n_mc_clusters * self.mc_cluster_area_mm2()
        )
        xbar_ports = cfg.n_groups + cfg.n_cc_clusters + cfg.n_mc_clusters
        interconnect = xbar_ports * tech.crossbar_area_mm2_per_port
        return clusters + interconnect

    def area_report(self) -> AreaReport:
        cc_core = self.cc_core_area_mm2()
        mc_core = self.mc_core_area_mm2()
        breakdown = {
            "cc_clusters": self.chip.n_cc_clusters * self.cc_cluster_area_mm2(),
            "mc_clusters": self.chip.n_mc_clusters * self.mc_cluster_area_mm2(),
            "interconnect": self.chip_area_mm2()
            - self.chip.n_cc_clusters * self.cc_cluster_area_mm2()
            - self.chip.n_mc_clusters * self.mc_cluster_area_mm2(),
        }
        return AreaReport(
            cc_core_mm2=cc_core,
            mc_core_mm2=mc_core,
            sa_fraction_of_cc_core=self.sa_area_mm2() / cc_core,
            cim_fraction_of_mc_core=self.cim_area_mm2() / mc_core,
            cc_cluster_mm2=self.cc_cluster_area_mm2(),
            mc_cluster_mm2=self.mc_cluster_area_mm2(),
            chip_mm2=self.chip_area_mm2(),
            breakdown_mm2=breakdown,
        )

    # ------------------------------------------------------------------
    # Power
    # ------------------------------------------------------------------
    def power_report(self, utilization: float = 1.0) -> PowerReport:
        """Chip power at a given average compute utilisation in [0, 1]."""
        if not 0.0 <= utilization <= 1.0:
            raise ValueError("utilization must be in [0, 1]")
        tech = self.technology
        cfg = self.chip
        frequency = cfg.frequency_hz

        leakage = self.chip_area_mm2() * tech.leakage_mw_per_mm2
        host_cores = cfg.total_cores * tech.host_core_dynamic_mw * tech.dynamic_activity_factor

        sa_cfg = cfg.group.cc_cluster.core.systolic
        cc_macs_per_s = (
            cfg.n_cc_cores * sa_cfg.rows * sa_cfg.cols * frequency * utilization
        )
        cc_compute = cc_macs_per_s * tech.sa_mac_energy_pj * 1e-12 * 1e3  # mW

        cim_cfg = cfg.group.mc_cluster.core.cim
        mc_macs_per_s = (
            cfg.n_mc_cores
            * cim_cfg.macs_per_gemv_block
            / (cim_cfg.activation_bits + 1)
            * frequency
            * utilization
        )
        mc_compute = mc_macs_per_s * tech.cim_mac_energy_pj * 1e-12 * 1e3

        sram_bytes_per_s = cfg.n_cc_clusters * 64.0 * frequency * utilization * 0.05
        sram = sram_bytes_per_s * tech.sram_access_energy_pj_per_byte * 1e-12 * 1e3

        # Activity-scale the dynamic compute contributions so the default
        # configuration lands near the published 112 mW post-P&R figure.
        cc_compute *= tech.dynamic_activity_factor
        mc_compute *= tech.dynamic_activity_factor

        total = leakage + host_cores + cc_compute + mc_compute + sram
        return PowerReport(
            leakage_mw=leakage,
            host_cores_mw=host_cores,
            cc_compute_mw=cc_compute,
            mc_compute_mw=mc_compute,
            sram_mw=sram,
            total_mw=total,
        )

    def energy_per_token_j(self, tokens_per_second: float, utilization: float = 0.6) -> float:
        """Joules per generated token at a given throughput (Table II)."""
        if tokens_per_second <= 0:
            raise ValueError("tokens_per_second must be positive")
        power_w = self.power_report(utilization).total_mw / 1e3
        return power_w / tokens_per_second

    def tokens_per_joule(self, tokens_per_second: float, utilization: float = 0.6) -> float:
        return 1.0 / self.energy_per_token_j(tokens_per_second, utilization)
