"""Shared auxiliary compute units (ACU).

Each EdgeMM cluster shares a small pool of auxiliary compute units — 32-bit
multipliers, dividers and special-function units — among its cores for the
"uncommon" calculations that neither the systolic array nor the CIM macro
handles natively: softmax exponentials, RMS-norm reciprocal square roots,
activation functions evaluated outside the vector unit's LUT range, and
address arithmetic for irregular access patterns.

The ACU model provides per-operation cycle costs and an occupancy estimate
when several cores contend for the shared pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


#: Default cycle cost of each ACU operation class.
DEFAULT_OP_CYCLES: Dict[str, int] = {
    "mul32": 3,
    "div32": 16,
    "sqrt": 14,
    "exp": 18,
    "reciprocal": 12,
}


@dataclass(frozen=True)
class ACUConfig:
    """Configuration of one cluster's shared ACU pool."""

    units: int = 4
    op_cycles: Dict[str, int] = field(default_factory=lambda: dict(DEFAULT_OP_CYCLES))

    def __post_init__(self) -> None:
        if self.units <= 0:
            raise ValueError("units must be positive")
        for name, cycles in self.op_cycles.items():
            if cycles <= 0:
                raise ValueError(f"cycle cost of {name!r} must be positive")


class AuxiliaryComputeUnits:
    """Throughput model of a cluster's shared ACU pool."""

    def __init__(self, config: ACUConfig | None = None) -> None:
        self.config = config or ACUConfig()

    def op_cycles(self, op: str) -> int:
        """Latency of a single operation of the given class."""
        try:
            return self.config.op_cycles[op]
        except KeyError:
            raise KeyError(
                f"unknown ACU operation {op!r}; known: "
                f"{', '.join(sorted(self.config.op_cycles))}"
            ) from None

    def batch_cycles(self, op_counts: Dict[str, int], *, requesting_cores: int = 1) -> float:
        """Cycles to drain a batch of operations issued by several cores.

        Operations are pipelined across the ``units`` in the pool; when more
        cores request than there are units, the pool time-shares and the
        batch takes proportionally longer.
        """
        if requesting_cores <= 0:
            raise ValueError("requesting_cores must be positive")
        total_cycles = 0
        for op, count in op_counts.items():
            if count < 0:
                raise ValueError("operation counts must be >= 0")
            total_cycles += count * self.op_cycles(op)
        parallelism = min(self.config.units, max(requesting_cores, 1))
        return total_cycles / parallelism

    def softmax_cycles(self, elements: int, *, requesting_cores: int = 1) -> float:
        """Approximate ACU cycles for a softmax over ``elements`` values.

        Each element needs one exponential; the normalisation adds one
        reciprocal and one multiply per element.
        """
        if elements <= 0:
            raise ValueError("elements must be positive")
        return self.batch_cycles(
            {"exp": elements, "reciprocal": 1, "mul32": elements},
            requesting_cores=requesting_cores,
        )

    def rmsnorm_cycles(self, elements: int, *, requesting_cores: int = 1) -> float:
        """Approximate ACU cycles for an RMS-norm over ``elements`` values."""
        if elements <= 0:
            raise ValueError("elements must be positive")
        return self.batch_cycles(
            {"mul32": 2 * elements, "sqrt": 1, "reciprocal": 1},
            requesting_cores=requesting_cores,
        )
