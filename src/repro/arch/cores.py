"""Core-level models: RISC-V host cores and the two AI-extended core types.

EdgeMM cores pair an area-efficient Snitch-style RISC-V host core (control,
scalar and narrow-SIMD work) with an AI coprocessor reached through a
direct-linked interface:

* :class:`CCCore` — host core + systolic-array coprocessor (GEMM),
* :class:`MCCore` — host core + digital CIM macro + hardware Act-Aware
  pruner (GEMV).

The host core model also serves as the building block of the original
Snitch-cluster baseline (SIMD execution without the AI extensions).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from .cim import CIMMacro, CIMMacroConfig
from .pruner_hw import HardwarePruner, PrunerConfig
from .systolic import SystolicArray, SystolicArrayConfig


@dataclass(frozen=True)
class HostCoreConfig:
    """A Snitch-style in-order RISC-V host core.

    Attributes
    ----------
    simd_lanes:
        Number of SIMD lanes available for FP math without the AI
        extension (the baseline configuration).
    macs_per_lane_per_cycle:
        MACs each lane retires per cycle when streaming (Snitch's FPU with
        its stream semantics sustains close to 1 MAC/lane/cycle).
    issue_overhead_factor:
        Multiplier on ideal cycles accounting for load/store and loop
        overhead when the host core executes kernels without a coprocessor.
    """

    simd_lanes: int = 2
    macs_per_lane_per_cycle: float = 1.0
    issue_overhead_factor: float = 1.6

    def __post_init__(self) -> None:
        if self.simd_lanes <= 0:
            raise ValueError("simd_lanes must be positive")
        if self.macs_per_lane_per_cycle <= 0:
            raise ValueError("macs_per_lane_per_cycle must be positive")
        if self.issue_overhead_factor < 1.0:
            raise ValueError("issue_overhead_factor must be >= 1")

    @property
    def macs_per_cycle(self) -> float:
        return self.simd_lanes * self.macs_per_lane_per_cycle


class HostCore:
    """Cycle model of the host core executing matmul kernels in SIMD."""

    def __init__(self, config: Optional[HostCoreConfig] = None) -> None:
        self.config = config or HostCoreConfig()

    def matmul_cycles(self, m: int, k: int, n: int) -> float:
        """Cycles for an (m x k) @ (k x n) product on the SIMD datapath."""
        if m <= 0 or k <= 0 or n <= 0:
            raise ValueError("matmul dimensions must be positive")
        macs = m * k * n
        ideal = macs / self.config.macs_per_cycle
        return ideal * self.config.issue_overhead_factor

    def elementwise_cycles(self, elements: int, flops_per_element: float = 1.0) -> float:
        if elements <= 0:
            raise ValueError("elements must be positive")
        if flops_per_element <= 0:
            raise ValueError("flops_per_element must be positive")
        per_cycle = self.config.simd_lanes
        return elements * flops_per_element / per_cycle * self.config.issue_overhead_factor


@dataclass(frozen=True)
class CCCoreConfig:
    """A compute-centric core: host core + systolic-array coprocessor."""

    host: HostCoreConfig = field(default_factory=HostCoreConfig)
    systolic: SystolicArrayConfig = field(default_factory=SystolicArrayConfig)
    dispatch_overhead_cycles: int = 4


@dataclass(frozen=True)
class MCCoreConfig:
    """A memory-centric core: host core + CIM macro + hardware pruner."""

    host: HostCoreConfig = field(default_factory=HostCoreConfig)
    cim: CIMMacroConfig = field(default_factory=CIMMacroConfig)
    pruner: PrunerConfig = field(default_factory=PrunerConfig)
    dispatch_overhead_cycles: int = 4


class CCCore:
    """Compute-centric core: GEMM runs on the SA, elementwise on the vector unit."""

    def __init__(self, config: Optional[CCCoreConfig] = None) -> None:
        self.config = config or CCCoreConfig()
        self.host = HostCore(self.config.host)
        self.systolic = SystolicArray(self.config.systolic)

    def gemm_cycles(self, m: int, k: int, n: int) -> float:
        """GEMM cycles on the SA coprocessor, including dispatch overhead."""
        return self.systolic.gemm_cycles(m, k, n) + self.config.dispatch_overhead_cycles

    def gemv_cycles(self, k: int, n: int) -> float:
        """GEMV falls back to the SA with a single activation column (inefficient)."""
        return self.systolic.gemv_cycles(k, n) + self.config.dispatch_overhead_cycles

    def elementwise_cycles(self, elements: int, flops_per_element: float = 1.0) -> float:
        """Elementwise work on the C-wide vector unit sharing the matrix registers."""
        if elements <= 0:
            raise ValueError("elements must be positive")
        lanes = self.config.systolic.cols
        return math.ceil(elements / lanes) * max(flops_per_element, 1.0)

    @property
    def peak_macs_per_cycle(self) -> float:
        return float(self.config.systolic.rows * self.config.systolic.cols)


class MCCore:
    """Memory-centric core: GEMV runs on the CIM macro, pruning in hardware."""

    def __init__(self, config: Optional[MCCoreConfig] = None) -> None:
        self.config = config or MCCoreConfig()
        self.host = HostCore(self.config.host)
        self.cim = CIMMacro(self.config.cim)
        self.pruner = HardwarePruner(self.config.pruner)

    def gemv_cycles(self, k: int, n: int) -> float:
        """GEMV cycles on the CIM macro, including dispatch overhead."""
        return self.cim.gemv_cycles(k, n) + self.config.dispatch_overhead_cycles

    def gemm_cycles(self, m: int, k: int, n: int) -> float:
        """GEMM on the CIM macro pays the bit-serial factor W per row (Eq. 3)."""
        return self.cim.gemm_cycles(m, k, n) + self.config.dispatch_overhead_cycles

    def elementwise_cycles(self, elements: int, flops_per_element: float = 1.0) -> float:
        """Elementwise work on the core's vector unit (width = CIM columns)."""
        if elements <= 0:
            raise ValueError("elements must be positive")
        lanes = self.config.cim.columns
        return math.ceil(elements / lanes) * max(flops_per_element, 1.0)

    def pruned_gemv_cycles(self, k: int, n: int, keep_fraction: float) -> float:
        """GEMV cycles after pruning the reduction dimension to ``keep_fraction``.

        Channel pruning removes rows of the weight matrix, shrinking the
        reduction dimension ``k``; the pruner invocation cost is added.
        """
        if not 0.0 < keep_fraction <= 1.0:
            raise ValueError("keep_fraction must be in (0, 1]")
        kept_k = max(int(round(k * keep_fraction)), 1)
        slice_length = min(self.config.pruner.vector_length, k)
        kept_in_slice = max(int(round(slice_length * keep_fraction)), 1)
        pruner_cycles = self.pruner.invocation_cycles(slice_length, kept_in_slice)
        return self.gemv_cycles(kept_k, n) + pruner_cycles

    @property
    def peak_macs_per_cycle(self) -> float:
        return self.cim.peak_macs_per_cycle()

    @property
    def weight_storage_bytes(self) -> int:
        return self.config.cim.storage_bytes
