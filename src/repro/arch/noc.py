"""Hierarchical AXI-crossbar interconnect model.

EdgeMM connects cores into clusters via a cluster bus, clusters into groups
via a cluster AXI crossbar, and groups to the DRAM controller via the system
AXI crossbar (Fig. 4).  For the phase-level performance model the crossbars
contribute (a) a fixed traversal latency per request and (b) a shared
bandwidth ceiling per level; both are small compared with DRAM but the model
keeps them explicit so scaling studies can stress them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence


@dataclass(frozen=True)
class CrossbarConfig:
    """One crossbar level of the interconnect hierarchy."""

    name: str
    ports: int
    latency_cycles: int = 4
    bytes_per_cycle_per_port: float = 64.0

    def __post_init__(self) -> None:
        if self.ports <= 0:
            raise ValueError("ports must be positive")
        if self.latency_cycles < 0:
            raise ValueError("latency_cycles must be >= 0")
        if self.bytes_per_cycle_per_port <= 0:
            raise ValueError("bytes_per_cycle_per_port must be positive")

    @property
    def aggregate_bytes_per_cycle(self) -> float:
        return self.ports * self.bytes_per_cycle_per_port


@dataclass(frozen=True)
class InterconnectConfig:
    """The three-level hierarchy: cluster bus -> group crossbar -> system crossbar."""

    cluster_bus: CrossbarConfig = CrossbarConfig(name="cluster_bus", ports=8, latency_cycles=2)
    group_crossbar: CrossbarConfig = CrossbarConfig(name="group_xbar", ports=4, latency_cycles=4)
    system_crossbar: CrossbarConfig = CrossbarConfig(name="system_xbar", ports=4, latency_cycles=6)

    @property
    def levels(self) -> Sequence[CrossbarConfig]:
        return (self.cluster_bus, self.group_crossbar, self.system_crossbar)

    @property
    def total_traversal_latency_cycles(self) -> int:
        """Round-trip request latency from a core to the DRAM controller."""
        return sum(level.latency_cycles for level in self.levels)


class InterconnectModel:
    """Latency and contention model of the hierarchical AXI fabric."""

    def __init__(self, config: InterconnectConfig | None = None) -> None:
        self.config = config or InterconnectConfig()

    def request_latency_cycles(self) -> int:
        """Fixed crossbar traversal latency for one DMA request."""
        return self.config.total_traversal_latency_cycles

    def min_bytes_per_cycle(self) -> float:
        """The tightest aggregate bandwidth ceiling across the hierarchy."""
        return min(level.aggregate_bytes_per_cycle for level in self.config.levels)

    def contention_factor(self, active_requesters: int, level: CrossbarConfig) -> float:
        """Slowdown factor when more requesters than ports compete at a level.

        With up to ``ports`` simultaneous requesters the crossbar is
        non-blocking (factor 1.0); beyond that, requesters time-share ports.
        """
        if active_requesters <= 0:
            raise ValueError("active_requesters must be positive")
        if active_requesters <= level.ports:
            return 1.0
        return active_requesters / level.ports

    def effective_transfer_cycles(
        self, payload_bytes: int, active_requesters: int = 1
    ) -> float:
        """Cycles for a payload to traverse the fabric under contention."""
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be >= 0")
        if payload_bytes == 0:
            return 0.0
        worst = 1.0
        for level in self.config.levels:
            worst = max(worst, self.contention_factor(active_requesters, level))
        stream = payload_bytes / self.min_bytes_per_cycle()
        return self.request_latency_cycles() + stream * worst

    def bisection_bandwidth_bytes_per_cycle(self) -> float:
        """Aggregate bandwidth between the group level and the system level."""
        return min(
            self.config.group_crossbar.aggregate_bytes_per_cycle,
            self.config.system_crossbar.aggregate_bytes_per_cycle,
        )
