"""DRAM controller and effective-bandwidth model.

Each cluster's DMA engine issues burst transfers to the shared DRAM
controller.  Small transfers amortise their fixed request overhead poorly,
so the *effective* bandwidth (payload bytes / total cycles) is well below
the ideal pin bandwidth for small matrices and approaches it asymptotically
for large ones — the behaviour shown in Fig. 6(b) of the paper and the
reason the MC-cluster's large data memory improves DMA/DRAM efficiency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class DRAMConfig:
    """Parameters of the shared edge DRAM subsystem.

    Attributes
    ----------
    peak_bandwidth_bytes_per_s:
        Ideal pin bandwidth (default: 96-bit LPDDR5X ~ 102.4 GB/s, a
        realistic premium-edge configuration; the paper does not state its
        DRAM part).
    frequency_hz:
        Chip clock used to convert cycles <-> seconds (1 GHz in the paper).
    request_overhead_cycles:
        Fixed per-transfer overhead: DMA programming, AXI handshakes,
        DRAM row activation — paid once per contiguous transfer.
    max_burst_bytes:
        Largest contiguous burst a single DMA request can cover; larger
        transfers are split into several bursts but pay the request
        overhead only once.
    """

    peak_bandwidth_bytes_per_s: float = 102.4e9
    frequency_hz: float = 1.0e9
    request_overhead_cycles: int = 200
    max_burst_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.peak_bandwidth_bytes_per_s <= 0:
            raise ValueError("peak_bandwidth_bytes_per_s must be positive")
        if self.frequency_hz <= 0:
            raise ValueError("frequency_hz must be positive")
        if self.request_overhead_cycles < 0:
            raise ValueError("request_overhead_cycles must be >= 0")
        if self.max_burst_bytes <= 0:
            raise ValueError("max_burst_bytes must be positive")

    @property
    def bytes_per_cycle(self) -> float:
        """Ideal payload bytes transferred per chip clock cycle."""
        return self.peak_bandwidth_bytes_per_s / self.frequency_hz


class DRAMModel:
    """Effective-bandwidth and transfer-latency model of the DRAM subsystem."""

    def __init__(self, config: DRAMConfig | None = None) -> None:
        self.config = config or DRAMConfig()

    # ------------------------------------------------------------------
    # Transfer latency
    # ------------------------------------------------------------------
    def transfer_cycles(self, payload_bytes: int, *, transfers: int = 1) -> float:
        """Cycles to move ``payload_bytes`` split across ``transfers`` requests.

        Each request pays the fixed overhead once; the payload streams at the
        ideal bytes/cycle rate.
        """
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be >= 0")
        if transfers <= 0:
            raise ValueError("transfers must be positive")
        if payload_bytes == 0:
            return 0.0
        cfg = self.config
        stream_cycles = payload_bytes / cfg.bytes_per_cycle
        return transfers * cfg.request_overhead_cycles + stream_cycles

    def transfer_seconds(self, payload_bytes: int, *, transfers: int = 1) -> float:
        return self.transfer_cycles(payload_bytes, transfers=transfers) / self.config.frequency_hz

    def transfers_for(self, payload_bytes: int, buffer_bytes: int) -> int:
        """Number of DMA requests needed given the on-chip buffer size.

        A cluster can only request as much data as fits in its data memory
        at once, so the transfer count is ``ceil(payload / buffer)``.  This
        is the mechanism behind Fig. 6(b): MC-clusters with larger data
        memories issue fewer, larger transfers.
        """
        if buffer_bytes <= 0:
            raise ValueError("buffer_bytes must be positive")
        if payload_bytes <= 0:
            return 0
        return math.ceil(payload_bytes / buffer_bytes)

    # ------------------------------------------------------------------
    # Effective bandwidth (Fig. 6(b))
    # ------------------------------------------------------------------
    def effective_bandwidth(self, transfer_bytes: int) -> float:
        """Effective bytes/s of a single transfer of the given size."""
        if transfer_bytes <= 0:
            raise ValueError("transfer_bytes must be positive")
        cycles = self.transfer_cycles(transfer_bytes, transfers=1)
        seconds = cycles / self.config.frequency_hz
        return transfer_bytes / seconds

    def effective_bandwidth_fraction(self, transfer_bytes: int) -> float:
        """Effective bandwidth as a fraction of the ideal pin bandwidth."""
        return self.effective_bandwidth(transfer_bytes) / self.config.peak_bandwidth_bytes_per_s

    def effective_bandwidth_curve(
        self, transfer_sizes: Sequence[int]
    ) -> list:
        """(size, effective bandwidth, fraction of ideal) for each size."""
        curve = []
        for size in transfer_sizes:
            bandwidth = self.effective_bandwidth(size)
            curve.append((size, bandwidth, bandwidth / self.config.peak_bandwidth_bytes_per_s))
        return curve

    def matrix_transfer_bytes(self, rows: int, cols: int, element_bytes: float = 1.0) -> int:
        """Payload size of a rows x cols matrix."""
        if rows <= 0 or cols <= 0:
            raise ValueError("matrix dimensions must be positive")
        if element_bytes <= 0:
            raise ValueError("element_bytes must be positive")
        return int(round(rows * cols * element_bytes))
