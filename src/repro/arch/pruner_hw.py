"""Hardware Act-Aware pruner of the MC-core (Fig. 8(b) of the paper).

Each MC-core contains a small hardware unit invoked by a dedicated
instruction that processes the slice of the activation vector assigned to
the core:

* the **Top-k engine** finds the ``k`` largest-magnitude elements in the
  vector register ``vs`` and marks them in the **index register**;
* the **th-mask** compares every element against ``max(|vs|) / t`` and
  reports the count ``n`` of elements above the threshold (used by Alg. 1
  to update ``k``);
* the **address generator** turns the index register into DRAM addresses of
  the non-pruned weight rows;
* the masked and compacted activations are written to the destination
  vector register ``vd`` for the CIM macro to consume.

The model is functional (NumPy) with a cycle estimate so both the pruning
algorithm and the performance simulator can use it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class PrunerConfig:
    """Parameters of the per-core hardware pruner.

    Attributes
    ----------
    vector_length:
        Number of activation channels the core's register slice holds.
    threshold_divisor:
        The fixed ``t`` of Alg. 1: channels smaller than ``max/t`` are
        negligible (the paper sets t = 16).
    elements_per_cycle:
        Comparator throughput of the Top-k engine and th-mask.
    weight_row_bytes:
        Bytes of one weight row fetched per retained channel (used by the
        address generator to size the DRAM requests).
    base_address:
        Base DRAM address of the weight matrix slice this core owns.
    """

    vector_length: int = 64
    threshold_divisor: float = 16.0
    elements_per_cycle: int = 8
    weight_row_bytes: int = 64
    base_address: int = 0

    def __post_init__(self) -> None:
        if self.vector_length <= 0:
            raise ValueError("vector_length must be positive")
        if self.threshold_divisor <= 1.0:
            raise ValueError("threshold_divisor must be > 1")
        if self.elements_per_cycle <= 0:
            raise ValueError("elements_per_cycle must be positive")
        if self.weight_row_bytes <= 0:
            raise ValueError("weight_row_bytes must be positive")
        if self.base_address < 0:
            raise ValueError("base_address must be >= 0")


@dataclass(frozen=True)
class PrunerResult:
    """Outputs of one hardware-pruner invocation."""

    index_mask: np.ndarray
    selected_values: np.ndarray
    selected_channels: np.ndarray
    weight_addresses: np.ndarray
    above_threshold_count: int
    cycles: int

    @property
    def kept(self) -> int:
        return int(self.index_mask.sum())

    @property
    def pruning_ratio(self) -> float:
        total = self.index_mask.size
        if total == 0:
            return 0.0
        return 1.0 - self.kept / total


class HardwarePruner:
    """Functional + cycle model of the MC-core Act-Aware pruner."""

    def __init__(self, config: PrunerConfig | None = None) -> None:
        self.config = config or PrunerConfig()

    # ------------------------------------------------------------------
    # Individual hardware blocks
    # ------------------------------------------------------------------
    def topk_mask(self, vs: np.ndarray, k: int) -> np.ndarray:
        """Index-register contents: 1 for the k largest-magnitude elements."""
        vs = self._check_vector(vs)
        if k < 0:
            raise ValueError("k must be >= 0")
        mask = np.zeros(vs.size, dtype=bool)
        if k == 0:
            return mask
        k = min(k, vs.size)
        magnitudes = np.abs(vs)
        # argpartition gives the k largest without a full sort, mirroring the
        # iterative max-search the hardware Top-k engine performs.
        top_indices = np.argpartition(magnitudes, vs.size - k)[vs.size - k:]
        mask[top_indices] = True
        return mask

    def threshold_count(self, vs: np.ndarray) -> int:
        """th-mask output: count of channels with |v| > max(|v|) / t."""
        vs = self._check_vector(vs)
        magnitudes = np.abs(vs)
        peak = magnitudes.max()
        if peak == 0.0:
            return 0
        threshold = peak / self.config.threshold_divisor
        return int(np.count_nonzero(magnitudes > threshold))

    def generate_addresses(self, index_mask: np.ndarray) -> np.ndarray:
        """DRAM addresses of the weight rows selected by the index register."""
        index_mask = np.asarray(index_mask, dtype=bool)
        channels = np.flatnonzero(index_mask)
        return self.config.base_address + channels * self.config.weight_row_bytes

    # ------------------------------------------------------------------
    # Full pruner invocation
    # ------------------------------------------------------------------
    def process(self, vs: np.ndarray, k: int) -> PrunerResult:
        """Run the full pruner pipeline on one activation slice.

        Returns the index mask, the compacted activation values (the ``vd``
        register contents), the selected channel indices, the generated
        weight-row addresses, the th-mask count ``n`` and a cycle estimate.
        """
        vs = self._check_vector(vs)
        mask = self.topk_mask(vs, k)
        n_above = self.threshold_count(vs)
        channels = np.flatnonzero(mask)
        values = vs[channels]
        addresses = self.generate_addresses(mask)
        return PrunerResult(
            index_mask=mask,
            selected_values=values,
            selected_channels=channels,
            weight_addresses=addresses,
            above_threshold_count=n_above,
            cycles=self.invocation_cycles(vs.size, int(mask.sum())),
        )

    def invocation_cycles(self, vector_length: int, kept: int) -> int:
        """Cycle estimate: scan for Top-k/th-mask plus compaction writeback."""
        if vector_length <= 0:
            raise ValueError("vector_length must be positive")
        if kept < 0 or kept > vector_length:
            raise ValueError("kept must be in [0, vector_length]")
        scan = -(-vector_length // self.config.elements_per_cycle)  # ceil div
        compact = -(-max(kept, 1) // self.config.elements_per_cycle)
        return 2 * scan + compact

    def _check_vector(self, vs: np.ndarray) -> np.ndarray:
        vs = np.asarray(vs, dtype=float)
        if vs.ndim != 1:
            raise ValueError("vs must be a one-dimensional vector")
        if vs.size == 0:
            raise ValueError("vs must not be empty")
        if vs.size > self.config.vector_length:
            raise ValueError(
                f"vs has {vs.size} elements but the pruner register holds "
                f"{self.config.vector_length}"
            )
        return vs
