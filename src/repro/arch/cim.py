"""Digital compute-in-memory (CIM) macro model for memory-centric (MC) cores.

The MC-core coprocessor integrates the compute cells inside the SRAM macro:
``C`` columns, each with ``R`` subarrays of ``M x N`` 6T bit-cells (``N`` is
the weight bit width), an adder tree and a shift-and-accumulate unit.  A
``W``-bit activation is broadcast bit-serially into the columns; one weight
per subarray is read and multiplied by one activation bit each cycle.

The paper's latency model (Eq. 3): a GEMV completes in ``W + 1`` cycles and
an ``M``-row GEMM takes

    L_CIM = M * W + 1

cycles.  The broadcast dataflow keeps every compute cell busy during GEMV —
the opposite utilisation profile of the systolic array.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CIMMacroConfig:
    """Geometry and datapath parameters of one digital CIM macro.

    Attributes
    ----------
    columns:
        Number of columns (C); each produces one output-channel partial sum.
    subarrays_per_column:
        Number of subarrays per column (R); the reduction depth handled by
        the adder tree each cycle.
    rows_per_subarray:
        Weight rows stored per subarray (M); together with ``columns`` this
        bounds the weight block resident in the macro.
    weight_bits:
        Weight storage width (N); equals the subarray word width.
    activation_bits:
        Activation width (W) broadcast bit-serially.
    """

    columns: int = 64
    subarrays_per_column: int = 16
    rows_per_subarray: int = 256
    weight_bits: int = 8
    activation_bits: int = 16

    def __post_init__(self) -> None:
        for label, value in (
            ("columns", self.columns),
            ("subarrays_per_column", self.subarrays_per_column),
            ("rows_per_subarray", self.rows_per_subarray),
            ("weight_bits", self.weight_bits),
            ("activation_bits", self.activation_bits),
        ):
            if value <= 0:
                raise ValueError(f"{label} must be positive")

    @property
    def storage_bits(self) -> int:
        """Total weight storage capacity of the macro in bits."""
        return (
            self.columns
            * self.subarrays_per_column
            * self.rows_per_subarray
            * self.weight_bits
        )

    @property
    def storage_bytes(self) -> int:
        return self.storage_bits // 8

    @property
    def reduction_depth(self) -> int:
        """Input channels reduced per cycle (one per subarray per column)."""
        return self.subarrays_per_column

    @property
    def parallel_outputs(self) -> int:
        """Output channels produced in parallel (one per column)."""
        return self.columns

    @property
    def macs_per_gemv_block(self) -> int:
        """MACs completed per (R-input x C-output) GEMV block."""
        return self.subarrays_per_column * self.columns


class CIMMacro:
    """Cycle model of a single digital CIM macro."""

    def __init__(self, config: CIMMacroConfig | None = None) -> None:
        self.config = config or CIMMacroConfig()

    # ------------------------------------------------------------------
    # Paper Eq. 3 and its tiled generalisation
    # ------------------------------------------------------------------
    def block_gemv_cycles(self) -> int:
        """Cycles for one GEMV block held in the macro (Eq. 3 with M = 1)."""
        return self.config.activation_bits + 1

    def block_gemm_cycles(self, m: int) -> int:
        """Cycles for an M-row GEMM against the resident weight block (Eq. 3)."""
        if m <= 0:
            raise ValueError("m must be positive")
        return m * self.config.activation_bits + 1

    def gemv_cycles(self, k: int, n: int) -> int:
        """Cycles for a (1 x k) @ (k x n) GEMV tiled over the macro geometry.

        The reduction dimension ``k`` is split across the ``R`` subarrays and
        the output dimension ``n`` across the ``C`` columns; each (R x C)
        block costs ``W + 1`` cycles.
        """
        if k <= 0 or n <= 0:
            raise ValueError("GEMV dimensions must be positive")
        cfg = self.config
        k_tiles = math.ceil(k / cfg.subarrays_per_column)
        n_tiles = math.ceil(n / cfg.columns)
        return k_tiles * n_tiles * self.block_gemv_cycles()

    def gemm_cycles(self, m: int, k: int, n: int) -> int:
        """Cycles for an (m x k) @ (k x n) GEMM.

        The bit-serial broadcast makes GEMM cost scale with ``m * W`` —
        the factor that makes the CIM macro *less* efficient than the SA for
        compute-dense GEMM, as the paper notes.
        """
        if m <= 0 or k <= 0 or n <= 0:
            raise ValueError("GEMM dimensions must be positive")
        cfg = self.config
        k_tiles = math.ceil(k / cfg.subarrays_per_column)
        n_tiles = math.ceil(n / cfg.columns)
        return k_tiles * n_tiles * self.block_gemm_cycles(m)

    # ------------------------------------------------------------------
    # Derived figures
    # ------------------------------------------------------------------
    def gemv_utilization(self, k: int, n: int) -> float:
        """Achieved MACs/cycle over peak for a GEMV."""
        cycles = self.gemv_cycles(k, n)
        macs = k * n
        peak = self.config.macs_per_gemv_block / self.block_gemv_cycles()
        if cycles == 0 or peak == 0:
            return 0.0
        return (macs / cycles) / peak

    def effective_macs_per_cycle(self, m: int, k: int, n: int) -> float:
        cycles = self.gemm_cycles(m, k, n)
        if cycles == 0:
            return 0.0
        return (m * k * n) / cycles

    def fits_weights(self, k: int, n: int) -> bool:
        """Whether a k x n weight matrix fits in the macro's SRAM."""
        needed_bits = k * n * self.config.weight_bits
        return needed_bits <= self.config.storage_bits

    def weight_fill_cycles(self, k: int, n: int, bytes_per_cycle: int) -> int:
        """Cycles to (re)fill a k x n weight block into the macro SRAM."""
        if bytes_per_cycle <= 0:
            raise ValueError("bytes_per_cycle must be positive")
        weight_bytes = k * n * self.config.weight_bits // 8
        return math.ceil(weight_bytes / bytes_per_cycle)

    def peak_macs_per_cycle(self) -> float:
        """Peak sustained MACs per cycle during GEMV streaming."""
        return self.config.macs_per_gemv_block / self.block_gemv_cycles()

    def peak_flops(self, frequency_hz: float) -> float:
        if frequency_hz <= 0:
            raise ValueError("frequency_hz must be positive")
        return 2.0 * self.peak_macs_per_cycle() * frequency_hz
