"""Hardware building blocks of the EdgeMM architecture."""

from .systolic import SystolicArray, SystolicArrayConfig
from .cim import CIMMacro, CIMMacroConfig
from .pruner_hw import HardwarePruner, PrunerConfig, PrunerResult
from .acu import ACUConfig, AuxiliaryComputeUnits, DEFAULT_OP_CYCLES
from .cores import (
    CCCore,
    CCCoreConfig,
    HostCore,
    HostCoreConfig,
    MCCore,
    MCCoreConfig,
)
from .cluster import (
    CCCluster,
    CCClusterConfig,
    MCCluster,
    MCClusterConfig,
    SnitchCluster,
    SnitchClusterConfig,
)
from .chip import (
    Chip,
    ChipConfig,
    GroupConfig,
    homo_cc_chip_config,
    homo_mc_chip_config,
)
from .dram import DRAMConfig, DRAMModel
from .dma import (
    BandwidthBudget,
    DMATransferRecord,
    ThrottledDMA,
    allocate_fair_shares,
)
from .noc import CrossbarConfig, InterconnectConfig, InterconnectModel
from .area_power import AreaPowerModel, AreaReport, PowerReport, TechnologyConfig

__all__ = [
    "SystolicArray",
    "SystolicArrayConfig",
    "CIMMacro",
    "CIMMacroConfig",
    "HardwarePruner",
    "PrunerConfig",
    "PrunerResult",
    "ACUConfig",
    "AuxiliaryComputeUnits",
    "DEFAULT_OP_CYCLES",
    "CCCore",
    "CCCoreConfig",
    "HostCore",
    "HostCoreConfig",
    "MCCore",
    "MCCoreConfig",
    "CCCluster",
    "CCClusterConfig",
    "MCCluster",
    "MCClusterConfig",
    "SnitchCluster",
    "SnitchClusterConfig",
    "Chip",
    "ChipConfig",
    "GroupConfig",
    "homo_cc_chip_config",
    "homo_mc_chip_config",
    "DRAMConfig",
    "DRAMModel",
    "BandwidthBudget",
    "DMATransferRecord",
    "ThrottledDMA",
    "allocate_fair_shares",
    "CrossbarConfig",
    "InterconnectConfig",
    "InterconnectModel",
    "AreaPowerModel",
    "AreaReport",
    "PowerReport",
    "TechnologyConfig",
]
