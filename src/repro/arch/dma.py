"""Cluster DMA engines with performance-monitoring-counter (PMC) throttling.

Every EdgeMM cluster owns a DMA module connected to the DRAM controller.
The token-length-driven bandwidth management of Section IV-B works by giving
each cluster a *memory-access budget* ``B`` per interval ``T``: a PMC inside
the DMA accumulates the bytes moved during the interval and, once the budget
is exceeded, further requests from that cluster are blocked until the
interval elapses and the PMC resets.

The :class:`ThrottledDMA` model captures the steady-state effect of this
mechanism: a cluster whose budget is ``B`` bytes per ``T``-cycle interval
sees a sustained bandwidth of ``min(B / T, fair share)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .dram import DRAMModel


@dataclass
class DMATransferRecord:
    """One completed DMA transfer, as recorded by the PMC."""

    cluster: str
    payload_bytes: int
    issue_cycle: float
    complete_cycle: float

    @property
    def duration_cycles(self) -> float:
        return self.complete_cycle - self.issue_cycle


@dataclass
class BandwidthBudget:
    """Per-interval memory access budget of one cluster.

    ``budget_bytes`` is the number of bytes the cluster may move per
    ``interval_cycles`` window.  ``None`` means unthrottled.
    """

    budget_bytes: Optional[int] = None
    interval_cycles: int = 100_000

    def __post_init__(self) -> None:
        if self.interval_cycles <= 0:
            raise ValueError("interval_cycles must be positive")
        if self.budget_bytes is not None and self.budget_bytes < 0:
            raise ValueError("budget_bytes must be >= 0 or None")

    @property
    def bytes_per_cycle_cap(self) -> Optional[float]:
        """Sustained bytes/cycle this budget allows (None = uncapped)."""
        if self.budget_bytes is None:
            return None
        return self.budget_bytes / self.interval_cycles


class ThrottledDMA:
    """A cluster DMA engine whose sustained bandwidth is capped by a budget.

    The event-level behaviour (block requests after the PMC exceeds the
    budget, resume after the interval resets) averages out to a bandwidth
    cap of ``budget / interval``; transfers are additionally subject to the
    DRAM model's per-request overhead.
    """

    def __init__(
        self,
        cluster_name: str,
        dram: DRAMModel,
        budget: Optional[BandwidthBudget] = None,
        buffer_bytes: int = 128 * 1024,
    ) -> None:
        if buffer_bytes <= 0:
            raise ValueError("buffer_bytes must be positive")
        self.cluster_name = cluster_name
        self.dram = dram
        self.budget = budget or BandwidthBudget()
        self.buffer_bytes = buffer_bytes
        self._pmc_bytes = 0
        self._records: List[DMATransferRecord] = []
        self._current_cycle = 0.0

    # ------------------------------------------------------------------
    # Steady-state bandwidth view (used by the performance simulator)
    # ------------------------------------------------------------------
    def sustained_bytes_per_cycle(self, fair_share_bytes_per_cycle: float) -> float:
        """Bandwidth the cluster can sustain given its budget and fair share."""
        if fair_share_bytes_per_cycle < 0:
            raise ValueError("fair_share_bytes_per_cycle must be >= 0")
        cap = self.budget.bytes_per_cycle_cap
        if cap is None:
            return fair_share_bytes_per_cycle
        return min(cap, fair_share_bytes_per_cycle)

    def transfer_cycles(self, payload_bytes: int) -> float:
        """Cycles to move a payload, including buffer-limited chunking."""
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be >= 0")
        if payload_bytes == 0:
            return 0.0
        transfers = self.dram.transfers_for(payload_bytes, self.buffer_bytes)
        return self.dram.transfer_cycles(payload_bytes, transfers=transfers)

    # ------------------------------------------------------------------
    # Event-level PMC behaviour (used by the unit tests and the pipeline
    # model's fine-grained checks)
    # ------------------------------------------------------------------
    def issue(self, payload_bytes: int) -> DMATransferRecord:
        """Issue one transfer, applying PMC blocking if over budget."""
        if payload_bytes <= 0:
            raise ValueError("payload_bytes must be positive")
        interval = self.budget.interval_cycles
        start = self._current_cycle
        if self.budget.budget_bytes is not None:
            interval_index = int(start // interval)
            if self._pmc_bytes >= self.budget.budget_bytes:
                # Blocked until the next interval boundary resets the PMC.
                start = (interval_index + 1) * float(interval)
                self._pmc_bytes = 0
        duration = self.transfer_cycles(payload_bytes)
        complete = start + duration
        self._pmc_bytes += payload_bytes
        # PMC resets whenever the transfer crosses an interval boundary.
        if self.budget.budget_bytes is not None:
            if int(complete // interval) > int(start // interval):
                self._pmc_bytes = payload_bytes
        record = DMATransferRecord(
            cluster=self.cluster_name,
            payload_bytes=payload_bytes,
            issue_cycle=start,
            complete_cycle=complete,
        )
        self._records.append(record)
        self._current_cycle = complete
        return record

    def reset(self) -> None:
        """Clear the PMC, the transfer log and the local clock."""
        self._pmc_bytes = 0
        self._records.clear()
        self._current_cycle = 0.0

    @property
    def pmc_bytes(self) -> int:
        return self._pmc_bytes

    @property
    def records(self) -> List[DMATransferRecord]:
        return list(self._records)

    @property
    def total_bytes_moved(self) -> int:
        return sum(record.payload_bytes for record in self._records)

    @property
    def elapsed_cycles(self) -> float:
        return self._current_cycle

    def observed_bandwidth_bytes_per_cycle(self) -> float:
        """Payload bytes per cycle over the recorded transfer history."""
        if self._current_cycle == 0:
            return 0.0
        return self.total_bytes_moved / self._current_cycle


def allocate_fair_shares(
    total_bytes_per_cycle: float, weights: Dict[str, float]
) -> Dict[str, float]:
    """Split the DRAM bandwidth across clusters proportionally to weights.

    This implements the ``Bc : Bm`` budget ratios of Section IV-B: e.g.
    ``{"cc": 1, "mc": 3}`` reproduces the 1:3 reallocation.
    """
    if total_bytes_per_cycle <= 0:
        raise ValueError("total_bytes_per_cycle must be positive")
    if not weights:
        raise ValueError("weights must not be empty")
    if any(weight < 0 for weight in weights.values()):
        raise ValueError("weights must be >= 0")
    total_weight = sum(weights.values())
    if total_weight == 0:
        raise ValueError("at least one weight must be positive")
    return {
        name: total_bytes_per_cycle * weight / total_weight
        for name, weight in weights.items()
    }
