"""Array-native cost primitives shared by the scalar and batched engines.

Every latency formula of the performance model lives here exactly once, in
a form that accepts NumPy arrays *or* Python scalars and broadcasts:

* coprocessor cycle models — the systolic-array tiling of Eq. 2 and the
  CIM bit-serial model of Eq. 3, with the work partitioned first across a
  pool's clusters and then across each cluster's cores;
* elementwise/vector-unit cycles;
* activation-aware pruning of weight traffic;
* the DRAM effective-bandwidth model (buffer-limited transfer count, fixed
  request overhead, bandwidth-share streaming).

Both :class:`~repro.core.simulator.PerformanceSimulator` (per-op, scalar)
and :class:`~repro.core.batch.BatchCostEngine` (whole design grids at once)
call these functions, so the two paths cannot diverge: a batched sweep is
numerically identical to the scalar loop because it runs the same
arithmetic, element for element.

Exactness rules (load-bearing — regression tests assert bit equality):

* ``ceil_div`` mirrors ``math.ceil(a / b)`` on Python ints: true division
  to float64 followed by ``ceil``.  All dimension values are far below
  2**53, so the float64 arithmetic is exact.
* ``pruned_weight_bytes`` mirrors ``int(round(w * keep))``: IEEE-754
  round-half-even, which is what both Python's ``round`` and ``np.rint``
  implement.
* Expression order matches the scalar code (e.g. the DRAM overhead is
  ``transfers * request_overhead + transfers * crossbar_latency``, not a
  factored form), so intermediate roundings agree term by term.

This module must stay import-light (NumPy only): ``repro.models.ops``,
``repro.arch`` and ``repro.core`` all depend on it.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ceil_div",
    "partitioned_share",
    "systolic_gemm_cycles",
    "cim_gemm_cycles",
    "cim_gemv_cycles",
    "elementwise_cycles",
    "pruned_weight_bytes",
    "memory_cycles",
]


def ceil_div(a, b):
    """``ceil(a / b)`` via true division — the array form of ``math.ceil(a / b)``.

    Mirrors the scalar model's idiom exactly: Python's ``/`` on ints is
    float division, so the ceil is taken of the float64 quotient, never of
    an integer-division result.
    """
    return np.ceil(np.true_divide(a, b))


def partitioned_share(n, n_clusters):
    """Per-cluster share of an ``n``-wide dimension: ``max(ceil(n / clusters), 1)``."""
    return np.maximum(ceil_div(n, n_clusters), 1.0)


def systolic_gemm_cycles(m, k, n_share, *, rows, cols, n_cores, dispatch_cycles):
    """GEMM cycles on a CC-cluster's systolic arrays (paper Eq. 2, tiled).

    ``n_share`` is the cluster's slice of the output dimension; it is split
    across the cluster's ``n_cores`` arrays, and each array tiles its weight
    slice into ``ceil(k / R) * ceil(n_per_core / C)`` stationary tiles of
    ``2R + C + M - 3`` cycles each, plus the per-kernel dispatch overhead.
    A GEMV is the ``m == 1`` case.
    """
    n_per_core = ceil_div(n_share, n_cores)
    k_tiles = ceil_div(k, rows)
    n_tiles = ceil_div(n_per_core, cols)
    tile = 2 * rows + cols + m - 3
    return k_tiles * n_tiles * tile + dispatch_cycles


def cim_gemm_cycles(m, k, n_share, *, subarrays, columns, activation_bits, n_cores, dispatch_cycles):
    """GEMM cycles on an MC-cluster's CIM macros (paper Eq. 3, tiled).

    The reduction dimension is split across the ``R`` subarrays and the
    output dimension across the ``C`` columns; each resident block costs
    ``M * W + 1`` cycles because activations broadcast bit-serially.
    """
    n_per_core = ceil_div(n_share, n_cores)
    k_tiles = ceil_div(k, subarrays)
    n_tiles = ceil_div(n_per_core, columns)
    return k_tiles * n_tiles * (m * activation_bits + 1) + dispatch_cycles


def cim_gemv_cycles(k, n_share, *, subarrays, columns, activation_bits, n_cores, dispatch_cycles):
    """GEMV cycles on an MC-cluster's CIM macros: ``W + 1`` per block."""
    n_per_core = ceil_div(n_share, n_cores)
    k_tiles = ceil_div(k, subarrays)
    n_tiles = ceil_div(n_per_core, columns)
    return k_tiles * n_tiles * (activation_bits + 1) + dispatch_cycles


def elementwise_cycles(elements_share, flops_per_element, *, n_cores, lanes):
    """Vector-unit cycles for a cluster's share of an elementwise operator.

    The element count splits across the cluster's cores, each core streams
    ``lanes`` elements per cycle, and multi-FLOP elements (softmax, SiLU)
    pay proportionally more.
    """
    per_core = ceil_div(elements_share, n_cores)
    return ceil_div(per_core, lanes) * np.maximum(flops_per_element, 1.0)


def pruned_weight_bytes(weight_bytes, prunable, keep_fraction):
    """Weight traffic after activation-aware pruning at ``keep_fraction``.

    Non-prunable operators (and ``keep_fraction == 1``) read their full
    weights; prunable ones read ``round(weight_bytes * keep_fraction)``
    bytes with IEEE round-half-even — identical to the scalar
    ``int(round(...))``.
    """
    keep_fraction = np.asarray(keep_fraction, dtype=np.float64)
    scaled = np.rint(weight_bytes * keep_fraction)
    apply = np.logical_and(prunable, keep_fraction < 1.0)
    return np.where(apply, scaled, weight_bytes).astype(np.int64)


def memory_cycles(
    traffic_bytes,
    *,
    buffer_bytes,
    dram_bytes_per_cycle,
    bandwidth_fraction,
    request_overhead_cycles,
    request_latency_cycles,
):
    """DRAM cycles to move ``traffic_bytes`` with a pool's bandwidth share.

    The transfer count is buffer-limited (``ceil(payload / buffer)``, the
    Fig. 6(b) mechanism), each transfer pays the DRAM request overhead plus
    the crossbar traversal latency, and the payload streams at the pool's
    share of the pin bandwidth.  Zero traffic costs zero cycles.
    """
    transfers = ceil_div(traffic_bytes, buffer_bytes)
    bytes_per_cycle = dram_bytes_per_cycle * bandwidth_fraction
    stream_cycles = np.true_divide(traffic_bytes, bytes_per_cycle)
    overhead = transfers * request_overhead_cycles + transfers * request_latency_cycles
    return np.where(np.greater(traffic_bytes, 0), overhead + stream_cycles, 0.0)
