"""Declarative serving scenarios on EdgeMM fleets.

``repro.scenarios`` turns hand-wired serving experiments into data: a
:class:`~repro.scenarios.spec.ScenarioSpec` declares a workload mix, an
arrival pattern, a fleet topology (optionally SLO-aware autoscaled) and
service-level objectives; :func:`~repro.scenarios.runner.run_scenario`
compiles it to a trace, plays it through the serving layer, prices the
offered load through the array-native batch engine and emits a
:class:`~repro.scenarios.report.ScenarioReport` whose canonical JSON form
is regression-locked by the golden-report suite.

Run the catalogue from the command line::

    python -m repro.scenarios list
    python -m repro.scenarios run mixed-rush-hour
"""

from .compile import (
    CompiledScenario,
    TraceChunk,
    build_arrival_process,
    compile_chaos_schedule,
    compile_fault_schedule,
    compile_scenario,
    compile_scenario_chunks,
    component_sampler,
)
from .registry import (
    LONG_CONTEXT,
    MULTI_IMAGE,
    TEXT_CHAT,
    VIDEO_FRAMES,
    available_scenarios,
    get_scenario,
    register_scenario,
)
from .report import (
    AutoscaleSummary,
    FaultImpact,
    FaultSummary,
    IncidentSummary,
    PricingSummary,
    ScenarioReport,
    SLOCheck,
    TenantSummary,
    format_scenario_report,
    slo_checks,
    tenant_summaries,
)
from .runner import autoscaler_config, build_fleet, price_offered_load, run_scenario
from .spec import (
    ArrivalSpec,
    AutoscalerSpec,
    ChaosSpec,
    FaultsSpec,
    FleetSpec,
    ScenarioSpec,
    SLOSpec,
    WorkloadComponent,
)

__all__ = [
    "ArrivalSpec",
    "AutoscalerSpec",
    "AutoscaleSummary",
    "ChaosSpec",
    "CompiledScenario",
    "FaultImpact",
    "FaultSummary",
    "FaultsSpec",
    "FleetSpec",
    "IncidentSummary",
    "LONG_CONTEXT",
    "MULTI_IMAGE",
    "PricingSummary",
    "ScenarioReport",
    "ScenarioSpec",
    "SLOCheck",
    "SLOSpec",
    "TEXT_CHAT",
    "TenantSummary",
    "TraceChunk",
    "VIDEO_FRAMES",
    "WorkloadComponent",
    "autoscaler_config",
    "available_scenarios",
    "build_arrival_process",
    "build_fleet",
    "compile_chaos_schedule",
    "compile_fault_schedule",
    "compile_scenario",
    "compile_scenario_chunks",
    "component_sampler",
    "format_scenario_report",
    "get_scenario",
    "price_offered_load",
    "register_scenario",
    "run_scenario",
    "slo_checks",
    "tenant_summaries",
]
