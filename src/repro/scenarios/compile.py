"""Compilation of a :class:`~repro.scenarios.spec.ScenarioSpec` to a trace.

Compiling a scenario is pure and deterministic: every random stream
(arrival process, per-component shape samplers, the mix-selection stream)
is seeded from the spec's content hash, so the same spec compiles to the
bit-identical :class:`~repro.serving.queue.ServingRequest` trace in every
process.  The compiled trace remembers which mix component produced each
request, which the reports use for per-component accounting.

Two compilation forms share one deterministic core: the classic
:func:`compile_scenario` materialises per-request objects, while
:func:`compile_scenario_chunks` stream-emits the columnar
:data:`~repro.serving.trace.TRACE_DTYPE` form in bounded chunks — every
random stream is a persistent generator with ``compile_scenario``'s exact
RNG call order, so the chunked columns are byte-stable across chunk sizes
and convert to the ``==``-identical object trace.  Million-request wave
traces never pay for per-request Python objects on the way in.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..models.mllm import InferenceRequest
from ..serving.arrival import (
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    RequestSampler,
    TraceArrivals,
)
from ..serving.faults import FaultEvent, FaultSchedule
from ..serving.queue import ServingRequest, build_trace
from ..serving.runtime.actors import DEFAULT_BATCH_SIZE
from ..serving.runtime.chaos import ChaosSchedule, generate_chaos_schedule
from ..serving.trace import TRACE_DTYPE
from .spec import ArrivalSpec, ScenarioSpec, WorkloadComponent

ArrivalProcess = Union[
    PoissonArrivals, BurstyArrivals, DiurnalArrivals, TraceArrivals
]


@dataclass(frozen=True)
class CompiledScenario:
    """A scenario lowered to an executable serving trace."""

    spec: ScenarioSpec
    trace: Tuple[ServingRequest, ...]
    #: Mix-component name of every request, in trace order.
    components: Tuple[str, ...]
    #: Concrete fault schedule (``None`` unless the spec carries a
    #: ``faults`` block); derived from the spec hash, see
    #: :func:`compile_fault_schedule`.
    faults: Optional[FaultSchedule] = None
    #: Concrete runtime-chaos schedule (``None`` unless the spec carries
    #: a ``chaos`` block); derived from the spec hash, see
    #: :func:`compile_chaos_schedule`.  Consumed only by the supervised
    #: live runtime — the batch plane ignores it by design.
    chaos: Optional[ChaosSchedule] = None

    @property
    def component_counts(self) -> Dict[str, int]:
        """Requests per mix component, keyed by component name."""
        counts: Dict[str, int] = {
            component.name: 0 for component in self.spec.mix
        }
        for name in self.components:
            counts[name] += 1
        return counts

    @property
    def unique_shapes(self) -> Tuple[InferenceRequest, ...]:
        """The distinct request shapes of the trace, in first-seen order."""
        seen: Dict[InferenceRequest, None] = {}
        for request in self.trace:
            seen.setdefault(request.request, None)
        return tuple(seen)

    @property
    def priorities(self) -> Optional[Tuple[float, ...]]:
        """Per-request admission priorities, or ``None`` when uniform.

        ``None`` (every component at the default priority 1.0) keeps the
        serving path on its priority-free branch, so priority-free specs
        reproduce the historical results exactly.
        """
        by_name = {
            component.name: component.priority for component in self.spec.mix
        }
        if all(priority == 1.0 for priority in by_name.values()):
            return None
        return tuple(by_name[name] for name in self.components)

    @property
    def tenants(self) -> Tuple[str, ...]:
        """Tenant class of every request, in trace order.

        Components without an explicit tenant bill to ``"default"``.
        """
        by_name = {
            component.name: component.tenant or "default"
            for component in self.spec.mix
        }
        return tuple(by_name[name] for name in self.components)


def build_arrival_process(
    arrival: ArrivalSpec, *, seed: int = 0
) -> ArrivalProcess:
    """Instantiate the process ``arrival`` describes, seeded with ``seed``."""
    if arrival.kind == "poisson":
        return PoissonArrivals(arrival.rate_rps, seed=seed)
    if arrival.kind == "bursty":
        return BurstyArrivals(
            arrival.rate_rps,
            burst_multiplier=arrival.burst_multiplier,
            mean_calm_arrivals=arrival.mean_calm_arrivals,
            mean_burst_arrivals=arrival.mean_burst_arrivals,
            seed=seed,
        )
    if arrival.kind == "diurnal":
        return DiurnalArrivals(
            arrival.rate_rps, period_s=arrival.period_s, seed=seed
        )
    # ArrivalSpec validation guarantees times is present for "trace".
    return TraceArrivals(arrival.times or ())


def component_sampler(
    component: WorkloadComponent, *, seed: int
) -> RequestSampler:
    """The shape sampler of one mix ``component``, seeded with ``seed``."""
    return RequestSampler(
        images=component.images,
        prompt_token_range=component.prompt_token_range,
        output_token_choices=component.output_token_choices,
        output_token_weights=component.output_token_weights,
        seed=seed,
    )


def compile_fault_schedule(
    spec: ScenarioSpec, span_s: float
) -> FaultSchedule:
    """Lower a spec's fault plan to a concrete, time-ordered schedule.

    Targets and timestamps come from one ``random.Random`` stream seeded
    with ``spec.derive_seed("faults")`` — never from interpreter state —
    so the same spec draws the same schedule in every process (the
    cross-``PYTHONHASHSEED`` suite asserts it).  Each fault targets a
    distinct chip; fault times land in the spec's window fraction band of
    ``span_s`` (the trace's arrival span), and chip failures with an
    ``outage_s`` get a matching ``chip_up``.
    """
    plan = spec.faults
    if plan is None:
        return FaultSchedule(events=(), drain_policy="drain")
    n_chips = (
        spec.fleet.autoscaler.max_chips
        if spec.fleet.autoscaler is not None
        else spec.fleet.n_chips
    )
    rng = random.Random(spec.derive_seed("faults"))
    lo, hi = plan.window
    targets = rng.sample(
        range(n_chips), plan.n_chip_failures + plan.n_dram_degrades
    )
    events: List[FaultEvent] = []
    for chip_id in targets[: plan.n_chip_failures]:
        time_s = (lo + rng.random() * (hi - lo)) * span_s
        events.append(
            FaultEvent(time_s=time_s, kind="chip_down", chip_id=chip_id)
        )
        if plan.outage_s is not None:
            events.append(
                FaultEvent(
                    time_s=time_s + plan.outage_s,
                    kind="chip_up",
                    chip_id=chip_id,
                )
            )
    for chip_id in targets[plan.n_chip_failures :]:
        time_s = (lo + rng.random() * (hi - lo)) * span_s
        events.append(
            FaultEvent(
                time_s=time_s,
                kind="dram_degrade",
                chip_id=chip_id,
                factor=plan.degrade_factor,
            )
        )
    events.sort(key=lambda event: (event.time_s, event.chip_id, event.kind))
    return FaultSchedule(
        events=tuple(events), drain_policy=plan.drain_policy
    )


def compile_chaos_schedule(
    spec: ScenarioSpec, *, seed: Optional[int] = None
) -> ChaosSchedule:
    """Lower a spec's chaos plan to a concrete runtime-fault schedule.

    Every ordinal and target comes from one ``random.Random`` stream
    seeded with ``spec.derive_seed("chaos")`` — the same spec draws the
    same schedule in every process, making a scenario's chaos part of
    its identity.  ``seed`` overrides that derivation (the CLI's
    ``--chaos-seed`` hook for exploring alternative draws of the same
    plan).  Chip-fault ordinals are bounded by the fleet size (every
    chip runs at least one closing shard) and stream-fault ordinals by
    the trace's arrival-batch count, so most events actually fire; ones
    whose ordinal never occurs are harmless no-ops.
    """
    plan = spec.chaos
    if plan is None:
        return ChaosSchedule()
    n_chips = (
        spec.fleet.autoscaler.max_chips
        if spec.fleet.autoscaler is not None
        else spec.fleet.n_chips
    )
    n_batches = max(
        1, -(-spec.n_requests // DEFAULT_BATCH_SIZE)
    )
    return generate_chaos_schedule(
        spec.derive_seed("chaos") if seed is None else seed,
        n_chips=n_chips,
        n_batches=n_batches,
        n_crashes=plan.n_crashes,
        n_hangs=plan.n_hangs,
        n_drops=plan.n_drops,
        n_delays=plan.n_delays,
        n_supervisor_crashes=plan.n_supervisor_crashes,
        hang_shards=plan.hang_shards,
        delay_s=plan.delay_s,
    )


def compile_scenario(spec: ScenarioSpec) -> CompiledScenario:
    """Lower a scenario spec to its serving trace.

    Arrival timestamps come from the spec's arrival process; request
    shapes interleave the mix components with spec-hash-derived seeds: a
    selection stream picks the component of every slot and each component
    contributes the next shape of its own pre-seeded stream.  Specs with
    a ``faults`` block additionally compile their concrete
    :class:`~repro.serving.faults.FaultSchedule` against the trace's
    arrival span.
    """
    n = spec.n_requests
    process = build_arrival_process(spec.arrival, seed=spec.derive_seed("arrival"))
    times = process.generate(n)

    streams: Dict[str, Iterator[InferenceRequest]] = {
        component.name: iter(
            component_sampler(
                component, seed=spec.derive_seed(f"component:{component.name}")
            ).sample(n)
        )
        for component in spec.mix
    }
    names = [component.name for component in spec.mix]
    weights = [component.weight for component in spec.mix]
    selection = random.Random(spec.derive_seed("mix"))
    chosen: List[str] = [
        names[0] if len(names) == 1 else selection.choices(names, weights=weights)[0]
        for _ in range(n)
    ]
    requests = [next(streams[name]) for name in chosen]
    faults = None
    if spec.faults is not None:
        faults = compile_fault_schedule(spec, times[-1])
    chaos = None
    if spec.chaos is not None:
        chaos = compile_chaos_schedule(spec)
    return CompiledScenario(
        spec=spec,
        trace=tuple(build_trace(times, requests)),
        components=tuple(chosen),
        faults=faults,
        chaos=chaos,
    )


@dataclass(frozen=True)
class TraceChunk:
    """One bounded slice of a streaming columnar compilation."""

    #: Columnar requests (:data:`~repro.serving.trace.TRACE_DTYPE` rows).
    array: np.ndarray
    #: Mix-component name of every row, in row order.
    components: Tuple[str, ...]


def compile_scenario_chunks(
    spec: ScenarioSpec, *, chunk_size: int = 65536
) -> Iterator[TraceChunk]:
    """Stream-compile ``spec`` to columnar :class:`TraceChunk` slices.

    The streaming twin of :func:`compile_scenario`: the arrival process,
    every component's shape sampler and the mix-selection stream run as
    persistent generators with the exact RNG call order of the one-shot
    path, so the concatenated chunks are byte-stable for every
    ``chunk_size`` and convert (``array_to_trace``) to the
    ``==``-identical object trace.  Peak memory is one ``chunk_size``
    chunk, never the whole trace — a week-long multi-million-request
    scenario compiles without materialising a single
    :class:`~repro.serving.queue.ServingRequest`.  Fault schedules need
    the full arrival span and are not part of the streamed columns; use
    :func:`compile_fault_schedule` once the span is known.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    n = spec.n_requests
    process = build_arrival_process(
        spec.arrival, seed=spec.derive_seed("arrival")
    )
    times = process.iter_times()
    shapes: Dict[str, Iterator[Tuple[int, int, int]]] = {
        component.name: component_sampler(
            component, seed=spec.derive_seed(f"component:{component.name}")
        ).iter_shapes()
        for component in spec.mix
    }
    names = [component.name for component in spec.mix]
    weights = [component.weight for component in spec.mix]
    single = len(names) == 1
    selection = random.Random(spec.derive_seed("mix"))

    emitted = 0
    while emitted < n:
        count = min(chunk_size, n - emitted)
        arrival_col: List[float] = []
        images_col: List[int] = []
        prompt_col: List[int] = []
        output_col: List[int] = []
        chosen: List[str] = []
        for _ in range(count):
            name = (
                names[0]
                if single
                else selection.choices(names, weights=weights)[0]
            )
            chosen.append(name)
            arrival_col.append(next(times))
            images, prompt_text_tokens, output_tokens = next(shapes[name])
            images_col.append(images)
            prompt_col.append(prompt_text_tokens)
            output_col.append(output_tokens)
        array = np.empty(count, dtype=TRACE_DTYPE)
        array["request_id"] = range(emitted, emitted + count)
        array["arrival_s"] = arrival_col
        array["images"] = images_col
        array["prompt_text_tokens"] = prompt_col
        array["output_tokens"] = output_col
        emitted += count
        yield TraceChunk(array=array, components=tuple(chosen))
