"""Compilation of a :class:`~repro.scenarios.spec.ScenarioSpec` to a trace.

Compiling a scenario is pure and deterministic: every random stream
(arrival process, per-component shape samplers, the mix-selection stream)
is seeded from the spec's content hash, so the same spec compiles to the
bit-identical :class:`~repro.serving.queue.ServingRequest` trace in every
process.  The compiled trace remembers which mix component produced each
request, which the reports use for per-component accounting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple, Union

from ..models.mllm import InferenceRequest
from ..serving.arrival import (
    BurstyArrivals,
    PoissonArrivals,
    RequestSampler,
    TraceArrivals,
)
from ..serving.queue import ServingRequest, build_trace
from .spec import ArrivalSpec, ScenarioSpec, WorkloadComponent

ArrivalProcess = Union[PoissonArrivals, BurstyArrivals, TraceArrivals]


@dataclass(frozen=True)
class CompiledScenario:
    """A scenario lowered to an executable serving trace."""

    spec: ScenarioSpec
    trace: Tuple[ServingRequest, ...]
    #: Mix-component name of every request, in trace order.
    components: Tuple[str, ...]

    @property
    def component_counts(self) -> Dict[str, int]:
        """Requests per mix component, keyed by component name."""
        counts: Dict[str, int] = {
            component.name: 0 for component in self.spec.mix
        }
        for name in self.components:
            counts[name] += 1
        return counts

    @property
    def unique_shapes(self) -> Tuple[InferenceRequest, ...]:
        """The distinct request shapes of the trace, in first-seen order."""
        seen: Dict[InferenceRequest, None] = {}
        for request in self.trace:
            seen.setdefault(request.request, None)
        return tuple(seen)


def build_arrival_process(
    arrival: ArrivalSpec, *, seed: int = 0
) -> ArrivalProcess:
    """Instantiate the process ``arrival`` describes, seeded with ``seed``."""
    if arrival.kind == "poisson":
        return PoissonArrivals(arrival.rate_rps, seed=seed)
    if arrival.kind == "bursty":
        return BurstyArrivals(
            arrival.rate_rps,
            burst_multiplier=arrival.burst_multiplier,
            mean_calm_arrivals=arrival.mean_calm_arrivals,
            mean_burst_arrivals=arrival.mean_burst_arrivals,
            seed=seed,
        )
    # ArrivalSpec validation guarantees times is present for "trace".
    return TraceArrivals(arrival.times or ())


def component_sampler(
    component: WorkloadComponent, *, seed: int
) -> RequestSampler:
    """The shape sampler of one mix ``component``, seeded with ``seed``."""
    return RequestSampler(
        images=component.images,
        prompt_token_range=component.prompt_token_range,
        output_token_choices=component.output_token_choices,
        output_token_weights=component.output_token_weights,
        seed=seed,
    )


def compile_scenario(spec: ScenarioSpec) -> CompiledScenario:
    """Lower a scenario spec to its serving trace.

    Arrival timestamps come from the spec's arrival process; request
    shapes interleave the mix components with spec-hash-derived seeds: a
    selection stream picks the component of every slot and each component
    contributes the next shape of its own pre-seeded stream.
    """
    n = spec.n_requests
    process = build_arrival_process(spec.arrival, seed=spec.derive_seed("arrival"))
    times = process.generate(n)

    streams: Dict[str, Iterator[InferenceRequest]] = {
        component.name: iter(
            component_sampler(
                component, seed=spec.derive_seed(f"component:{component.name}")
            ).sample(n)
        )
        for component in spec.mix
    }
    names = [component.name for component in spec.mix]
    weights = [component.weight for component in spec.mix]
    selection = random.Random(spec.derive_seed("mix"))
    chosen: List[str] = [
        names[0] if len(names) == 1 else selection.choices(names, weights=weights)[0]
        for _ in range(n)
    ]
    requests = [next(streams[name]) for name in chosen]
    return CompiledScenario(
        spec=spec,
        trace=tuple(build_trace(times, requests)),
        components=tuple(chosen),
    )
