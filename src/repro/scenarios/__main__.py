"""Command-line runner for the scenario catalogue.

::

    python -m repro.scenarios list
    python -m repro.scenarios run <name> [--json] [--chaos-seed N]
    python -m repro.scenarios run --all
    python -m repro.scenarios write-golden [--dir tests/golden] [names ...]

``write-golden`` regenerates the canonical JSON reports the golden-report
regression suite asserts byte identity against; run it only when a change
*intends* to move scenario numbers, and commit the diff.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from ..serving.dispatch import RUNTIMES
from ..serving.queue import ENGINES
from .registry import available_scenarios, get_scenario
from .report import format_scenario_report
from .runner import run_scenario


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Run declarative serving scenarios on EdgeMM fleets.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list registered scenarios")

    run = commands.add_parser("run", help="run one scenario (or all)")
    run.add_argument("name", nargs="?", help="registered scenario name")
    run.add_argument("--all", action="store_true", help="run every scenario")
    run.add_argument(
        "--json", action="store_true", help="emit the canonical JSON report"
    )
    run.add_argument(
        "--engine", choices=ENGINES, default="macro",
        help="decode-loop implementation (reports are engine-independent; "
        "'step' is the slow per-step oracle)",
    )
    run.add_argument(
        "--runtime", choices=RUNTIMES, default="batch",
        help="execution plane: 'live' streams the trace through the "
        "asyncio actor runtime (reports are runtime-independent)",
    )
    run.add_argument(
        "--chaos-seed", type=int, default=None, metavar="N",
        help="run under the supervised runtime with a chaos schedule "
        "drawn from seed N (instead of the spec-hash-derived seed); the "
        "report stays byte-identical modulo the incidents block",
    )
    run.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help="override the supervisor's per-job retry budget (implies "
        "the supervised runtime)",
    )

    golden = commands.add_parser(
        "write-golden", help="(re)write golden reports for the regression suite"
    )
    golden.add_argument(
        "names", nargs="*", help="scenarios to write (default: all registered)"
    )
    golden.add_argument(
        "--dir",
        default="tests/golden",
        help="directory the <name>.json files are written to",
    )
    return parser


def _run(
    name: str,
    as_json: bool,
    engine: str = "macro",
    runtime: str = "batch",
    chaos_seed: Optional[int] = None,
    max_retries: Optional[int] = None,
) -> None:
    spec = get_scenario(name)
    if chaos_seed is not None or max_retries is not None:
        report = _run_supervised(spec, engine, chaos_seed, max_retries)
    else:
        report = run_scenario(spec, engine=engine, runtime=runtime)
    if as_json:
        sys.stdout.write(report.to_json())
    else:
        print(format_scenario_report(report))


def _run_supervised(spec, engine: str, chaos_seed, max_retries):
    from dataclasses import replace

    from ..serving.runtime.service import run_scenario_supervised
    from ..serving.runtime.supervision import SupervisionConfig
    from .compile import compile_chaos_schedule
    from .spec import ChaosSpec

    if spec.chaos is None:
        # A bare --chaos-seed gets the default plan (one chip crash).
        spec = replace(spec, chaos=ChaosSpec())
    if max_retries is None:
        max_retries = spec.chaos.max_retries
    return run_scenario_supervised(
        spec,
        engine=engine,
        chaos=compile_chaos_schedule(spec, seed=chaos_seed),
        supervision=SupervisionConfig(
            seed=spec.derive_seed("supervision"), max_retries=max_retries
        ),
    )


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro.scenarios`` (``argv`` overrides)."""
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        for name in available_scenarios():
            spec = get_scenario(name)
            print(f"{name:<24} {spec.description}")
        return 0

    if args.command == "run":
        if args.all == (args.name is not None):
            print("run takes exactly one of <name> or --all", file=sys.stderr)
            return 2
        names = available_scenarios() if args.all else [args.name]
        for index, name in enumerate(names):
            if index and not args.json:
                print()
            _run(
                name,
                args.json,
                args.engine,
                args.runtime,
                args.chaos_seed,
                args.max_retries,
            )
        return 0

    # write-golden
    directory = Path(args.dir)
    directory.mkdir(parents=True, exist_ok=True)
    names = args.names or available_scenarios()
    for name in names:
        report = run_scenario(get_scenario(name))
        path = directory / f"{get_scenario(name).name}.json"
        path.write_text(report.to_json(), encoding="utf-8")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
