"""Command-line runner for the scenario catalogue.

::

    python -m repro.scenarios list
    python -m repro.scenarios run <name> [--json]
    python -m repro.scenarios run --all
    python -m repro.scenarios write-golden [--dir tests/golden] [names ...]

``write-golden`` regenerates the canonical JSON reports the golden-report
regression suite asserts byte identity against; run it only when a change
*intends* to move scenario numbers, and commit the diff.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from ..serving.dispatch import RUNTIMES
from ..serving.queue import ENGINES
from .registry import available_scenarios, get_scenario
from .report import format_scenario_report
from .runner import run_scenario


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Run declarative serving scenarios on EdgeMM fleets.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list registered scenarios")

    run = commands.add_parser("run", help="run one scenario (or all)")
    run.add_argument("name", nargs="?", help="registered scenario name")
    run.add_argument("--all", action="store_true", help="run every scenario")
    run.add_argument(
        "--json", action="store_true", help="emit the canonical JSON report"
    )
    run.add_argument(
        "--engine", choices=ENGINES, default="macro",
        help="decode-loop implementation (reports are engine-independent; "
        "'step' is the slow per-step oracle)",
    )
    run.add_argument(
        "--runtime", choices=RUNTIMES, default="batch",
        help="execution plane: 'live' streams the trace through the "
        "asyncio actor runtime (reports are runtime-independent)",
    )

    golden = commands.add_parser(
        "write-golden", help="(re)write golden reports for the regression suite"
    )
    golden.add_argument(
        "names", nargs="*", help="scenarios to write (default: all registered)"
    )
    golden.add_argument(
        "--dir",
        default="tests/golden",
        help="directory the <name>.json files are written to",
    )
    return parser


def _run(
    name: str,
    as_json: bool,
    engine: str = "macro",
    runtime: str = "batch",
) -> None:
    report = run_scenario(get_scenario(name), engine=engine, runtime=runtime)
    if as_json:
        sys.stdout.write(report.to_json())
    else:
        print(format_scenario_report(report))


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro.scenarios`` (``argv`` overrides)."""
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        for name in available_scenarios():
            spec = get_scenario(name)
            print(f"{name:<24} {spec.description}")
        return 0

    if args.command == "run":
        if args.all == (args.name is not None):
            print("run takes exactly one of <name> or --all", file=sys.stderr)
            return 2
        names = available_scenarios() if args.all else [args.name]
        for index, name in enumerate(names):
            if index and not args.json:
                print()
            _run(name, args.json, args.engine, args.runtime)
        return 0

    # write-golden
    directory = Path(args.dir)
    directory.mkdir(parents=True, exist_ok=True)
    names = args.names or available_scenarios()
    for name in names:
        report = run_scenario(get_scenario(name))
        path = directory / f"{get_scenario(name).name}.json"
        path.write_text(report.to_json(), encoding="utf-8")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
