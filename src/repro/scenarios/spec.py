"""Declarative serving-scenario specifications.

A :class:`ScenarioSpec` describes one deployment study end to end, as pure
data: the *workload mix* (weighted :class:`WorkloadComponent` entries —
text chat, multi-image prompts, video-frame streaming, long-context
summarization, or anything else expressible as a request-shape
distribution), the *arrival pattern* (:class:`ArrivalSpec`), the *fleet
topology* with optional SLO-aware autoscaling (:class:`FleetSpec` /
:class:`AutoscalerSpec`) and the *service-level objectives* the run is
judged against (:class:`SLOSpec`).

Specs serialize losslessly to JSON (``to_dict`` / ``from_dict``), and the
canonical JSON form is the *identity* of a scenario: :meth:`ScenarioSpec.
spec_hash` is its SHA-256, and every random seed used while compiling the
scenario is derived from that hash via :meth:`ScenarioSpec.derive_seed`.
Deriving seeds from the content hash — never from Python's per-process
salted ``hash()`` or any global RNG state — is what makes a scenario
reproduce bit-identically across processes and machines.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Mapping, Optional, Tuple

ARRIVAL_KINDS: Tuple[str, ...] = ("poisson", "bursty", "diurnal", "trace")
ADMISSION_POLICIES: Tuple[str, ...] = ("queue", "reject")
DRAIN_POLICIES: Tuple[str, ...] = ("drain", "abort")


def _tuple_of(values, caster) -> Tuple:
    return tuple(caster(value) for value in values)


@dataclass(frozen=True)
class WorkloadComponent:
    """One weighted slice of a scenario's workload mix.

    The shape parameters mirror :class:`~repro.serving.arrival.
    RequestSampler`; the component's sampler seed is derived from the
    owning spec's hash at compile time, so the component itself stays pure
    data.
    """

    name: str
    weight: float = 1.0
    images: int = 1
    prompt_token_range: Tuple[int, int] = (16, 64)
    output_token_choices: Tuple[int, ...] = (16, 32, 64, 128, 256)
    output_token_weights: Tuple[float, ...] = (0.3, 0.3, 0.25, 0.1, 0.05)
    #: Tenant class the component's requests bill to (``None`` = the
    #: implicit "default" tenant; emitted only when set, so tenant-free
    #: specs hash exactly as before the field existed).
    tenant: Optional[str] = None
    #: Admission weight relative to the mix's other components; requests
    #: of a higher-priority component get a proportionally deeper
    #: admission queue and re-dispatch first after a chip loss.
    priority: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("component name must not be empty")
        if self.weight <= 0:
            raise ValueError(f"component {self.name!r}: weight must be positive")
        if self.priority <= 0:
            raise ValueError(f"component {self.name!r}: priority must be positive")
        if self.tenant is not None and not self.tenant:
            raise ValueError(f"component {self.name!r}: tenant must not be empty")
        if self.images < 0:
            raise ValueError(f"component {self.name!r}: images must be >= 0")
        lo, hi = self.prompt_token_range
        if lo <= 0 or hi < lo:
            raise ValueError(
                f"component {self.name!r}: prompt_token_range must be a "
                "positive (lo, hi)"
            )
        if len(self.output_token_choices) != len(self.output_token_weights):
            raise ValueError(
                f"component {self.name!r}: output choices and weights must "
                "have equal length"
            )
        if any(tokens <= 0 for tokens in self.output_token_choices):
            raise ValueError(
                f"component {self.name!r}: output token choices must be positive"
            )

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the component (tenant/priority only when non-default)."""
        data: Dict[str, Any] = {
            "name": self.name,
            "weight": self.weight,
            "images": self.images,
            "prompt_token_range": list(self.prompt_token_range),
            "output_token_choices": list(self.output_token_choices),
            "output_token_weights": list(self.output_token_weights),
        }
        if self.tenant is not None:
            data["tenant"] = self.tenant
        if self.priority != 1.0:
            data["priority"] = self.priority
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadComponent":
        """Rebuild a component from :meth:`to_dict` data."""
        tenant = data.get("tenant")
        return cls(
            name=str(data["name"]),
            weight=float(data.get("weight", 1.0)),
            images=int(data.get("images", 1)),
            prompt_token_range=tuple(
                int(v) for v in data.get("prompt_token_range", (16, 64))
            ),
            output_token_choices=_tuple_of(
                data.get("output_token_choices", (16, 32, 64, 128, 256)), int
            ),
            output_token_weights=_tuple_of(
                data.get("output_token_weights", (0.3, 0.3, 0.25, 0.1, 0.05)),
                float,
            ),
            tenant=None if tenant is None else str(tenant),
            priority=float(data.get("priority", 1.0)),
        )


@dataclass(frozen=True)
class ArrivalSpec:
    """The arrival process of a scenario (see :mod:`repro.serving.arrival`).

    ``kind`` selects the process; the rate/burst fields apply to the
    generated kinds, ``period_s`` is the day length of the ``diurnal``
    hour-of-day load curve, and ``times`` carries the explicit timestamps
    of a ``trace`` replay.
    """

    kind: str = "poisson"
    rate_rps: float = 2.0
    burst_multiplier: float = 8.0
    mean_calm_arrivals: float = 60.0
    mean_burst_arrivals: float = 20.0
    period_s: float = 86400.0
    times: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise ValueError(
                f"arrival kind must be one of {ARRIVAL_KINDS}, got {self.kind!r}"
            )
        # Fields that do not apply to the chosen kind must stay at their
        # defaults: `to_dict` omits them, so any other value would be
        # silently lost on a serialization round trip.
        self._require_defaults_for_unused_fields()
        if self.kind == "trace":
            if not self.times:
                raise ValueError("a trace arrival spec needs explicit times")
            if any(t < 0 for t in self.times):
                raise ValueError("trace timestamps must be >= 0")
            if any(b < a for a, b in zip(self.times, self.times[1:])):
                raise ValueError("trace timestamps must be non-decreasing")
        else:
            if self.rate_rps <= 0:
                raise ValueError("rate_rps must be positive")
            if self.times is not None:
                raise ValueError("times only apply to trace arrivals")
            if self.kind == "diurnal" and self.period_s <= 0:
                raise ValueError("period_s must be positive")

    def _require_defaults_for_unused_fields(self) -> None:
        defaults = {f.name: f.default for f in fields(type(self))}
        unused = []
        if self.kind != "bursty":
            unused += ["burst_multiplier", "mean_calm_arrivals", "mean_burst_arrivals"]
        if self.kind != "diurnal":
            unused.append("period_s")
        if self.kind == "trace":
            unused.append("rate_rps")
        for name in unused:
            if getattr(self, name) != defaults[name]:
                raise ValueError(
                    f"{name} does not apply to {self.kind!r} arrivals "
                    "(it would be lost on serialization)"
                )

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the arrival spec (unused fields omitted)."""
        data: Dict[str, Any] = {"kind": self.kind}
        if self.kind == "trace":
            data["times"] = list(self.times or ())
        else:
            data["rate_rps"] = self.rate_rps
        if self.kind == "bursty":
            data["burst_multiplier"] = self.burst_multiplier
            data["mean_calm_arrivals"] = self.mean_calm_arrivals
            data["mean_burst_arrivals"] = self.mean_burst_arrivals
        if self.kind == "diurnal":
            data["period_s"] = self.period_s
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ArrivalSpec":
        """Rebuild an arrival spec from :meth:`to_dict` data."""
        times = data.get("times")
        return cls(
            kind=str(data.get("kind", "poisson")),
            rate_rps=float(data.get("rate_rps", 2.0)),
            burst_multiplier=float(data.get("burst_multiplier", 8.0)),
            mean_calm_arrivals=float(data.get("mean_calm_arrivals", 60.0)),
            mean_burst_arrivals=float(data.get("mean_burst_arrivals", 20.0)),
            period_s=float(data.get("period_s", 86400.0)),
            times=None if times is None else _tuple_of(times, float),
        )


@dataclass(frozen=True)
class AutoscalerSpec:
    """Knobs of the SLO-aware fleet autoscaler (pure data).

    The controller's TTFT target comes from the owning scenario's
    :class:`SLOSpec`; this spec carries the fleet bounds and the control-
    loop tuning.  See :class:`repro.serving.autoscale.AutoscalerConfig`
    for the runtime semantics of each field.
    """

    min_chips: int = 1
    max_chips: int = 4
    window: int = 64
    min_observations: int = 16
    cooldown_s: float = 1.0
    scale_up_ratio: float = 1.0
    scale_down_ratio: float = 0.4
    max_queue_depth: int = 64
    admission: str = "queue"

    def __post_init__(self) -> None:
        if self.min_chips < 1:
            raise ValueError("min_chips must be >= 1")
        if self.max_chips < self.min_chips:
            raise ValueError("max_chips must be >= min_chips")
        if self.window < 1 or self.min_observations < 1:
            raise ValueError("window and min_observations must be >= 1")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        if self.scale_up_ratio <= 0 or self.scale_down_ratio < 0:
            raise ValueError("scaling ratios must be positive")
        if self.scale_down_ratio >= self.scale_up_ratio:
            raise ValueError("scale_down_ratio must be below scale_up_ratio")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.admission not in ADMISSION_POLICIES:
            raise ValueError(
                f"admission must be one of {ADMISSION_POLICIES}, "
                f"got {self.admission!r}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the autoscaler block to plain JSON data."""
        return {
            "min_chips": self.min_chips,
            "max_chips": self.max_chips,
            "window": self.window,
            "min_observations": self.min_observations,
            "cooldown_s": self.cooldown_s,
            "scale_up_ratio": self.scale_up_ratio,
            "scale_down_ratio": self.scale_down_ratio,
            "max_queue_depth": self.max_queue_depth,
            "admission": self.admission,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AutoscalerSpec":
        """Rebuild an autoscaler block from :meth:`to_dict` data."""
        kwargs = {f.name: data[f.name] for f in fields(cls) if f.name in data}
        return cls(**kwargs)


@dataclass(frozen=True)
class FleetSpec:
    """Fleet topology: the model served and the chips serving it."""

    model: str = "sphinx-tiny"
    n_chips: int = 1
    policy: str = "least_loaded"
    max_batch_size: int = 8
    context_bucket: int = 32
    cc_bandwidth_fraction: float = 0.5
    autoscaler: Optional[AutoscalerSpec] = None

    def __post_init__(self) -> None:
        if self.n_chips < 1:
            raise ValueError("n_chips must be >= 1")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the fleet spec to plain JSON data."""
        data: Dict[str, Any] = {
            "model": self.model,
            "n_chips": self.n_chips,
            "policy": self.policy,
            "max_batch_size": self.max_batch_size,
            "context_bucket": self.context_bucket,
            "cc_bandwidth_fraction": self.cc_bandwidth_fraction,
        }
        if self.autoscaler is not None:
            data["autoscaler"] = self.autoscaler.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FleetSpec":
        """Rebuild a fleet spec from :meth:`to_dict` data."""
        autoscaler = data.get("autoscaler")
        return cls(
            model=str(data.get("model", "sphinx-tiny")),
            n_chips=int(data.get("n_chips", 1)),
            policy=str(data.get("policy", "least_loaded")),
            max_batch_size=int(data.get("max_batch_size", 8)),
            context_bucket=int(data.get("context_bucket", 32)),
            cc_bandwidth_fraction=float(data.get("cc_bandwidth_fraction", 0.5)),
            autoscaler=(
                None if autoscaler is None else AutoscalerSpec.from_dict(autoscaler)
            ),
        )


@dataclass(frozen=True)
class SLOSpec:
    """Service-level objectives a scenario is judged against.

    Every field is optional: ``None`` means "no objective for this metric".
    """

    ttft_p99_s: Optional[float] = None
    latency_p95_s: Optional[float] = None
    queue_wait_p99_s: Optional[float] = None

    def __post_init__(self) -> None:
        for label, value in self.targets().items():
            if value <= 0:
                raise ValueError(f"SLO target {label} must be positive")

    def targets(self) -> Dict[str, float]:
        """The non-``None`` objectives, keyed by metric name."""
        targets: Dict[str, float] = {}
        if self.ttft_p99_s is not None:
            targets["ttft_p99_s"] = float(self.ttft_p99_s)
        if self.latency_p95_s is not None:
            targets["latency_p95_s"] = float(self.latency_p95_s)
        if self.queue_wait_p99_s is not None:
            targets["queue_wait_p99_s"] = float(self.queue_wait_p99_s)
        return targets

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the objectives (the non-``None`` targets)."""
        return self.targets()

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SLOSpec":
        """Rebuild the objectives from :meth:`to_dict` data."""
        return cls(
            ttft_p99_s=data.get("ttft_p99_s"),
            latency_p95_s=data.get("latency_p95_s"),
            queue_wait_p99_s=data.get("queue_wait_p99_s"),
        )


@dataclass(frozen=True)
class FaultsSpec:
    """Declarative fault plan: how many faults, when, how hard (pure data).

    The concrete :class:`~repro.serving.faults.FaultSchedule` — which
    chips fail, the exact timestamps — is derived at compile time from
    the owning spec's hash (role ``"faults"``), so the plan itself stays
    pure data and the schedule reproduces bit-identically everywhere.
    ``window`` bounds fault times to a fraction band of the trace span,
    ``outage_s`` (if set) brings failed chips back after a fixed outage,
    and ``drain_policy`` decides whether a dying chip finishes or aborts
    its in-flight requests.
    """

    n_chip_failures: int = 0
    n_dram_degrades: int = 0
    window: Tuple[float, float] = (0.25, 0.75)
    outage_s: Optional[float] = None
    degrade_factor: float = 0.5
    drain_policy: str = "drain"

    def __post_init__(self) -> None:
        if self.n_chip_failures < 0 or self.n_dram_degrades < 0:
            raise ValueError("fault counts must be >= 0")
        if self.n_chip_failures + self.n_dram_degrades < 1:
            raise ValueError("a faults block needs at least one fault")
        lo, hi = self.window
        if not 0.0 <= lo < hi <= 1.0:
            raise ValueError("fault window must satisfy 0 <= lo < hi <= 1")
        if not 0.0 < self.degrade_factor <= 1.0:
            raise ValueError("degrade_factor must be in (0, 1]")
        if self.outage_s is not None and self.outage_s <= 0:
            raise ValueError("outage_s must be positive")
        if self.drain_policy not in DRAIN_POLICIES:
            raise ValueError(
                f"drain_policy must be one of {DRAIN_POLICIES}, "
                f"got {self.drain_policy!r}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the fault plan (``outage_s`` omitted when unset)."""
        data: Dict[str, Any] = {
            "n_chip_failures": self.n_chip_failures,
            "n_dram_degrades": self.n_dram_degrades,
            "window": list(self.window),
            "degrade_factor": self.degrade_factor,
            "drain_policy": self.drain_policy,
        }
        if self.outage_s is not None:
            data["outage_s"] = self.outage_s
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultsSpec":
        """Rebuild a fault plan from :meth:`to_dict` data."""
        outage = data.get("outage_s")
        return cls(
            n_chip_failures=int(data.get("n_chip_failures", 0)),
            n_dram_degrades=int(data.get("n_dram_degrades", 0)),
            window=tuple(float(v) for v in data.get("window", (0.25, 0.75))),
            outage_s=None if outage is None else float(outage),
            degrade_factor=float(data.get("degrade_factor", 0.5)),
            drain_policy=str(data.get("drain_policy", "drain")),
        )


@dataclass(frozen=True)
class ChaosSpec:
    """Declarative runtime-chaos plan: how much to break the control plane.

    The concrete :class:`~repro.serving.runtime.chaos.ChaosSchedule` —
    which actors crash, which messages drop, at which logical ordinals —
    is derived at compile time from the owning spec's hash (role
    ``"chaos"``), so the plan stays pure data and the schedule
    reproduces bit-identically everywhere.  Chaos lives entirely at the
    live runtime's mailbox boundary: the batch plane ignores it, and the
    supervised live plane must produce a report identical to the
    undisturbed run's (modulo the ``incidents`` block) — that invariant
    is exactly what a chaos block asks CI to re-prove for the scenario.

    ``n_crashes``/``n_hangs`` target chip actors, ``n_drops``/
    ``n_delays`` the message stream, ``n_supervisor_crashes`` the
    supervisor itself (exercising restart-from-auto-checkpoint).
    ``hang_shards`` sizes each hang, ``delay_s`` each delay, and
    ``max_retries`` caps per-job recovery attempts before the run fails.
    """

    n_crashes: int = 1
    n_hangs: int = 0
    n_drops: int = 0
    n_delays: int = 0
    n_supervisor_crashes: int = 0
    hang_shards: int = 2
    delay_s: float = 0.05
    max_retries: int = 3

    def __post_init__(self) -> None:
        counts = (
            self.n_crashes,
            self.n_hangs,
            self.n_drops,
            self.n_delays,
            self.n_supervisor_crashes,
        )
        if any(count < 0 for count in counts):
            raise ValueError("chaos counts must be >= 0")
        if sum(counts) < 1:
            raise ValueError("a chaos block needs at least one fault")
        if self.hang_shards < 1:
            raise ValueError("hang_shards must be >= 1")
        if self.delay_s <= 0:
            raise ValueError("delay_s must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the chaos plan to plain JSON data."""
        return {
            "n_crashes": self.n_crashes,
            "n_hangs": self.n_hangs,
            "n_drops": self.n_drops,
            "n_delays": self.n_delays,
            "n_supervisor_crashes": self.n_supervisor_crashes,
            "hang_shards": self.hang_shards,
            "delay_s": self.delay_s,
            "max_retries": self.max_retries,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChaosSpec":
        """Rebuild a chaos plan from :meth:`to_dict` data."""
        return cls(
            n_crashes=int(data.get("n_crashes", 1)),
            n_hangs=int(data.get("n_hangs", 0)),
            n_drops=int(data.get("n_drops", 0)),
            n_delays=int(data.get("n_delays", 0)),
            n_supervisor_crashes=int(data.get("n_supervisor_crashes", 0)),
            hang_shards=int(data.get("hang_shards", 2)),
            delay_s=float(data.get("delay_s", 0.05)),
            max_retries=int(data.get("max_retries", 3)),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, serializable description of one serving scenario."""

    name: str
    description: str = ""
    n_requests: int = 100
    mix: Tuple[WorkloadComponent, ...] = (WorkloadComponent(name="chat", images=0),)
    arrival: ArrivalSpec = ArrivalSpec()
    fleet: FleetSpec = FleetSpec()
    slo: SLOSpec = SLOSpec()
    #: Extra entropy folded into every derived seed; two specs that differ
    #: only in the salt compile to different (but each reproducible) traces.
    seed_salt: int = 0
    #: Optional fault plan; ``None`` (the default, omitted from the
    #: serialized form) keeps the scenario on the fault-free path and its
    #: spec hash exactly as before the field existed.
    faults: Optional[FaultsSpec] = None
    #: Optional runtime-chaos plan; ``None`` (the default, omitted from
    #: the serialized form) keeps the spec hash exactly as before the
    #: field existed.  Chaos targets the live runtime's control plane
    #: only — it composes freely with ``faults`` (simulated hardware).
    chaos: Optional[ChaosSpec] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must not be empty")
        if self.n_requests < 1:
            raise ValueError("n_requests must be >= 1")
        if not self.mix:
            raise ValueError("a scenario needs at least one workload component")
        names = [component.name for component in self.mix]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate component names in mix: {names}")
        if self.arrival.kind == "trace" and self.arrival.times is not None:
            if self.n_requests > len(self.arrival.times):
                raise ValueError(
                    f"trace holds {len(self.arrival.times)} arrivals, "
                    f"{self.n_requests} requested"
                )
        if self.faults is not None:
            chips = (
                self.fleet.autoscaler.max_chips
                if self.fleet.autoscaler is not None
                else self.fleet.n_chips
            )
            total = self.faults.n_chip_failures + self.faults.n_dram_degrades
            if total > chips:
                raise ValueError(
                    f"faults target {total} distinct chips but the fleet "
                    f"has only {chips}"
                )
            if (
                self.faults.outage_s is None
                and self.faults.n_chip_failures >= chips
            ):
                raise ValueError(
                    "permanent chip failures must leave at least one chip "
                    "alive (set outage_s or lower n_chip_failures)"
                )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Serialize the whole scenario (``faults`` only when present)."""
        data: Dict[str, Any] = {
            "name": self.name,
            "description": self.description,
            "n_requests": self.n_requests,
            "mix": [component.to_dict() for component in self.mix],
            "arrival": self.arrival.to_dict(),
            "fleet": self.fleet.to_dict(),
            "slo": self.slo.to_dict(),
            "seed_salt": self.seed_salt,
        }
        if self.faults is not None:
            data["faults"] = self.faults.to_dict()
        if self.chaos is not None:
            data["chaos"] = self.chaos.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a scenario from :meth:`to_dict` data."""
        return cls(
            name=str(data["name"]),
            description=str(data.get("description", "")),
            n_requests=int(data.get("n_requests", 100)),
            mix=tuple(
                WorkloadComponent.from_dict(component)
                for component in data.get("mix", ())
            ),
            arrival=ArrivalSpec.from_dict(data.get("arrival", {})),
            fleet=FleetSpec.from_dict(data.get("fleet", {})),
            slo=SLOSpec.from_dict(data.get("slo", {})),
            seed_salt=int(data.get("seed_salt", 0)),
            faults=(
                None
                if data.get("faults") is None
                else FaultsSpec.from_dict(data["faults"])
            ),
            chaos=(
                None
                if data.get("chaos") is None
                else ChaosSpec.from_dict(data["chaos"])
            ),
        )

    def to_json(self) -> str:
        """Human-oriented JSON rendering (indented, key-sorted)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Parse a scenario back from its JSON ``text``."""
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # Identity and seed derivation
    # ------------------------------------------------------------------
    def canonical_json(self) -> str:
        """The canonical (minified, key-sorted) JSON identity of the spec."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def spec_hash(self) -> str:
        """SHA-256 of the canonical JSON — the scenario's stable identity."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    def derive_seed(self, role: str) -> int:
        """A deterministic 64-bit seed for one named random stream.

        Derived from the spec's content hash, never from Python's salted
        ``hash()`` or interpreter state, so the same spec yields the same
        seed in every process (the regression suite pins reference values).
        """
        material = f"{self.spec_hash()}:{role}".encode("utf-8")
        return int.from_bytes(hashlib.sha256(material).digest()[:8], "big")

    def with_fleet(self, fleet: FleetSpec) -> "ScenarioSpec":
        """A copy serving the same traffic on a different fleet."""
        return replace(self, fleet=fleet)
