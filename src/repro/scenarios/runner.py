"""Scenario execution: spec → trace → fleet simulation → report.

:func:`run_scenario` is the one entry point: it compiles the spec
(:mod:`repro.scenarios.compile`), builds the fleet it describes — a static
:class:`~repro.serving.fleet.FleetSimulator` or, when the spec carries an
:class:`~repro.scenarios.spec.AutoscalerSpec`, the SLO-aware
:class:`~repro.serving.autoscale.AutoscalingFleetSimulator` — plays the
trace, prices the offered load through the array-native batch engine and
folds everything into a :class:`~repro.scenarios.report.ScenarioReport`.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Optional, Union

from ..core.batch import batch_price_request_mix
from ..core.config import SystemConfig, default_system
from ..models.mllm import get_mllm
from ..serving.autoscale import (
    AutoscaleResult,
    AutoscalerConfig,
    AutoscalingFleetSimulator,
)
from ..serving.faults import fault_recovery
from ..serving.fleet import FleetSimulator
from .compile import CompiledScenario, compile_scenario
from .report import (
    AutoscaleSummary,
    FaultImpact,
    FaultSummary,
    IncidentSummary,
    PricingSummary,
    ScenarioReport,
    format_scenario_report,
    slo_checks,
    tenant_summaries,
)
from .spec import AutoscalerSpec, ScenarioSpec


def autoscaler_config(spec: ScenarioSpec) -> Optional[AutoscalerConfig]:
    """The runtime controller config a spec's autoscaler block describes.

    The controller's TTFT target is the scenario's stated SLO; a spec that
    asks for autoscaling without a ``ttft_p99_s`` objective is rejected —
    the controller would have nothing to steer toward.
    """
    block = spec.fleet.autoscaler
    if block is None:
        return None
    if spec.slo.ttft_p99_s is None:
        raise ValueError(
            f"scenario {spec.name!r} enables autoscaling but states no "
            "ttft_p99_s SLO for the controller to target"
        )
    # AutoscalerSpec's fields are AutoscalerConfig's, minus the target —
    # a new knob added to both dataclasses flows through automatically.
    return AutoscalerConfig(target_p99_ttft_s=spec.slo.ttft_p99_s, **asdict(block))


def build_fleet(
    spec: ScenarioSpec,
    *,
    engine: str = "macro",
) -> Union[FleetSimulator, AutoscalingFleetSimulator]:
    """Instantiate the fleet ``spec``'s :class:`FleetSpec` describes.

    ``engine`` selects the chips' decode-loop implementation (see
    :data:`repro.serving.queue.ENGINES`); reports are engine-independent,
    the macro default just simulates faster.
    """
    model = get_mllm(spec.fleet.model)
    controller = autoscaler_config(spec)
    if controller is not None:
        return AutoscalingFleetSimulator(
            model,
            autoscaler=controller,
            max_batch_size=spec.fleet.max_batch_size,
            cc_bandwidth_fraction=spec.fleet.cc_bandwidth_fraction,
            context_bucket=spec.fleet.context_bucket,
            engine=engine,
        )
    return FleetSimulator(
        model,
        n_chips=spec.fleet.n_chips,
        policy=spec.fleet.policy,
        max_batch_size=spec.fleet.max_batch_size,
        cc_bandwidth_fraction=spec.fleet.cc_bandwidth_fraction,
        context_bucket=spec.fleet.context_bucket,
        engine=engine,
    )


def price_offered_load(
    compiled: CompiledScenario,
    makespan_s: float,
    *,
    system: Optional[SystemConfig] = None,
) -> PricingSummary:
    """Price ``compiled``'s offered load through the batched cost engine.

    ``makespan_s`` converts total batch-1 chip-seconds into the mean fleet
    size the load demands; ``system`` overrides the chip configuration the
    pricing runs on (default: the paper's default EdgeMM system).
    """
    model = get_mllm(compiled.spec.fleet.model)
    system = system or default_system()
    prices = batch_price_request_mix(
        model, [request.request for request in compiled.trace], system
    )
    chip_seconds = sum(prices[request.request].latency_s for request in compiled.trace)
    return PricingSummary(
        unique_shapes=len(prices),
        batch1_chip_seconds=chip_seconds,
        mean_chips_demanded=(chip_seconds / makespan_s if makespan_s > 0 else 0.0),
    )


def scenario_run_kwargs(compiled: CompiledScenario, fleet) -> dict:
    """The ``faults``/``priorities`` kwargs a compiled scenario's run takes.

    Shared by the batch and live execution planes so both route through
    the fleet ``run`` entry points identically.  A static fleet has no
    admission control, so priorities alone (no faults) change nothing
    there — only the autoscaled loop's weighted admission reacts to
    them, hence the ``AutoscalingFleetSimulator`` guard.
    """
    run_kwargs: dict = {}
    if compiled.faults is not None:
        run_kwargs["faults"] = compiled.faults
        run_kwargs["priorities"] = compiled.priorities
    elif compiled.priorities is not None and isinstance(
        fleet, AutoscalingFleetSimulator
    ):
        run_kwargs["priorities"] = compiled.priorities
    return run_kwargs


def run_scenario(
    spec: ScenarioSpec, *, engine: str = "macro", runtime: str = "batch"
) -> ScenarioReport:
    """Compile and run one scenario ``spec`` end to end.

    ``engine`` forwards to :func:`build_fleet`; the report is identical
    for every engine (regression-tested through the golden suite).
    ``runtime`` selects the execution plane (see
    :data:`repro.serving.dispatch.RUNTIMES`): ``"live"`` streams the
    compiled trace through the asyncio actor runtime and produces the
    byte-identical report.  Specs carrying a ``faults`` block run
    through the event-driven degradation path and their reports grow a
    ``faults`` summary with per-disruption recovery metrics; specs
    declaring tenants grow a per-tenant attainment block.  Plain specs
    emit the exact historical report (golden byte identity).

    A spec carrying a ``chaos`` block routes its ``"live"`` plane
    through the *supervised* runtime
    (:func:`repro.serving.runtime.service.run_scenario_supervised`) with
    the spec's own compiled chaos schedule injected — the report is
    byte-identical modulo the conditional ``incidents`` block.  The
    ``"batch"`` plane ignores chaos by design (there is no control plane
    to break), which is itself the invariant: chaos must not change
    what is computed.
    """
    if runtime == "live" and spec.chaos is not None:
        from ..serving.runtime.service import run_scenario_supervised

        return run_scenario_supervised(spec, engine=engine)
    compiled = compile_scenario(spec)
    fleet = build_fleet(spec, engine=engine)
    result = fleet.run(
        list(compiled.trace),
        runtime=runtime,
        **scenario_run_kwargs(compiled, fleet),
    )
    return scenario_report(spec, compiled, result)


def scenario_report(
    spec: ScenarioSpec, compiled: CompiledScenario, result, *, incidents=None
) -> ScenarioReport:
    """Fold a fleet ``result`` into ``spec``'s canonical report.

    Pure assembly over the ``spec``, its ``compiled`` trace and the run
    ``result`` — both execution planes (and checkpoint resumes) call it
    with their result object, so report formatting lives in exactly one
    place.  ``incidents`` (supervised runs only) attaches the recovery
    timeline as the conditional ``incidents`` block; an empty sequence
    attaches nothing, so undisturbed supervised runs emit the exact
    batch report.
    """
    report = result.report
    autoscale = (
        AutoscaleSummary.from_result(result)
        if isinstance(result, AutoscaleResult)
        else None
    )
    tenants = None
    if any(component.tenant is not None for component in spec.mix):
        tenants = tenant_summaries(
            result.records,
            compiled.tenants,
            {
                component.tenant or "default": component.priority
                for component in spec.mix
            },
            spec.slo.targets(),
            rejected_ids=getattr(result, "rejected_ids", ()),
        )
    faults = None
    if compiled.faults is not None:
        impacts = tuple(
            FaultImpact.from_recovery(recovery)
            for recovery in fault_recovery(
                result.records, compiled.faults.events
            )
        )
        faults = FaultSummary(
            drain_policy=compiled.faults.drain_policy,
            n_redispatched=len(getattr(result, "redispatched_ids", ())),
            n_aborted=len(getattr(result, "aborted_ids", ())),
            events=compiled.faults.events,
            impacts=impacts,
        )
    return ScenarioReport(
        name=spec.name,
        description=spec.description,
        spec_hash=spec.spec_hash(),
        n_requests=spec.n_requests,
        n_completed=report.n_requests,
        component_counts=tuple(sorted(compiled.component_counts.items())),
        makespan_s=report.makespan_s,
        requests_per_second=report.requests_per_second,
        tokens_per_second=report.tokens_per_second,
        latency=report.latency,
        ttft=report.ttft,
        queue_wait=report.queue_wait,
        slo=slo_checks(spec.slo.targets(), report),
        pricing=price_offered_load(compiled, report.makespan_s),
        autoscale=autoscale,
        tenants=tenants,
        faults=faults,
        # Attached only when the timeline is non-empty: an undisturbed
        # supervised run emits the exact batch report, byte for byte.
        incidents=(
            IncidentSummary.from_incidents(incidents) if incidents else None
        ),
    )


__all__ = [
    "autoscaler_config",
    "build_fleet",
    "price_offered_load",
    "run_scenario",
    "scenario_report",
    "scenario_run_kwargs",
    "format_scenario_report",
]
