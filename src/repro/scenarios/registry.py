"""The built-in scenario catalogue.

Every entry is a plain :class:`~repro.scenarios.spec.ScenarioSpec` —
declarative data, no code — covering the workload families the paper's
heterogeneous design targets: text chat, multi-image prompts, video-frame
streaming and long-context summarization, alone and mixed, under Poisson,
bursty and replayed-trace arrivals, on static and autoscaled fleets.

``register_scenario`` is open: downstream experiments register their own
specs and run them through the same CLI and golden-report machinery.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from .spec import (
    ArrivalSpec,
    AutoscalerSpec,
    FaultsSpec,
    FleetSpec,
    ScenarioSpec,
    SLOSpec,
    WorkloadComponent,
)

_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Register a scenario spec under its (case-insensitive) name."""
    key = spec.name.lower()
    if key in _REGISTRY:
        raise ValueError(f"duplicate scenario registration: {spec.name}")
    _REGISTRY[key] = spec
    return spec


def available_scenarios() -> List[str]:
    """Names of all registered scenarios, sorted."""
    return sorted(_REGISTRY)


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario by (case-insensitive) name."""
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown scenario {name!r}; available: "
            f"{', '.join(available_scenarios())}"
        )
    return _REGISTRY[key]


# ----------------------------------------------------------------------
# Workload-mix building blocks
# ----------------------------------------------------------------------
TEXT_CHAT = WorkloadComponent(
    name="text_chat",
    images=0,
    prompt_token_range=(16, 96),
    output_token_choices=(16, 32, 64, 128, 256),
    output_token_weights=(0.3, 0.3, 0.25, 0.1, 0.05),
)

MULTI_IMAGE = WorkloadComponent(
    name="multi_image",
    images=4,
    prompt_token_range=(16, 48),
    output_token_choices=(32, 64, 128),
    output_token_weights=(0.5, 0.35, 0.15),
)

VIDEO_FRAMES = WorkloadComponent(
    name="video_frames",
    images=2,
    prompt_token_range=(8, 16),
    output_token_choices=(8, 16),
    output_token_weights=(0.7, 0.3),
)

LONG_CONTEXT = WorkloadComponent(
    name="long_context",
    images=0,
    prompt_token_range=(512, 1024),
    output_token_choices=(128, 256),
    output_token_weights=(0.6, 0.4),
)


# ----------------------------------------------------------------------
# Catalogue
# ----------------------------------------------------------------------
CHAT_POISSON = register_scenario(
    ScenarioSpec(
        name="chat-poisson",
        description="Pure text chat at a steady Poisson rate on one chip",
        n_requests=120,
        mix=(TEXT_CHAT,),
        arrival=ArrivalSpec(kind="poisson", rate_rps=8.0),
        fleet=FleetSpec(n_chips=1, max_batch_size=16),
        slo=SLOSpec(ttft_p99_s=0.5, latency_p95_s=5.0),
    )
)

MULTI_IMAGE_CHAT = register_scenario(
    ScenarioSpec(
        name="multi-image-chat",
        description="Four-image prompts on a two-chip least-loaded fleet",
        n_requests=80,
        mix=(MULTI_IMAGE,),
        arrival=ArrivalSpec(kind="poisson", rate_rps=0.8),
        fleet=FleetSpec(n_chips=2, policy="least_loaded", max_batch_size=8),
        slo=SLOSpec(ttft_p99_s=4.0),
    )
)

VIDEO_STREAM = register_scenario(
    ScenarioSpec(
        name="video-stream",
        description="Frame-pair keyframe captioning replayed at a fixed 1.25 Hz cadence",
        n_requests=96,
        mix=(VIDEO_FRAMES,),
        arrival=ArrivalSpec(
            kind="trace", times=tuple(round(i * 0.8, 6) for i in range(96))
        ),
        fleet=FleetSpec(n_chips=1, max_batch_size=8),
        slo=SLOSpec(ttft_p99_s=1.5, queue_wait_p99_s=1.0),
    )
)

LONG_CONTEXT_SUMMARIZE = register_scenario(
    ScenarioSpec(
        name="long-context-summarize",
        description="Long-prompt summarization trickle on two chips",
        n_requests=60,
        mix=(LONG_CONTEXT,),
        arrival=ArrivalSpec(kind="poisson", rate_rps=0.5),
        fleet=FleetSpec(n_chips=2, policy="least_loaded", max_batch_size=8),
        slo=SLOSpec(latency_p95_s=8.0),
    )
)

MIXED_RUSH_HOUR = register_scenario(
    ScenarioSpec(
        name="mixed-rush-hour",
        description=(
            "All four workload families under bursty rush-hour traffic, "
            "served by the SLO-aware autoscaler"
        ),
        n_requests=200,
        mix=(
            replace(TEXT_CHAT, weight=4.0),
            replace(MULTI_IMAGE, weight=2.0),
            replace(VIDEO_FRAMES, weight=2.0),
            replace(LONG_CONTEXT, weight=1.0),
        ),
        arrival=ArrivalSpec(
            kind="bursty",
            rate_rps=2.0,
            burst_multiplier=5.0,
            mean_calm_arrivals=50.0,
            mean_burst_arrivals=25.0,
        ),
        fleet=FleetSpec(
            max_batch_size=8,
            autoscaler=AutoscalerSpec(
                min_chips=2,
                max_chips=5,
                window=32,
                min_observations=8,
                cooldown_s=1.5,
                scale_down_ratio=0.3,
                max_queue_depth=64,
                admission="queue",
            ),
        ),
        slo=SLOSpec(ttft_p99_s=5.0),
    )
)

EDGE_KIOSK_OVERLOAD = register_scenario(
    ScenarioSpec(
        name="edge-kiosk-overload",
        description=(
            "An overloaded single-kiosk deployment: bursty mixed traffic, "
            "two chips maximum, rejecting admission beyond a shallow queue"
        ),
        n_requests=150,
        mix=(
            replace(TEXT_CHAT, weight=3.0),
            replace(MULTI_IMAGE, weight=1.0),
        ),
        arrival=ArrivalSpec(
            kind="bursty",
            rate_rps=3.0,
            burst_multiplier=6.0,
            mean_calm_arrivals=30.0,
            mean_burst_arrivals=30.0,
        ),
        fleet=FleetSpec(
            max_batch_size=8,
            autoscaler=AutoscalerSpec(
                min_chips=1,
                max_chips=2,
                window=32,
                min_observations=8,
                cooldown_s=1.0,
                scale_down_ratio=0.2,
                max_queue_depth=12,
                admission="reject",
            ),
        ),
        slo=SLOSpec(ttft_p99_s=1.5),
    )
)

DIURNAL_WEEK = register_scenario(
    ScenarioSpec(
        name="diurnal-week",
        description=(
            "A compressed week of diurnal traffic: seven two-minute 'days' "
            "whose hour-of-day load curve churns the decode-batch "
            "composition across the chat/image/long-context mix — the wave "
            "engine's target workload, regression-locked at test scale"
        ),
        n_requests=420,
        mix=(
            replace(TEXT_CHAT, weight=3.0),
            replace(MULTI_IMAGE, weight=1.0),
            replace(LONG_CONTEXT, weight=1.0),
        ),
        arrival=ArrivalSpec(kind="diurnal", rate_rps=0.5, period_s=120.0),
        fleet=FleetSpec(n_chips=2, policy="least_loaded", max_batch_size=8),
        slo=SLOSpec(ttft_p99_s=2.0, latency_p95_s=10.0),
    )
)

CHAT_CHIPFAIL = register_scenario(
    ScenarioSpec(
        name="chat-chipfail",
        description=(
            "Steady text chat on a two-chip fleet that loses one chip "
            "mid-trace and gets it back after a fixed outage — the "
            "fault-injection acceptance scenario: its report pins the "
            "p99-TTFT dent and the measured time-to-recover"
        ),
        n_requests=160,
        mix=(TEXT_CHAT,),
        arrival=ArrivalSpec(kind="poisson", rate_rps=4.0),
        fleet=FleetSpec(n_chips=2, policy="least_loaded", max_batch_size=8),
        slo=SLOSpec(ttft_p99_s=1.0),
        faults=FaultsSpec(
            n_chip_failures=1,
            window=(0.3, 0.5),
            outage_s=5.0,
            drain_policy="drain",
        ),
    )
)

TENANT_TIERS = register_scenario(
    ScenarioSpec(
        name="tenant-tiers",
        description=(
            "Premium and free tenant tiers sharing an autoscaled fleet "
            "under bursty traffic: the premium component gets double "
            "admission priority and the report breaks SLO attainment "
            "down per tenant"
        ),
        n_requests=150,
        mix=(
            replace(
                TEXT_CHAT,
                name="premium_chat",
                weight=1.0,
                tenant="premium",
                priority=2.0,
            ),
            replace(
                TEXT_CHAT,
                name="free_chat",
                weight=2.0,
                tenant="free",
            ),
        ),
        arrival=ArrivalSpec(
            kind="bursty",
            rate_rps=4.0,
            burst_multiplier=6.0,
            mean_calm_arrivals=40.0,
            mean_burst_arrivals=20.0,
        ),
        fleet=FleetSpec(
            max_batch_size=8,
            autoscaler=AutoscalerSpec(
                min_chips=1,
                max_chips=3,
                window=32,
                min_observations=8,
                cooldown_s=1.0,
                scale_down_ratio=0.3,
                max_queue_depth=16,
                admission="queue",
            ),
        ),
        slo=SLOSpec(ttft_p99_s=2.0),
    )
)

TRACE_SPIKE = register_scenario(
    ScenarioSpec(
        name="trace-spike",
        description=(
            "A replayed production-style trace: one quiet minute with a "
            "20-request spike in its middle, on a static two-chip fleet"
        ),
        n_requests=80,
        mix=(TEXT_CHAT, VIDEO_FRAMES),
        arrival=ArrivalSpec(
            kind="trace",
            times=tuple(
                sorted(
                    [round(i * 1.0, 6) for i in range(60)]
                    + [round(30.0 + i * 0.05, 6) for i in range(20)]
                )
            ),
        ),
        fleet=FleetSpec(n_chips=2, policy="round_robin", max_batch_size=8),
        slo=SLOSpec(ttft_p99_s=1.0),
    )
)
