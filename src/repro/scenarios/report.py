"""Structured scenario reports with a canonical JSON form.

:class:`ScenarioReport` is the artifact a scenario run emits: identity
(name + spec hash), traffic accounting, serving percentiles, SLO verdicts,
autoscaler activity and the batched-cost-engine pricing summary.  Its
:meth:`~ScenarioReport.to_json` rendering is *canonical* — key-sorted,
2-space-indented, trailing newline — and fully determined by the spec, so
the golden-report regression suite asserts byte identity against committed
files (the same discipline as the fig11 byte-identity check).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from ..serving.autoscale import AutoscaleResult, ScalingEvent
from ..serving.faults import FaultEvent, FaultRecovery
from ..serving.metrics import (
    PercentileStats,
    RequestRecord,
    ServingReport,
    summarize,
)
from ..serving.runtime.supervision import ActorIncident


def _stats_dict(stats: PercentileStats) -> Dict[str, float]:
    return {
        "p50": stats.p50,
        "p95": stats.p95,
        "p99": stats.p99,
        "mean": stats.mean,
        "max": stats.max,
    }


@dataclass(frozen=True)
class SLOCheck:
    """One objective's verdict: the attained value against its target."""

    metric: str
    target_s: float
    attained_s: float

    @property
    def met(self) -> bool:
        """True when the attained value is within the target."""
        return self.attained_s <= self.target_s

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the verdict to plain JSON data."""
        return {
            "metric": self.metric,
            "target_s": self.target_s,
            "attained_s": self.attained_s,
            "met": self.met,
        }


@dataclass(frozen=True)
class AutoscaleSummary:
    """Controller activity over one run."""

    peak_chips: int
    final_chips: int
    n_scale_ups: int
    n_scale_downs: int
    n_rejected: int
    rejection_rate: float
    events: Tuple[ScalingEvent, ...]

    @classmethod
    def from_result(cls, result: AutoscaleResult) -> "AutoscaleSummary":
        """Summarize the controller activity of an autoscale ``result``."""
        return cls(
            peak_chips=result.peak_chips,
            final_chips=result.final_chips,
            n_scale_ups=result.n_scale_ups,
            n_scale_downs=result.n_scale_downs,
            n_rejected=result.n_rejected,
            rejection_rate=result.rejection_rate,
            events=result.events,
        )

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the controller summary to plain JSON data."""
        return {
            "peak_chips": self.peak_chips,
            "final_chips": self.final_chips,
            "n_scale_ups": self.n_scale_ups,
            "n_scale_downs": self.n_scale_downs,
            "n_rejected": self.n_rejected,
            "rejection_rate": self.rejection_rate,
            "events": [
                {
                    "time_s": event.time_s,
                    "n_chips_before": event.n_chips_before,
                    "n_chips_after": event.n_chips_after,
                    "rolling_p99_ttft_s": event.rolling_p99_ttft_s,
                }
                for event in self.events
            ],
        }


@dataclass(frozen=True)
class TenantSummary:
    """One tenant class's traffic accounting and SLO verdicts."""

    tenant: str
    priority: float
    n_requests: int
    n_completed: int
    n_rejected: int
    latency: PercentileStats
    ttft: PercentileStats
    queue_wait: PercentileStats
    slo: Tuple[SLOCheck, ...]

    @property
    def slo_met(self) -> bool:
        """True when the tenant meets every stated objective."""
        return all(check.met for check in self.slo)

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the tenant summary to plain JSON data."""
        return {
            "tenant": self.tenant,
            "priority": self.priority,
            "n_requests": self.n_requests,
            "n_completed": self.n_completed,
            "n_rejected": self.n_rejected,
            "latency": _stats_dict(self.latency),
            "ttft": _stats_dict(self.ttft),
            "queue_wait": _stats_dict(self.queue_wait),
            "slo": [check.to_dict() for check in self.slo],
            "slo_met": self.slo_met,
        }


def tenant_summaries(
    records: Sequence[RequestRecord],
    tenants: Sequence[str],
    priorities: Mapping[str, float],
    slo_targets: Mapping[str, float],
    rejected_ids: Sequence[int] = (),
) -> Tuple[TenantSummary, ...]:
    """Per-tenant attainment, tenant-name-sorted.

    ``tenants`` names the tenant of every *offered* request by trace
    position (request id for compiled traces), ``priorities`` the
    admission priority of each tenant class, and ``rejected_ids`` the
    requests admission dropped; each tenant's verdicts against the
    ``slo_targets`` objectives are computed over its own completed
    ``records`` only.
    """
    by_tenant: Dict[str, list] = {tenant: [] for tenant in tenants}
    for record in records:
        by_tenant[tenants[record.request_id]].append(record)
    offered: Dict[str, int] = {tenant: 0 for tenant in by_tenant}
    for tenant in tenants:
        offered[tenant] += 1
    dropped: Dict[str, int] = {tenant: 0 for tenant in by_tenant}
    for request_id in rejected_ids:
        dropped[tenants[request_id]] += 1
    out = []
    for tenant in sorted(by_tenant):
        report = summarize(by_tenant[tenant])
        out.append(
            TenantSummary(
                tenant=tenant,
                priority=priorities.get(tenant, 1.0),
                n_requests=offered[tenant],
                n_completed=report.n_requests,
                n_rejected=dropped[tenant],
                latency=report.latency,
                ttft=report.ttft,
                queue_wait=report.queue_wait,
                slo=slo_checks(slo_targets, report),
            )
        )
    return tuple(out)


@dataclass(frozen=True)
class FaultImpact:
    """One fault event annotated with its measured SLO impact."""

    event: FaultEvent
    baseline_p99_ttft_s: float
    dent_depth_s: float
    time_to_recover_s: Optional[float]

    @classmethod
    def from_recovery(cls, recovery: FaultRecovery) -> "FaultImpact":
        """Lift a :class:`~repro.serving.faults.FaultRecovery` measurement."""
        return cls(
            event=recovery.event,
            baseline_p99_ttft_s=recovery.baseline_p99_ttft_s,
            dent_depth_s=recovery.dent_depth_s,
            time_to_recover_s=recovery.time_to_recover_s,
        )

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the impact to plain JSON data."""
        data: Dict[str, Any] = dict(self.event.to_dict())
        data["baseline_p99_ttft_s"] = self.baseline_p99_ttft_s
        data["dent_depth_s"] = self.dent_depth_s
        data["time_to_recover_s"] = self.time_to_recover_s
        return data


@dataclass(frozen=True)
class FaultSummary:
    """The run's fault timeline with recovery metrics per disruption."""

    drain_policy: str
    n_redispatched: int
    n_aborted: int
    events: Tuple[FaultEvent, ...]
    impacts: Tuple[FaultImpact, ...]

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the fault summary to plain JSON data."""
        return {
            "drain_policy": self.drain_policy,
            "n_redispatched": self.n_redispatched,
            "n_aborted": self.n_aborted,
            "events": [event.to_dict() for event in self.events],
            "impacts": [impact.to_dict() for impact in self.impacts],
        }


@dataclass(frozen=True)
class IncidentSummary:
    """The supervised runtime's recovery timeline for one run.

    ``timeline`` is the chronological
    :class:`~repro.serving.runtime.supervision.ActorIncident` sequence;
    ``n_sessions`` counts supervisor lives (more than one means the
    supervisor itself crashed and rebuilt from the auto-checkpoint
    ring).  The summary describes *how* the run was computed, never
    *what* it computed: the rest of the report is byte-identical with or
    without disturbances — strip the block with
    :meth:`ScenarioReport.without_incidents` to compare.
    """

    n_sessions: int
    timeline: Tuple[ActorIncident, ...]

    @classmethod
    def from_incidents(
        cls, incidents: Sequence[ActorIncident]
    ) -> "IncidentSummary":
        """Summarize a supervised run's incident list."""
        timeline = tuple(incidents)
        n_sessions = max(
            (incident.session for incident in timeline), default=1
        )
        return cls(n_sessions=n_sessions, timeline=timeline)

    @property
    def counts(self) -> Dict[str, int]:
        """Incidents per kind, kind-sorted."""
        counts: Dict[str, int] = {}
        for incident in self.timeline:
            counts[incident.kind] = counts.get(incident.kind, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the incident summary to plain JSON data."""
        return {
            "n_sessions": self.n_sessions,
            "counts": self.counts,
            "timeline": [incident.to_dict() for incident in self.timeline],
        }


@dataclass(frozen=True)
class PricingSummary:
    """Batched cost-engine view of the trace's offered load.

    ``batch1_chip_seconds`` is the total batch-1 service time the trace
    demands of one chip; divided by the makespan it yields
    ``mean_chips_demanded`` — the average fleet size the offered load
    requires before batching gains, a sizing anchor for autoscaler bounds.
    """

    unique_shapes: int
    batch1_chip_seconds: float
    mean_chips_demanded: float

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the pricing summary to plain JSON data."""
        return {
            "unique_shapes": self.unique_shapes,
            "batch1_chip_seconds": self.batch1_chip_seconds,
            "mean_chips_demanded": self.mean_chips_demanded,
        }


@dataclass(frozen=True)
class ScenarioReport:
    """The structured outcome of one scenario run."""

    name: str
    description: str
    spec_hash: str
    n_requests: int
    n_completed: int
    component_counts: Tuple[Tuple[str, int], ...]
    makespan_s: float
    requests_per_second: float
    tokens_per_second: float
    latency: PercentileStats
    ttft: PercentileStats
    queue_wait: PercentileStats
    slo: Tuple[SLOCheck, ...]
    pricing: PricingSummary
    autoscale: Optional[AutoscaleSummary] = None
    #: Per-tenant attainment; present only when the spec declares tenants
    #: (conditional emission keeps tenant-free goldens byte-identical).
    tenants: Optional[Tuple[TenantSummary, ...]] = None
    #: Fault timeline + recovery metrics; present only for fault specs.
    faults: Optional[FaultSummary] = None
    #: Supervised-runtime recovery timeline; present only when a
    #: supervised run actually recorded incidents (conditional emission
    #: keeps every batch and undisturbed-run golden byte-identical).
    incidents: Optional[IncidentSummary] = None

    @property
    def slo_met(self) -> bool:
        """True when every stated objective is met (vacuously if none)."""
        return all(check.met for check in self.slo)

    def without_incidents(self) -> "ScenarioReport":
        """The report with the ``incidents`` block stripped.

        Incident details depend on wall-clock race timing (which
        recovery path fired first), while everything else is a pure
        function of the spec — this is the comparison surface the chaos
        differential suite asserts byte-identity on.
        """
        return replace(self, incidents=None)

    # ------------------------------------------------------------------
    # Canonical serialization (golden-report surface)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Serialize the report to plain JSON data (canonical field set)."""
        data: Dict[str, Any] = {
            "name": self.name,
            "description": self.description,
            "spec_hash": self.spec_hash,
            "n_requests": self.n_requests,
            "n_completed": self.n_completed,
            "component_counts": {name: count for name, count in self.component_counts},
            "makespan_s": self.makespan_s,
            "requests_per_second": self.requests_per_second,
            "tokens_per_second": self.tokens_per_second,
            "latency": _stats_dict(self.latency),
            "ttft": _stats_dict(self.ttft),
            "queue_wait": _stats_dict(self.queue_wait),
            "slo": [check.to_dict() for check in self.slo],
            "slo_met": self.slo_met,
            "pricing": self.pricing.to_dict(),
        }
        if self.autoscale is not None:
            data["autoscale"] = self.autoscale.to_dict()
        if self.tenants is not None:
            data["tenants"] = [tenant.to_dict() for tenant in self.tenants]
        if self.faults is not None:
            data["faults"] = self.faults.to_dict()
        if self.incidents is not None:
            data["incidents"] = self.incidents.to_dict()
        return data

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, 2-space indent, trailing newline."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


def slo_checks(slo_targets: Mapping[str, float], report: ServingReport) -> Tuple[SLOCheck, ...]:
    """One verdict per objective of ``slo_targets`` against ``report``."""
    attained = {
        "ttft_p99_s": report.ttft.p99,
        "latency_p95_s": report.latency.p95,
        "queue_wait_p99_s": report.queue_wait.p99,
    }
    return tuple(
        SLOCheck(metric=metric, target_s=target, attained_s=attained[metric])
        for metric, target in sorted(slo_targets.items())
    )


def format_scenario_report(report: ScenarioReport) -> str:
    """Human-readable rendering of ``report`` for the CLI."""
    title = f"Scenario: {report.name}"
    lines = [title, "=" * len(title)]
    if report.description:
        lines.append(report.description)
    lines.append(f"spec hash          : {report.spec_hash[:16]}…")
    completed = (
        f"{report.n_completed}/{report.n_requests}"
        if report.n_completed != report.n_requests
        else f"{report.n_requests}"
    )
    lines.append(f"requests completed : {completed}")
    mix = ", ".join(f"{name} {count}" for name, count in report.component_counts)
    lines.append(f"mix                : {mix}")
    lines.append(f"makespan           : {report.makespan_s:.3f} s")
    lines.append(f"throughput         : {report.requests_per_second:.2f} req/s, "
                 f"{report.tokens_per_second:.1f} tokens/s")
    for label, stats in (
        ("latency", report.latency),
        ("TTFT", report.ttft),
        ("queue wait", report.queue_wait),
    ):
        lines.append(
            f"{label:<11}: p50 {stats.p50 * 1e3:9.2f} ms   "
            f"p95 {stats.p95 * 1e3:9.2f} ms   p99 {stats.p99 * 1e3:9.2f} ms"
        )
    lines.append(
        f"offered load       : {report.pricing.mean_chips_demanded:.2f} "
        f"batch-1 chips ({report.pricing.unique_shapes} unique shapes)"
    )
    if report.autoscale is not None:
        a = report.autoscale
        lines.append(
            f"autoscaler         : peak {a.peak_chips} chips, final "
            f"{a.final_chips}, +{a.n_scale_ups}/-{a.n_scale_downs} scalings, "
            f"{a.n_rejected} rejected"
        )
    if report.faults is not None:
        f = report.faults
        lines.append(
            f"faults             : {len(f.events)} events "
            f"({f.drain_policy}), {f.n_redispatched} redispatched, "
            f"{f.n_aborted} aborted"
        )
        for impact in f.impacts:
            recover = (
                "not recovered"
                if impact.time_to_recover_s is None
                else f"recovered in {impact.time_to_recover_s:.2f} s"
            )
            lines.append(
                f"  {impact.event.kind} chip {impact.event.chip_id} @ "
                f"{impact.event.time_s:.2f} s: p99 TTFT dent "
                f"{impact.dent_depth_s * 1e3:.2f} ms, {recover}"
            )
    if report.incidents is not None:
        i = report.incidents
        counts = ", ".join(
            f"{kind} {count}" for kind, count in i.counts.items()
        )
        lines.append(
            f"incidents          : {len(i.timeline)} over "
            f"{i.n_sessions} supervisor session(s) ({counts})"
        )
    if report.tenants is not None:
        for tenant in report.tenants:
            verdict = "MET " if tenant.slo_met else "MISS"
            lines.append(
                f"tenant {verdict}        : {tenant.tenant} "
                f"(priority {tenant.priority:g}) "
                f"{tenant.n_completed}/{tenant.n_requests} served, "
                f"p99 TTFT {tenant.ttft.p99 * 1e3:.2f} ms"
            )
    if report.slo:
        for check in report.slo:
            verdict = "MET " if check.met else "MISS"
            lines.append(
                f"SLO {verdict}           : {check.metric} "
                f"{check.attained_s * 1e3:.2f} ms vs {check.target_s * 1e3:.2f} ms"
            )
    else:
        lines.append("SLO                : none stated")
    return "\n".join(lines)
