"""Ablation studies on the design choices called out in DESIGN.md.

These go beyond the paper's published figures and quantify how sensitive the
headline results are to the main architectural knobs:

* **Pruning threshold ``t``** (Alg. 1): pruning ratio and FFN-output cosine
  similarity as the negligibility threshold varies around the paper's 16.
* **DRAM bandwidth**: end-to-end throughput of the memory-bound decode as the
  assumed DRAM part changes (the paper does not state its DRAM).
* **Systolic-array geometry**: prefill latency and peak compute as the R x C
  array size changes at constant total MAC count per cluster.
* **Cluster mix**: end-to-end latency across CC:MC ratios at a constant
  cluster count per group (the heterogeneity argument in design-space form).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence, Tuple

import numpy as np

from ..arch.chip import Chip, ChipConfig
from ..arch.cluster import CCClusterConfig
from ..arch.cores import CCCoreConfig
from ..arch.dram import DRAMConfig
from ..arch.systolic import SystolicArrayConfig
from ..core.batch import batch_run_request
from ..core.config import SystemConfig, default_system, scaled_system
from ..core.edgemm import EdgeMM
from ..models.activations import sphinx_tiny_trace
from ..models.mllm import InferenceRequest, get_mllm
from ..pruning.ffn import build_layer_stack
from ..pruning.topk import DynamicTopKConfig, prune_token
from .runner import format_table


DEFAULT_REQUEST = InferenceRequest(images=1, prompt_text_tokens=32, output_tokens=64)


# ----------------------------------------------------------------------
# Pruning threshold ablation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ThresholdAblationRow:
    threshold: float
    mean_pruning_ratio: float
    mean_cosine_similarity: float
    decode_latency_reduction: float


def pruning_threshold_ablation(
    thresholds: Sequence[float] = (4.0, 8.0, 16.0, 32.0, 64.0),
    *,
    n_tokens: int = 2,
    d_ffn: int = 256,
    model_name: str = "sphinx-tiny",
) -> List[ThresholdAblationRow]:
    """Sweep the Alg. 1 threshold ``t`` (paper default 16)."""
    if not thresholds:
        raise ValueError("thresholds must not be empty")
    trace = sphinx_tiny_trace()
    stack = build_layer_stack(trace.config.n_layers, trace.config.d_model, d_ffn)
    model = get_mllm(model_name)
    system = EdgeMM.default()
    base = system.system
    ratio_means: List[float] = []
    similarity_means: List[float] = []
    systems: List[SystemConfig] = [base]
    for threshold in thresholds:
        config = DynamicTopKConfig(threshold=threshold)
        ratios = []
        similarities = []
        for token in range(n_tokens):
            report = prune_token(trace.token_trace(token), stack, config=config)
            ratios.append(report.mean_pruning_ratio)
            similarities.append(report.mean_cosine_similarity)
        ratio_means.append(float(np.mean(ratios)))
        similarity_means.append(float(np.mean(similarities)))
        calibration = system.calibrate_pruning(trace, n_tokens=n_tokens, config=config)
        systems.append(base.with_pruning(calibration.average_keep_fraction))
    # One batched pass prices the unpruned baseline and every calibrated
    # keep fraction together (point 0 is the baseline).
    batch = batch_run_request(model, DEFAULT_REQUEST, systems)
    results = batch.results()
    baseline = results[0]
    rows: List[ThresholdAblationRow] = []
    for index, threshold in enumerate(thresholds):
        pruned = results[index + 1]
        reduction = 1.0 - pruned.decode_latency_s / baseline.decode_latency_s
        rows.append(
            ThresholdAblationRow(
                threshold=threshold,
                mean_pruning_ratio=ratio_means[index],
                mean_cosine_similarity=similarity_means[index],
                decode_latency_reduction=float(reduction),
            )
        )
    return rows


# ----------------------------------------------------------------------
# DRAM bandwidth ablation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BandwidthAblationRow:
    bandwidth_gbs: float
    decode_latency_s: float
    tokens_per_second: float
    decode_bound: str


def dram_bandwidth_ablation(
    bandwidths_gbs: Sequence[float] = (25.6, 51.2, 102.4, 204.8),
    *,
    model_name: str = "sphinx-tiny",
) -> List[BandwidthAblationRow]:
    """Sweep the assumed DRAM bandwidth (LPDDR4X .. wide LPDDR5X)."""
    if not bandwidths_gbs:
        raise ValueError("bandwidths_gbs must not be empty")
    model = get_mllm(model_name)
    base = default_system()
    systems = []
    for bandwidth in bandwidths_gbs:
        dram = DRAMConfig(peak_bandwidth_bytes_per_s=bandwidth * 1e9)
        chip = replace(base.chip, dram=dram)
        systems.append(replace(base, chip=chip, name=f"edgemm_{bandwidth:.0f}gbs"))
    batch = batch_run_request(model, DEFAULT_REQUEST, systems)
    return [
        BandwidthAblationRow(
            bandwidth_gbs=bandwidth,
            decode_latency_s=result.decode_latency_s,
            tokens_per_second=result.tokens_per_second,
            decode_bound=result.phase("llm_decode").bound,
        )
        for bandwidth, result in zip(bandwidths_gbs, batch.results())
    ]


# ----------------------------------------------------------------------
# Systolic-array geometry ablation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GeometryAblationRow:
    rows: int
    cols: int
    prefill_latency_s: float
    encode_latency_s: float
    peak_tflops: float


def systolic_geometry_ablation(
    geometries: Sequence[Tuple[int, int]] = ((8, 32), (16, 16), (32, 8)),
    *,
    model_name: str = "sphinx-tiny",
) -> List[GeometryAblationRow]:
    """Vary the R x C aspect ratio at a constant 256 PEs per core."""
    if not geometries:
        raise ValueError("geometries must not be empty")
    model = get_mllm(model_name)
    base = default_system()
    systems = []
    for rows, cols in geometries:
        systolic = SystolicArrayConfig(rows=rows, cols=cols)
        cc_core = CCCoreConfig(systolic=systolic)
        cc_cluster = CCClusterConfig(core=cc_core)
        group = replace(base.chip.group, cc_cluster=cc_cluster)
        chip = replace(base.chip, group=group)
        systems.append(replace(base, chip=chip, name=f"edgemm_sa{rows}x{cols}"))
    batch = batch_run_request(model, DEFAULT_REQUEST, systems)
    return [
        GeometryAblationRow(
            rows=rows,
            cols=cols,
            prefill_latency_s=result.prefill_latency_s,
            encode_latency_s=result.encode_latency_s,
            peak_tflops=Chip(system.chip).peak_flops / 1e12,
        )
        for (rows, cols), system, result in zip(
            geometries, systems, batch.results()
        )
    ]


# ----------------------------------------------------------------------
# Cluster-mix ablation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ClusterMixRow:
    cc_clusters_per_group: int
    mc_clusters_per_group: int
    total_latency_s: float
    tokens_per_second: float


def cluster_mix_ablation(
    mixes: Sequence[Tuple[int, int]] = ((4, 0), (3, 1), (2, 2), (1, 3), (0, 4)),
    *,
    model_name: str = "sphinx-tiny",
) -> List[ClusterMixRow]:
    """Sweep the CC:MC cluster mix at a constant four clusters per group."""
    if not mixes:
        raise ValueError("mixes must not be empty")
    model = get_mllm(model_name)
    systems = []
    for cc, mc in mixes:
        if cc == 0 and mc == 0:
            raise ValueError("a group needs at least one cluster")
        systems.append(
            scaled_system(n_groups=4, cc_clusters_per_group=cc, mc_clusters_per_group=mc)
        )
    batch = batch_run_request(model, DEFAULT_REQUEST, systems)
    return [
        ClusterMixRow(
            cc_clusters_per_group=cc,
            mc_clusters_per_group=mc,
            total_latency_s=result.total_latency_s,
            tokens_per_second=result.tokens_per_second,
        )
        for (cc, mc), result in zip(mixes, batch.results())
    ]


# ----------------------------------------------------------------------
# Combined run + report
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AblationResult:
    threshold_rows: List[ThresholdAblationRow]
    bandwidth_rows: List[BandwidthAblationRow]
    geometry_rows: List[GeometryAblationRow]
    mix_rows: List[ClusterMixRow]


def run_ablations() -> AblationResult:
    """Run all four ablation sweeps with their default parameters."""
    return AblationResult(
        threshold_rows=pruning_threshold_ablation(),
        bandwidth_rows=dram_bandwidth_ablation(),
        geometry_rows=systolic_geometry_ablation(),
        mix_rows=cluster_mix_ablation(),
    )


def format_report(result: AblationResult) -> str:
    sections = []
    sections.append(
        "Ablation A1 — Alg. 1 threshold t\n"
        + format_table(
            ["t", "prune ratio", "cosine", "decode reduction"],
            [
                [
                    row.threshold,
                    f"{100 * row.mean_pruning_ratio:.1f}%",
                    f"{row.mean_cosine_similarity:.4f}",
                    f"{100 * row.decode_latency_reduction:.1f}%",
                ]
                for row in result.threshold_rows
            ],
        )
    )
    sections.append(
        "Ablation A2 — DRAM bandwidth\n"
        + format_table(
            ["GB/s", "decode latency (s)", "tokens/s", "decode bound"],
            [
                [
                    row.bandwidth_gbs,
                    f"{row.decode_latency_s:.3f}",
                    f"{row.tokens_per_second:.1f}",
                    row.decode_bound,
                ]
                for row in result.bandwidth_rows
            ],
        )
    )
    sections.append(
        "Ablation A3 — systolic-array geometry (256 PEs per core)\n"
        + format_table(
            ["R", "C", "prefill (s)", "encoder (s)", "peak TFLOP/s"],
            [
                [
                    row.rows,
                    row.cols,
                    f"{row.prefill_latency_s:.3f}",
                    f"{row.encode_latency_s:.3f}",
                    f"{row.peak_tflops:.1f}",
                ]
                for row in result.geometry_rows
            ],
        )
    )
    sections.append(
        "Ablation A4 — CC:MC cluster mix (4 clusters per group)\n"
        + format_table(
            ["CC/group", "MC/group", "latency (s)", "tokens/s"],
            [
                [
                    row.cc_clusters_per_group,
                    row.mc_clusters_per_group,
                    f"{row.total_latency_s:.3f}",
                    f"{row.tokens_per_second:.1f}",
                ]
                for row in result.mix_rows
            ],
        )
    )
    return "\n\n".join(sections)


def larger_threshold_prunes_less(rows: Sequence[ThresholdAblationRow]) -> bool:
    """A larger t keeps more channels (only values below max/t are negligible),
    so the pruning ratio must fall monotonically as t grows."""
    ratios = [row.mean_pruning_ratio for row in rows]
    return all(later <= earlier + 1e-9 for earlier, later in zip(ratios, ratios[1:]))


def paper_threshold_is_a_good_tradeoff(
    rows: Sequence[ThresholdAblationRow], *, paper_threshold: float = 16.0
) -> bool:
    """t = 16 should keep near-full accuracy while pruning aggressively.

    Checks that the paper's threshold reaches >= 0.99 cosine similarity while
    more aggressive (smaller-t) settings in the sweep lose noticeably more.
    """
    by_threshold = {row.threshold: row for row in rows}
    if paper_threshold not in by_threshold:
        return False
    paper_row = by_threshold[paper_threshold]
    more_aggressive = [row for row in rows if row.threshold < paper_threshold]
    if paper_row.mean_cosine_similarity < 0.99:
        return False
    return all(
        row.mean_cosine_similarity <= paper_row.mean_cosine_similarity
        for row in more_aggressive
    )


def decode_scales_with_bandwidth(rows: Sequence[BandwidthAblationRow]) -> bool:
    """Decode latency must fall as DRAM bandwidth rises (memory bound)."""
    latencies = [row.decode_latency_s for row in rows]
    return all(later < earlier for earlier, later in zip(latencies, latencies[1:]))


def mixed_clusters_beat_homogeneous(rows: Sequence[ClusterMixRow]) -> bool:
    """At least one mixed configuration beats both homogeneous corners."""
    homogeneous = [
        row for row in rows if row.cc_clusters_per_group == 0 or row.mc_clusters_per_group == 0
    ]
    mixed = [
        row for row in rows if row.cc_clusters_per_group > 0 and row.mc_clusters_per_group > 0
    ]
    if not homogeneous or not mixed:
        return False
    best_homogeneous = min(row.total_latency_s for row in homogeneous)
    return any(row.total_latency_s < best_homogeneous for row in mixed)
