"""Common experiment-report utilities.

Every experiment module exposes ``run_*()`` returning a structured result
and ``format_report(result)`` rendering the same rows/series the paper
reports.  This module holds the shared plumbing: simple text tables, unit
helpers and the registry used by the ``python -m repro.experiments`` entry
point and the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a simple aligned text table."""
    rows = [[_cell(value) for value in row] for row in rows]
    headers = [str(header) for header in headers]
    widths = [len(header) for header in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = []
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_bytes(value: float) -> str:
    """Human-readable byte count."""
    if value < 0:
        raise ValueError("byte count must be >= 0")
    units = ["B", "KiB", "MiB", "GiB", "TiB"]
    index = 0
    value = float(value)
    while value >= 1024.0 and index < len(units) - 1:
        value /= 1024.0
        index += 1
    return f"{value:.2f} {units[index]}"


def format_seconds(value: float) -> str:
    """Human-readable time."""
    if value < 0:
        raise ValueError("time must be >= 0")
    if value >= 1.0:
        return f"{value:.3f} s"
    if value >= 1e-3:
        return f"{value * 1e3:.3f} ms"
    return f"{value * 1e6:.2f} us"


@dataclass(frozen=True)
class ExperimentSpec:
    """Registry entry mapping a paper artifact to its runner."""

    experiment_id: str
    description: str
    run: Callable[[], object]
    report: Callable[[object], str]


_REGISTRY: Dict[str, ExperimentSpec] = {}


def register_experiment(spec: ExperimentSpec) -> ExperimentSpec:
    if spec.experiment_id in _REGISTRY:
        raise ValueError(f"duplicate experiment id {spec.experiment_id!r}")
    _REGISTRY[spec.experiment_id] = spec
    return spec


def available_experiments() -> List[str]:
    return sorted(_REGISTRY)


def get_experiment(experiment_id: str) -> ExperimentSpec:
    if experiment_id not in _REGISTRY:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: "
            f"{', '.join(available_experiments())}"
        )
    return _REGISTRY[experiment_id]


def run_and_report(experiment_id: str) -> str:
    """Run one experiment and return its formatted report."""
    spec = get_experiment(experiment_id)
    result = spec.run()
    return spec.report(result)
