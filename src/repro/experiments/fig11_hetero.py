"""EXP-F11 — homogeneous vs heterogeneous designs (paper Fig. 11).

Compares four chips on SPHINX-Tiny and its inner phases, all normalised to
the original Snitch SIMD cluster baseline:

* the Snitch baseline (speedup 1.0 by definition),
* homo-CC (only compute-centric clusters),
* homo-MC (only memory-centric clusters),
* the heterogeneous EdgeMM.

Paper shape targets: every extended design beats the baseline; homo-CC wins
the GEMM-heavy phases, homo-MC wins decode; the heterogeneous chip wins the
end-to-end MLLM (paper: 1.79x over homo-CC, 2.65x over homo-MC).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..baselines.snitch import SnitchBaseline
from ..core.batch import batch_run_request
from ..core.config import default_system, homo_cc_system, homo_mc_system
from ..models.mllm import InferenceRequest, get_mllm
from .runner import format_table


PHASES: Tuple[str, ...] = ("vision_encoder", "llm_prefill", "llm_decode", "full_mllm")


@dataclass(frozen=True)
class Fig11Result:
    model_name: str
    request: InferenceRequest
    #: latency in seconds per (design, phase)
    latency_s: Dict[str, Dict[str, float]]
    #: speedup over the Snitch baseline per (design, phase)
    speedup: Dict[str, Dict[str, float]]


def run_fig11(
    model_name: str = "sphinx-tiny",
    *,
    request: InferenceRequest = None,
) -> Fig11Result:
    request = request or InferenceRequest(images=1, prompt_text_tokens=32, output_tokens=64)
    model = get_mllm(model_name)
    # The three extended designs share the closed-form cost model, so they
    # evaluate as one three-point grid through the batch engine; the Snitch
    # baseline keeps its own (SIMD-only) cost model.
    extended = ("homo_cc", "homo_mc", "edgemm")
    batch = batch_run_request(
        model, request, [homo_cc_system(), homo_mc_system(), default_system()]
    )
    results = {"snitch": SnitchBaseline().run_request(model, request)}
    results.update(zip(extended, batch.results()))
    latency: Dict[str, Dict[str, float]] = {}
    for name, result in results.items():
        latency[name] = {
            "vision_encoder": result.encode_latency_s,
            "llm_prefill": result.prefill_latency_s,
            "llm_decode": result.decode_latency_s,
            "full_mllm": result.total_latency_s,
        }
    baseline = latency["snitch"]
    speedup = {
        name: {
            phase: (baseline[phase] / value if value > 0 else float("inf"))
            for phase, value in phases.items()
        }
        for name, phases in latency.items()
    }
    return Fig11Result(
        model_name=model_name,
        request=request,
        latency_s=latency,
        speedup=speedup,
    )


def format_report(result: Fig11Result) -> str:
    rows = []
    for design in ("snitch", "homo_cc", "homo_mc", "edgemm"):
        rows.append(
            [design]
            + [f"{result.speedup[design][phase]:.2f}x" for phase in PHASES]
        )
    table = format_table(["design"] + list(PHASES), rows)
    hetero = result.speedup["edgemm"]["full_mllm"]
    vs_cc = hetero / result.speedup["homo_cc"]["full_mllm"]
    vs_mc = hetero / result.speedup["homo_mc"]["full_mllm"]
    summary = (
        f"EdgeMM vs homo-CC on the full MLLM: {vs_cc:.2f}x (paper 1.79x)\n"
        f"EdgeMM vs homo-MC on the full MLLM: {vs_mc:.2f}x (paper 2.65x)"
    )
    return (
        f"Fig. 11 — speedups over the Snitch baseline ({result.model_name}, "
        f"{result.request.output_tokens} output tokens)\n" + table + "\n\n" + summary
    )


def hetero_wins_full_mllm(result: Fig11Result) -> bool:
    """The heterogeneous chip must beat both homogeneous chips end-to-end."""
    hetero = result.speedup["edgemm"]["full_mllm"]
    return (
        hetero > result.speedup["homo_cc"]["full_mllm"]
        and hetero > result.speedup["homo_mc"]["full_mllm"]
    )


def homo_designs_win_their_phases(result: Fig11Result) -> bool:
    """homo-CC leads the GEMM phases and homo-MC leads decode."""
    cc_wins_gemm = (
        result.speedup["homo_cc"]["llm_prefill"] >= result.speedup["homo_mc"]["llm_prefill"]
    )
    mc_wins_decode = (
        result.speedup["homo_mc"]["llm_decode"] >= result.speedup["homo_cc"]["llm_decode"]
    )
    return cc_wins_gemm and mc_wins_decode


def all_extensions_beat_baseline(result: Fig11Result) -> bool:
    """Every extended design must beat the Snitch baseline end-to-end."""
    return all(
        result.speedup[design]["full_mllm"] > 1.0
        for design in ("homo_cc", "homo_mc", "edgemm")
    )
