"""EXP-F10 — design configuration, area and power (paper Fig. 10).

The paper implements EdgeMM at 22 nm / 1 GHz and reports the chip
configuration (4 groups x (2 CC + 2 MC clusters), 4 CC-cores or 2 MC-cores
per cluster), a post-P&R power of 112 mW, the SA occupying 62 % of a
CC-core and the CIM macro occupying 81 % of an MC-core.  This experiment
reports the same quantities from the analytical area/power model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..arch.area_power import AreaPowerModel, AreaReport, PowerReport
from ..arch.chip import Chip, ChipConfig
from .runner import format_table


#: Published reference values used for comparison in the report.
PAPER_REFERENCE: Dict[str, float] = {
    "groups": 4,
    "cc_clusters": 8,
    "mc_clusters": 8,
    "cc_cores_per_cluster": 4,
    "mc_cores_per_cluster": 2,
    "frequency_ghz": 1.0,
    "power_mw": 112.0,
    "sa_fraction_of_cc_core": 0.62,
    "cim_fraction_of_mc_core": 0.81,
    "peak_tflops_bf16": 18.0,
}


@dataclass(frozen=True)
class Fig10Result:
    configuration: Dict[str, object]
    area: AreaReport
    power: PowerReport
    paper_reference: Dict[str, float]


def run_fig10(chip_config: ChipConfig = None, *, utilization: float = 0.1) -> Fig10Result:
    """Report configuration, area and power.

    ``utilization`` defaults to 0.1 — the average compute-array activity
    during MLLM inference is low because the dominant decode phase is
    memory-bound, which is the operating point the paper's 112 mW post-P&R
    power figure is compared against (see EXPERIMENTS.md).
    """
    chip_config = chip_config or ChipConfig()
    chip = Chip(chip_config)
    model = AreaPowerModel(chip_config)
    return Fig10Result(
        configuration=chip.describe(),
        area=model.area_report(),
        power=model.power_report(utilization=utilization),
        paper_reference=dict(PAPER_REFERENCE),
    )


def format_report(result: Fig10Result) -> str:
    config = result.configuration
    config_rows = [[key, value] for key, value in sorted(config.items())]
    area_rows = [
        ["CC-core area (mm^2)", f"{result.area.cc_core_mm2:.4f}"],
        ["MC-core area (mm^2)", f"{result.area.mc_core_mm2:.4f}"],
        [
            "SA fraction of CC-core",
            f"{100 * result.area.sa_fraction_of_cc_core:.1f}% (paper 62%)",
        ],
        [
            "CIM fraction of MC-core",
            f"{100 * result.area.cim_fraction_of_mc_core:.1f}% (paper 81%)",
        ],
        ["CC-cluster area (mm^2)", f"{result.area.cc_cluster_mm2:.3f}"],
        ["MC-cluster area (mm^2)", f"{result.area.mc_cluster_mm2:.3f}"],
        ["Chip area (mm^2)", f"{result.area.chip_mm2:.2f}"],
    ]
    power_rows = [
        ["leakage (mW)", f"{result.power.leakage_mw:.1f}"],
        ["host cores (mW)", f"{result.power.host_cores_mw:.1f}"],
        ["CC compute (mW)", f"{result.power.cc_compute_mw:.1f}"],
        ["MC compute (mW)", f"{result.power.mc_compute_mw:.1f}"],
        ["SRAM (mW)", f"{result.power.sram_mw:.1f}"],
        ["total (mW)", f"{result.power.total_mw:.1f} (paper 112 mW)"],
    ]
    return (
        "Fig. 10 — design configuration\n"
        + format_table(["parameter", "value"], config_rows)
        + "\n\nArea model\n"
        + format_table(["quantity", "value"], area_rows)
        + "\n\nPower model\n"
        + format_table(["component", "value"], power_rows)
    )


def configuration_matches_paper(result: Fig10Result) -> bool:
    """Structural parameters must match the published configuration."""
    config = result.configuration
    reference = result.paper_reference
    return (
        config["groups"] == reference["groups"]
        and config["cc_clusters"] == reference["cc_clusters"]
        and config["mc_clusters"] == reference["mc_clusters"]
        and abs(config["frequency_ghz"] - reference["frequency_ghz"]) < 1e-9
    )


def coprocessors_dominate_core_area(result: Fig10Result) -> bool:
    """The SA and CIM must dominate their cores' areas, as in the paper."""
    return (
        result.area.sa_fraction_of_cc_core > 0.5
        and result.area.cim_fraction_of_mc_core > 0.5
    )
