"""EXP-F3 — FFN activation sparsity across decoder layers (paper Fig. 3).

Profiles the magnitudes of the FFN input activation vectors ``Vx`` across
decoder layers during token generation, reproducing the two observations
the pruning scheme is built on:

* most channels have small magnitudes, with a few outlier channels, and
* the outliers become more prominent as the layer index increases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..models.activations import ActivationTraceGenerator, sphinx_tiny_trace
from ..pruning.metrics import kurtosis
from .runner import format_table


@dataclass(frozen=True)
class LayerSparsityProfile:
    """Channel-magnitude statistics of one decoder layer."""

    layer_index: int
    max_magnitude: float
    median_magnitude: float
    outlier_channels: int
    outlier_fraction: float
    kurtosis: float
    energy_in_top_10pct: float


@dataclass(frozen=True)
class Fig3Result:
    model_name: str
    d_model: int
    profiles: Tuple[LayerSparsityProfile, ...]


def run_fig3(
    trace: ActivationTraceGenerator = None,
    *,
    model_name: str = "sphinx-tiny",
    n_tokens: int = 4,
    outlier_threshold_divisor: float = 16.0,
) -> Fig3Result:
    """Profile a synthetic activation trace layer by layer."""
    trace = trace or sphinx_tiny_trace()
    if n_tokens <= 0:
        raise ValueError("n_tokens must be positive")
    n_layers = trace.config.n_layers
    d_model = trace.config.d_model
    profiles: List[LayerSparsityProfile] = []
    for layer in range(n_layers):
        magnitudes = np.stack(
            [np.abs(trace.layer_vector(layer, token)) for token in range(n_tokens)]
        )
        mean_magnitudes = magnitudes.mean(axis=0)
        peak = float(mean_magnitudes.max())
        threshold = peak / outlier_threshold_divisor
        outliers = int(np.count_nonzero(mean_magnitudes > threshold))
        sorted_energy = np.sort(mean_magnitudes**2)[::-1]
        top_count = max(int(round(0.1 * d_model)), 1)
        energy_top = float(sorted_energy[:top_count].sum() / max(sorted_energy.sum(), 1e-30))
        profiles.append(
            LayerSparsityProfile(
                layer_index=layer,
                max_magnitude=peak,
                median_magnitude=float(np.median(mean_magnitudes)),
                outlier_channels=outliers,
                outlier_fraction=outliers / d_model,
                kurtosis=kurtosis(mean_magnitudes),
                energy_in_top_10pct=energy_top,
            )
        )
    return Fig3Result(model_name=model_name, d_model=d_model, profiles=tuple(profiles))


def format_report(result: Fig3Result) -> str:
    rows = [
        [
            profile.layer_index,
            f"{profile.max_magnitude:.3f}",
            f"{profile.median_magnitude:.4f}",
            profile.outlier_channels,
            f"{100 * profile.outlier_fraction:.1f}%",
            f"{profile.kurtosis:.1f}",
            f"{100 * profile.energy_in_top_10pct:.1f}%",
        ]
        for profile in result.profiles
    ]
    header = (
        f"Fig. 3 — FFN activation sparsity across layers "
        f"({result.model_name}, d_model={result.d_model})"
    )
    return header + "\n" + format_table(
        ["layer", "max |Vx|", "median |Vx|", "outliers", "outlier %", "kurtosis", "top-10% energy"],
        rows,
    )


def outliers_become_more_prominent(result: Fig3Result, *, skip_first: bool = True) -> bool:
    """Check the paper's trend: deeper layers have sharper outlier structure.

    Compares the mean kurtosis of the deepest third against the shallowest
    third (excluding the unstable first layer by default).
    """
    profiles = list(result.profiles[1:] if skip_first else result.profiles)
    if len(profiles) < 3:
        raise ValueError("need at least three layers to assess the trend")
    third = max(len(profiles) // 3, 1)
    shallow = float(np.mean([p.kurtosis for p in profiles[:third]]))
    deep = float(np.mean([p.kurtosis for p in profiles[-third:]]))
    return deep > shallow


def most_channels_are_negligible(result: Fig3Result) -> bool:
    """Check that, in deep layers, most channels fall below max/16."""
    deep = result.profiles[-1]
    return deep.outlier_fraction < 0.5
