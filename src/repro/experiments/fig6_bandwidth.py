"""EXP-F6 — effective DMA/DRAM bandwidth vs transfer size (paper Fig. 6(b)).

Sweeps the matrix-block size transferred by a cluster DMA and reports the
effective bandwidth (payload / total cycles) as a fraction of the ideal pin
bandwidth, plus the same figure evaluated at the CC- and MC-cluster buffer
sizes — the quantitative basis of the paper's argument that the MC-cluster's
ample on-chip memory alleviates bandwidth pressure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..arch.chip import Chip, ChipConfig
from ..arch.dram import DRAMModel
from .runner import format_bytes, format_table


DEFAULT_SIZES: Tuple[int, ...] = tuple(1024 * (4**i) for i in range(8))  # 1 KiB .. 16 MiB


@dataclass(frozen=True)
class BandwidthPoint:
    transfer_bytes: int
    effective_bandwidth_bytes_per_s: float
    fraction_of_ideal: float


@dataclass(frozen=True)
class Fig6Result:
    points: Tuple[BandwidthPoint, ...]
    cc_buffer_bytes: int
    mc_buffer_bytes: int
    cc_buffer_fraction: float
    mc_buffer_fraction: float


def run_fig6(
    transfer_sizes: Sequence[int] = DEFAULT_SIZES,
    *,
    chip_config: ChipConfig = None,
) -> Fig6Result:
    """Sweep transfer sizes through the DRAM model of the default chip."""
    if not transfer_sizes:
        raise ValueError("transfer_sizes must not be empty")
    chip = Chip(chip_config or ChipConfig())
    dram: DRAMModel = chip.dram
    points: List[BandwidthPoint] = []
    for size in transfer_sizes:
        bandwidth = dram.effective_bandwidth(size)
        points.append(
            BandwidthPoint(
                transfer_bytes=size,
                effective_bandwidth_bytes_per_s=bandwidth,
                fraction_of_ideal=dram.effective_bandwidth_fraction(size),
            )
        )
    cc_buffer = chip.cc_cluster.data_memory_bytes
    mc_buffer = chip.mc_cluster.data_memory_bytes
    return Fig6Result(
        points=tuple(points),
        cc_buffer_bytes=cc_buffer,
        mc_buffer_bytes=mc_buffer,
        cc_buffer_fraction=dram.effective_bandwidth_fraction(cc_buffer),
        mc_buffer_fraction=dram.effective_bandwidth_fraction(mc_buffer),
    )


def format_report(result: Fig6Result) -> str:
    rows = [
        [
            format_bytes(point.transfer_bytes),
            f"{point.effective_bandwidth_bytes_per_s / 1e9:.2f} GB/s",
            f"{100 * point.fraction_of_ideal:.1f}%",
        ]
        for point in result.points
    ]
    table = format_table(["transfer size", "effective bandwidth", "of ideal"], rows)
    summary = (
        f"CC-cluster buffer ({format_bytes(result.cc_buffer_bytes)}): "
        f"{100 * result.cc_buffer_fraction:.1f}% of ideal\n"
        f"MC-cluster buffer ({format_bytes(result.mc_buffer_bytes)}): "
        f"{100 * result.mc_buffer_fraction:.1f}% of ideal"
    )
    return "Fig. 6(b) — effective bandwidth vs transfer size\n" + table + "\n\n" + summary


def bandwidth_is_monotonic(result: Fig6Result) -> bool:
    """Effective bandwidth must grow with transfer size."""
    fractions = [point.fraction_of_ideal for point in result.points]
    return all(later >= earlier for earlier, later in zip(fractions, fractions[1:]))


def small_transfers_lose_bandwidth(result: Fig6Result, threshold: float = 0.5) -> bool:
    """The smallest transfer should fall well below the ideal bandwidth."""
    return result.points[0].fraction_of_ideal < threshold


def mc_buffers_recover_bandwidth(result: Fig6Result, threshold: float = 0.9) -> bool:
    """Transfers sized to the MC-cluster memory should approach the ideal."""
    return result.mc_buffer_fraction >= threshold
