"""EXP-F13 — latency and throughput gains from bandwidth management (Fig. 13).

Sweeps the output token length and, for every length, compares:

* the default pipeline with equal CC/MC bandwidth sharing,
* the token-length-driven bandwidth reallocation (Bc : Bm throttling),
* stream-based batch decoding past the reallocation limit.

Reported per length: the chosen Bc:Bm ratio (or batch size), the request
latency reduction versus equal sharing and the throughput gain — the two
panels of Fig. 13.  The paper reports le = 36, lb = 131, a 40.3 % latency
reduction and 2.14x throughput at l = 128, and a 13.98x throughput gain
from batch decoding at l = 1024 at the cost of 42 % extra latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..core.edgemm import EdgeMM
from ..core.pipeline import PipelineModel
from ..models.mllm import get_mllm
from ..scheduling.bandwidth import BandwidthManager
from ..scheduling.batching import BatchPlanner
from .runner import format_table


DEFAULT_LENGTHS: Tuple[int, ...] = (8, 16, 32, 64, 128, 256, 512, 1024)


@dataclass(frozen=True)
class Fig13Point:
    output_tokens: int
    cc_fraction: float
    bc_to_bm: Tuple[int, int]
    batch_size: int
    baseline_latency_s: float
    managed_latency_s: float
    latency_reduction: float
    baseline_tokens_per_s: float
    managed_tokens_per_s: float
    throughput_gain: float


@dataclass(frozen=True)
class Fig13Result:
    model_name: str
    expected_balanced_length: int
    reallocation_limit_length: int
    points: Tuple[Fig13Point, ...]


def run_fig13(
    model_name: str = "sphinx-tiny",
    output_lengths: Sequence[int] = DEFAULT_LENGTHS,
    *,
    keep_fraction: Optional[float] = None,
    max_latency_overhead: float = 0.6,
    system: Optional[EdgeMM] = None,
) -> Fig13Result:
    """Sweep output lengths through the bandwidth manager and batch planner."""
    if not output_lengths:
        raise ValueError("output_lengths must not be empty")
    system = system or EdgeMM.default()
    model = get_mllm(model_name)
    pipeline: PipelineModel = system.pipeline(model)
    manager = BandwidthManager(pipeline, keep_fraction=keep_fraction)
    planner = BatchPlanner(
        pipeline,
        cc_bandwidth_fraction=min(manager.candidates),
        keep_fraction=keep_fraction,
    )
    le = manager.expected_balanced_length()
    lb = manager.reallocation_limit_length()
    points = []
    for length in output_lengths:
        decision = manager.decide(length)
        batch_size = 1
        managed_point = decision.point
        if length > lb:
            batch_decision = planner.decide(
                length, max_latency_overhead=max_latency_overhead
            )
            if (
                batch_decision.batch_size > 1
                and batch_decision.point.tokens_per_second
                > managed_point.tokens_per_second
            ):
                batch_size = batch_decision.batch_size
                managed_point = batch_decision.point
        baseline = decision.baseline_point
        latency_reduction = (
            1.0 - managed_point.request_latency_s / baseline.request_latency_s
            if baseline.request_latency_s > 0
            else 0.0
        )
        throughput_gain = (
            managed_point.tokens_per_second / baseline.tokens_per_second
            if baseline.tokens_per_second > 0
            else 1.0
        )
        points.append(
            Fig13Point(
                output_tokens=length,
                cc_fraction=managed_point.cc_bandwidth_fraction,
                bc_to_bm=decision.bc_to_bm_ratio,
                batch_size=batch_size,
                baseline_latency_s=baseline.request_latency_s,
                managed_latency_s=managed_point.request_latency_s,
                latency_reduction=latency_reduction,
                baseline_tokens_per_s=baseline.tokens_per_second,
                managed_tokens_per_s=managed_point.tokens_per_second,
                throughput_gain=throughput_gain,
            )
        )
    return Fig13Result(
        model_name=model_name,
        expected_balanced_length=le,
        reallocation_limit_length=lb,
        points=tuple(points),
    )


def format_report(result: Fig13Result) -> str:
    rows = []
    for point in result.points:
        rows.append(
            [
                point.output_tokens,
                f"1:{point.bc_to_bm[1]}",
                point.batch_size,
                f"{point.baseline_latency_s:.2f}",
                f"{point.managed_latency_s:.2f}",
                f"{100 * point.latency_reduction:.1f}%",
                f"{point.baseline_tokens_per_s:.1f}",
                f"{point.managed_tokens_per_s:.1f}",
                f"{point.throughput_gain:.2f}x",
            ]
        )
    table = format_table(
        [
            "out tokens",
            "Bc:Bm",
            "batch",
            "base lat (s)",
            "managed lat (s)",
            "lat reduction",
            "base tok/s",
            "managed tok/s",
            "thpt gain",
        ],
        rows,
    )
    summary = (
        f"expected balanced length le = {result.expected_balanced_length} (paper 36)\n"
        f"reallocation limit lb = {result.reallocation_limit_length} (paper 131)"
    )
    return (
        f"Fig. 13 — bandwidth and workload management ({result.model_name})\n"
        + table
        + "\n\n"
        + summary
    )


def reallocation_helps_long_outputs(result: Fig13Result) -> bool:
    """Reallocation must pay off once the output length clearly exceeds le.

    Just past le the stages are still nearly balanced and equal sharing can
    remain the best choice, so the check looks at the longest unbatched
    operating point within the reallocation range (or, failing that, the
    first point past le) and requires a positive latency reduction there.
    """
    le = result.expected_balanced_length
    lb = result.reallocation_limit_length
    candidates = [
        p for p in result.points if le < p.output_tokens <= lb and p.batch_size == 1
    ]
    if not candidates:
        candidates = [p for p in result.points if p.output_tokens > le][:1]
    if not candidates:
        return False
    longest = max(candidates, key=lambda point: point.output_tokens)
    return longest.latency_reduction > 0


def short_outputs_keep_equal_sharing(result: Fig13Result) -> bool:
    """Lengths below le gain little, so equal sharing (1:1) is kept."""
    shorter = [p for p in result.points if p.output_tokens <= result.expected_balanced_length]
    return all(point.cc_fraction >= 0.5 for point in shorter) if shorter else True


def batching_boosts_long_output_throughput(result: Fig13Result, factor: float = 1.5) -> bool:
    """The longest output length must gain at least ``factor`` in throughput."""
    longest = max(result.points, key=lambda point: point.output_tokens)
    return longest.throughput_gain >= factor
