"""EXP-F2 — workload analysis of two MLLMs (paper Fig. 2).

Reproduces the three panels:

* (a) inference-latency breakdown on the GPU baseline as the output token
  length varies (vision encoder / projector / LLM prefill / LLM decode),
* (b) per-phase model statistics (GFLOPs, parameters, arithmetic
  intensity) showing the compute-intensive encoder/prefill vs the
  memory-bound decode,
* (c) DRAM memory-access breakdown by component (FFN weights dominate,
  KV cache is a small fraction for short edge contexts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..baselines.gpu import GPUModel, rtx3060_laptop
from ..models.mllm import InferenceRequest, get_mllm
from ..models.profiler import (
    LatencyBreakdown,
    WorkloadStatistics,
    latency_sweep,
    memory_access_breakdown,
    workload_statistics,
)
from .runner import format_bytes, format_seconds, format_table


DEFAULT_MODELS: Tuple[str, str] = ("sphinx-tiny", "karmavlm")
DEFAULT_OUTPUT_LENGTHS: Tuple[int, ...] = (8, 32, 128, 512)


@dataclass(frozen=True)
class Fig2Result:
    """All three panels for the profiled MLLMs."""

    output_lengths: Tuple[int, ...]
    latency_breakdowns: Dict[str, List[LatencyBreakdown]]
    statistics: Dict[str, WorkloadStatistics]
    memory_breakdowns: Dict[str, Dict[str, int]]


def run_fig2(
    model_names: Sequence[str] = DEFAULT_MODELS,
    output_lengths: Sequence[int] = DEFAULT_OUTPUT_LENGTHS,
    *,
    prompt_text_tokens: int = 32,
    gpu: GPUModel = None,
) -> Fig2Result:
    """Profile the workloads on the GPU baseline (as the paper does)."""
    gpu = gpu or rtx3060_laptop()
    breakdowns: Dict[str, List[LatencyBreakdown]] = {}
    statistics: Dict[str, WorkloadStatistics] = {}
    memory: Dict[str, Dict[str, int]] = {}
    for name in model_names:
        model = get_mllm(name)
        breakdowns[name] = latency_sweep(
            model,
            gpu,
            output_lengths,
            prompt_text_tokens=prompt_text_tokens,
            hardware_name=gpu.config.name,
        )
        reference = model.build_workload(
            InferenceRequest(
                images=1, prompt_text_tokens=prompt_text_tokens, output_tokens=64
            )
        )
        statistics[name] = workload_statistics(reference)
        memory[name] = memory_access_breakdown(reference)
    return Fig2Result(
        output_lengths=tuple(output_lengths),
        latency_breakdowns=breakdowns,
        statistics=statistics,
        memory_breakdowns=memory,
    )


def format_report(result: Fig2Result) -> str:
    """Render the three panels as text tables."""
    sections: List[str] = []
    # Panel (a): latency breakdown vs output length.
    for model_name, sweeps in result.latency_breakdowns.items():
        rows = []
        for breakdown in sweeps:
            rows.append(
                [
                    breakdown.output_tokens,
                    format_seconds(breakdown.total_latency_s),
                    f"{100 * breakdown.fraction('vision_encoder'):.1f}%",
                    f"{100 * breakdown.fraction('projector'):.1f}%",
                    f"{100 * breakdown.fraction('llm_prefill'):.1f}%",
                    f"{100 * breakdown.fraction('llm_decode'):.1f}%",
                ]
            )
        sections.append(
            f"Fig. 2(a) — {model_name} latency breakdown on "
            f"{sweeps[0].hardware_name}\n"
            + format_table(
                ["out tokens", "total", "encoder", "projector", "prefill", "decode"],
                rows,
            )
        )
    # Panel (b): model statistics per phase.
    for model_name, stats in result.statistics.items():
        rows = []
        for phase_name, phase in stats.phases.items():
            rows.append(
                [
                    phase_name,
                    f"{phase.flops / 1e9:.2f}",
                    format_bytes(phase.weight_bytes),
                    f"{phase.arithmetic_intensity:.2f}",
                    f"{100 * phase.gemv_flops / max(phase.flops, 1):.1f}%",
                ]
            )
        sections.append(
            f"Fig. 2(b) — {model_name} per-phase statistics (64 output tokens)\n"
            + format_table(
                ["phase", "GFLOPs", "weight traffic", "FLOP/byte", "GEMV share"],
                rows,
            )
        )
    # Panel (c): memory-access breakdown.
    for model_name, breakdown in result.memory_breakdowns.items():
        total = sum(breakdown.values())
        rows = [
            [tag, format_bytes(value), f"{100 * value / total:.1f}%"]
            for tag, value in sorted(breakdown.items(), key=lambda kv: -kv[1])
        ]
        sections.append(
            f"Fig. 2(c) — {model_name} DRAM access breakdown\n"
            + format_table(["component", "bytes", "share"], rows)
        )
    return "\n\n".join(sections)


def ffn_dominates_memory(result: Fig2Result, model_name: str) -> bool:
    """Check the paper's claim that FFN traffic dominates DRAM access."""
    breakdown = result.memory_breakdowns[model_name]
    total = sum(breakdown.values())
    return breakdown.get("ffn", 0) >= 0.4 * total


def decode_share_increases(result: Fig2Result, model_name: str) -> bool:
    """Check that the decode share of latency grows with output length."""
    shares = [
        breakdown.fraction("llm_decode")
        for breakdown in result.latency_breakdowns[model_name]
    ]
    return all(later >= earlier for earlier, later in zip(shares, shares[1:]))
