"""Scenario-suite experiment: the workload-mix study, declaratively.

Earlier revisions hand-wired serving mixes inside individual experiment
scripts; the declarative scenario registry (:mod:`repro.scenarios`) is now
the single source of truth for workload mixes, arrival patterns, fleet
topologies and SLOs.  This experiment simply runs every registered
scenario and tabulates the outcomes — adding a scenario to the registry
automatically adds a row here (and a golden report to the regression
suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..scenarios import ScenarioReport, available_scenarios, get_scenario, run_scenario
from .runner import format_table


@dataclass(frozen=True)
class ScenarioSuiteResult:
    """Reports of every registered scenario, in registry order."""

    reports: Tuple[ScenarioReport, ...]

    @property
    def n_slo_met(self) -> int:
        return sum(1 for report in self.reports if report.slo_met)


def run_scenario_suite() -> ScenarioSuiteResult:
    """Run the whole registered scenario catalogue."""
    return ScenarioSuiteResult(
        reports=tuple(
            run_scenario(get_scenario(name)) for name in available_scenarios()
        )
    )


def format_report(result: ScenarioSuiteResult) -> str:
    rows: List[List[object]] = []
    for report in result.reports:
        chips = "-"
        if report.autoscale is not None:
            chips = f"{report.autoscale.peak_chips} (auto)"
        rows.append(
            [
                report.name,
                f"{report.n_completed}/{report.n_requests}",
                f"{report.ttft.p99 * 1e3:.0f}",
                f"{report.latency.p95 * 1e3:.0f}",
                f"{report.requests_per_second:.2f}",
                chips,
                "MET" if report.slo_met else "MISS",
            ]
        )
    table = format_table(
        ["scenario", "completed", "p99 TTFT (ms)", "p95 latency (ms)", "req/s",
         "peak chips", "SLO"],
        rows,
    )
    return (
        "Scenario suite — declarative serving scenarios "
        f"({result.n_slo_met}/{len(result.reports)} SLOs met)\n" + table
    )
