"""Command-line entry point: ``python -m repro.experiments [ids...]``.

Runs the requested experiments (all of them by default) and prints the
paper-style reports to stdout.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import available_experiments, run_and_report, run_experiments_parallel


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the EdgeMM paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (default: all); see --list",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiment ids and exit"
    )
    parser.add_argument(
        "--parallel",
        "-j",
        type=int,
        default=0,
        metavar="N",
        help="run the experiments across N worker processes (0 = serial)",
    )
    args = parser.parse_args(argv)
    if args.parallel < 0:
        parser.error("--parallel must be >= 0")

    if args.list:
        for experiment_id in available_experiments():
            print(experiment_id)
        return 0

    requested = args.experiments or available_experiments()
    unknown = [name for name in requested if name not in available_experiments()]
    if unknown:
        parser.error(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"available: {', '.join(available_experiments())}"
        )
    if args.parallel > 1:
        reports = run_experiments_parallel(requested, processes=args.parallel)
        for experiment_id in requested:
            print(f"=== {experiment_id} ===")
            print(reports[experiment_id])
            print()
    else:
        # Serial runs stream each report as it finishes.
        for experiment_id in requested:
            print(f"=== {experiment_id} ===")
            print(run_and_report(experiment_id))
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
