"""Parallel experiment engine: design-space sweeps over ``multiprocessing``.

Design-space exploration evaluates hundreds of chip configurations, each an
independent simulation — an embarrassingly parallel workload.  This module
provides:

* :class:`ParallelSweepRunner` — maps a top-level function over a list of
  keyword-argument dicts through a process pool, with an in-memory result
  cache so repeated points (common in iterative exploration) are free;
* :func:`run_experiments_parallel` — fans the registered paper experiments
  (``fig10``, ``fig11``, ...) out over processes, producing reports
  *identical* to the serial ``run_and_report`` path;
* :func:`sweep_design_space` — the CC:MC cluster-mix sweep used by
  ``examples/design_space_exploration.py``, returning picklable
  :class:`DesignPoint` rows.

Workers are forked on Linux, so the registry and model catalogue are
inherited and no per-task import cost is paid; other platforms use their
default start method (spawn on macOS/Windows, where forking a
numpy-initialised interpreter is unsafe).  Pools of one process fall back
to serial execution, which by construction produces the same results.
"""

from __future__ import annotations

import copy
import multiprocessing
import os
import pickle
import sys
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.batch import batch_run_request
from ..core.config import SystemConfig, scaled_system
from ..core.simulator import PerformanceSimulator
from ..models.mllm import InferenceRequest, get_mllm
from .runner import available_experiments, format_table, run_and_report


def _pool_context() -> multiprocessing.context.BaseContext:
    """The process-pool context for this platform.

    Fork is preferred on Linux (workers inherit the experiment registry and
    the model catalogue for free), but it is unsafe on macOS once numpy has
    touched Accelerate/Objective-C state — there CPython's own default is
    spawn, so defer to the platform default everywhere else.  Spawned
    workers re-import the task function's module, which pulls the registry
    back in through the package import.
    """
    if sys.platform == "linux":
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - exotic linux builds
            pass
    return multiprocessing.get_context()


def _call_task(task: Tuple[Callable[..., object], Dict[str, object]]) -> object:
    """Top-level (picklable) trampoline executed in worker processes."""
    fn, kwargs = task
    return fn(**kwargs)


class ParallelSweepRunner:
    """Maps a function over parameter points through a process pool.

    The function must be a module-level callable and both the parameter
    values and the results must be picklable.  Results are cached by
    ``(function, parameters)`` so a repeated point never re-runs, whether
    the repeat happens within one ``map`` call or across calls.
    """

    def __init__(self, *, processes: Optional[int] = None, cache: bool = True) -> None:
        if processes is not None and processes < 1:
            raise ValueError("processes must be >= 1")
        self.processes = processes if processes is not None else (os.cpu_count() or 1)
        self._cache: Optional[Dict[tuple, object]] = {} if cache else None
        self.cache_hits = 0
        self.cache_misses = 0

    @staticmethod
    def _key(fn: Callable[..., object], kwargs: Mapping[str, object]) -> tuple:
        # Parameters must be picklable to cross the process boundary anyway;
        # keying on the pickled form is value-faithful where repr() is not
        # (e.g. large numpy arrays truncate their repr).
        return (fn.__module__, fn.__qualname__, pickle.dumps(sorted(kwargs.items())))

    def map(
        self,
        fn: Callable[..., object],
        param_list: Sequence[Mapping[str, object]],
    ) -> List[object]:
        """``[fn(**params) for params in param_list]``, in parallel."""
        if not param_list:
            return []
        if self._cache is None:
            # Cache disabled: every point executes, duplicates included
            # (callers disable the cache precisely to force re-execution).
            return self._run_tasks(fn, [dict(params) for params in param_list])
        keys = [self._key(fn, params) for params in param_list]
        pending: Dict[tuple, Dict[str, object]] = {}
        for key, params in zip(keys, param_list):
            if key in self._cache:
                self.cache_hits += 1
            elif key not in pending:
                pending[key] = dict(params)
                self.cache_misses += 1
            else:
                self.cache_hits += 1
        fresh = self._run_tasks(fn, list(pending.values()))
        self._cache.update(zip(pending.keys(), fresh))
        # Hand out copies so a caller mutating a returned result cannot
        # poison the cache entry behind later hits.
        return [copy.deepcopy(self._cache[key]) for key in keys]

    def _run_tasks(
        self, fn: Callable[..., object], params: List[Dict[str, object]]
    ) -> List[object]:
        if not params:
            return []
        tasks = [(fn, kwargs) for kwargs in params]
        n_processes = min(self.processes, len(tasks))
        if n_processes <= 1:
            return [_call_task(task) for task in tasks]
        with _pool_context().Pool(processes=n_processes) as pool:
            return pool.map(_call_task, tasks)


# ----------------------------------------------------------------------
# Registered paper experiments in parallel
# ----------------------------------------------------------------------
def _run_registered(experiment_id: str) -> str:
    """Worker: run one registered experiment and return its report."""
    return run_and_report(experiment_id)


def run_experiments_parallel(
    experiment_ids: Optional[Sequence[str]] = None,
    *,
    processes: Optional[int] = None,
) -> Dict[str, str]:
    """Run registered experiments across processes; reports keyed by id.

    The per-experiment report strings are byte-identical to the serial
    :func:`~repro.experiments.runner.run_and_report` output — the engine
    changes where the work runs, never what it computes.
    """
    requested = (
        list(experiment_ids) if experiment_ids is not None else available_experiments()
    )
    unknown = [name for name in requested if name not in available_experiments()]
    if unknown:
        raise KeyError(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"available: {', '.join(available_experiments())}"
        )
    runner = ParallelSweepRunner(processes=processes)
    reports = runner.map(
        _run_registered, [{"experiment_id": name} for name in requested]
    )
    return dict(zip(requested, reports))


# ----------------------------------------------------------------------
# Design-space sweep (examples/design_space_exploration.py)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DesignPoint:
    """One evaluated chip configuration of a design-space sweep."""

    n_groups: int
    cc_per_group: int
    mc_per_group: int
    area_mm2: float
    latency_s: float
    tokens_per_second: float
    tokens_per_second_per_mm2: float
    tokens_per_joule: float


def evaluate_design_point(
    n_groups: int,
    cc_per_group: int,
    mc_per_group: int,
    *,
    model_name: str = "sphinx-tiny",
    images: int = 1,
    prompt_text_tokens: int = 32,
    output_tokens: int = 64,
) -> DesignPoint:
    """Simulate one chip configuration on one request shape."""
    system_config = scaled_system(
        n_groups=n_groups,
        cc_clusters_per_group=cc_per_group,
        mc_clusters_per_group=mc_per_group,
    )
    simulator = PerformanceSimulator(system_config)
    result = simulator.run_request(
        get_mllm(model_name),
        InferenceRequest(
            images=images,
            prompt_text_tokens=prompt_text_tokens,
            output_tokens=output_tokens,
        ),
    )
    area = simulator.area_power.chip_area_mm2()
    tokens_per_s = result.tokens_per_second
    return DesignPoint(
        n_groups=n_groups,
        cc_per_group=cc_per_group,
        mc_per_group=mc_per_group,
        area_mm2=area,
        latency_s=result.total_latency_s,
        tokens_per_second=tokens_per_s,
        tokens_per_second_per_mm2=tokens_per_s / area,
        tokens_per_joule=result.tokens_per_joule or 0.0,
    )


DEFAULT_CLUSTER_MIXES: Tuple[Tuple[int, int], ...] = (
    (4, 0),
    (3, 1),
    (2, 2),
    (1, 3),
    (0, 4),
)


def _design_space_geometries(
    n_groups_options: Sequence[int],
    cluster_mixes: Sequence[Tuple[int, int]],
) -> List[Tuple[int, int, int]]:
    """The (groups, CC/group, MC/group) points of a sweep, in sweep order."""
    geometries: List[Tuple[int, int, int]] = []
    for n_groups in n_groups_options:
        for cc_per_group, mc_per_group in cluster_mixes:
            if cc_per_group == 0 and mc_per_group == 0:
                continue
            geometries.append((n_groups, cc_per_group, mc_per_group))
    return geometries


def sweep_design_space_batched(
    *,
    n_groups_options: Sequence[int] = (2, 4),
    cluster_mixes: Sequence[Tuple[int, int]] = DEFAULT_CLUSTER_MIXES,
    model_name: str = "sphinx-tiny",
    request: Optional[InferenceRequest] = None,
) -> List[DesignPoint]:
    """Evaluate the design space through the array-native batch engine.

    The whole grid — every (group count, CC:MC mix) combination — prices
    as one broadcasted NumPy pass instead of one simulation per point, and
    the points are numerically identical to
    :func:`evaluate_design_point` (regression-tested, not approximate).
    This is the default engine of :func:`sweep_design_space`; prefer it
    whenever the sweep only varies chip geometry, bandwidth or pruning.
    """
    request = request or InferenceRequest(
        images=1, prompt_text_tokens=32, output_tokens=64
    )
    geometries = _design_space_geometries(n_groups_options, cluster_mixes)
    systems: List[SystemConfig] = [
        scaled_system(
            n_groups=n_groups,
            cc_clusters_per_group=cc_per_group,
            mc_clusters_per_group=mc_per_group,
        )
        for n_groups, cc_per_group, mc_per_group in geometries
    ]
    batch = batch_run_request(get_mllm(model_name), request, systems)
    points: List[DesignPoint] = []
    for index, (n_groups, cc_per_group, mc_per_group) in enumerate(geometries):
        result = batch.result_for(index)
        area = batch.grid.area_power(index).chip_area_mm2()
        tokens_per_s = result.tokens_per_second
        points.append(
            DesignPoint(
                n_groups=n_groups,
                cc_per_group=cc_per_group,
                mc_per_group=mc_per_group,
                area_mm2=area,
                latency_s=result.total_latency_s,
                tokens_per_second=tokens_per_s,
                tokens_per_second_per_mm2=tokens_per_s / area,
                tokens_per_joule=result.tokens_per_joule or 0.0,
            )
        )
    return points


def sweep_design_space(
    *,
    n_groups_options: Sequence[int] = (2, 4),
    cluster_mixes: Sequence[Tuple[int, int]] = DEFAULT_CLUSTER_MIXES,
    model_name: str = "sphinx-tiny",
    request: Optional[InferenceRequest] = None,
    processes: Optional[int] = None,
    runner: Optional[ParallelSweepRunner] = None,
) -> List[DesignPoint]:
    """Evaluate every (group count, CC:MC mix) combination of the sweep.

    With neither ``processes`` nor ``runner`` given, the sweep runs through
    the array-native batch engine (:func:`sweep_design_space_batched`) —
    one vectorised pass over the whole grid.  Passing either argument
    keeps the process-pool path, which generalises to sweep axes the batch
    engine cannot vectorise (e.g. different models per point); both paths
    produce identical :class:`DesignPoint` rows.
    """
    if runner is not None and processes is not None:
        raise ValueError("pass either processes or runner, not both")
    if runner is None and processes is None:
        return sweep_design_space_batched(
            n_groups_options=n_groups_options,
            cluster_mixes=cluster_mixes,
            model_name=model_name,
            request=request,
        )
    request = request or InferenceRequest(
        images=1, prompt_text_tokens=32, output_tokens=64
    )
    params: List[Dict[str, object]] = [
        {
            "n_groups": n_groups,
            "cc_per_group": cc_per_group,
            "mc_per_group": mc_per_group,
            "model_name": model_name,
            "images": request.images,
            "prompt_text_tokens": request.prompt_text_tokens,
            "output_tokens": request.output_tokens,
        }
        for n_groups, cc_per_group, mc_per_group in _design_space_geometries(
            n_groups_options, cluster_mixes
        )
    ]
    runner = runner or ParallelSweepRunner(processes=processes)
    return list(runner.map(evaluate_design_point, params))


def format_design_space_report(points: Sequence[DesignPoint]) -> str:
    """Render a design-space sweep as the usual aligned text table."""
    rows = [
        [
            point.n_groups,
            point.cc_per_group,
            point.mc_per_group,
            f"{point.area_mm2:.2f}",
            f"{point.latency_s:.3f}",
            f"{point.tokens_per_second:.1f}",
            f"{point.tokens_per_second_per_mm2:.2f}",
            f"{point.tokens_per_joule:.1f}",
        ]
        for point in points
    ]
    return format_table(
        [
            "groups",
            "CC/grp",
            "MC/grp",
            "area(mm^2)",
            "latency(s)",
            "tokens/s",
            "tokens/s/mm^2",
            "tokens/J",
        ],
        rows,
    )
