"""Experiment harnesses reproducing every table and figure of the paper."""

from .runner import (
    ExperimentSpec,
    available_experiments,
    format_bytes,
    format_seconds,
    format_table,
    get_experiment,
    register_experiment,
    run_and_report,
)
from .parallel import (
    DesignPoint,
    ParallelSweepRunner,
    evaluate_design_point,
    format_design_space_report,
    run_experiments_parallel,
    sweep_design_space,
    sweep_design_space_batched,
)
from . import ablations
from . import planner_suite
from . import scenario_suite
from . import fig2_workload
from . import fig3_sparsity
from . import fig6_bandwidth
from . import fig10_config
from . import fig11_hetero
from . import fig12_pruning
from . import fig13_bandwidth_mgmt
from . import table2_gpu_comparison


register_experiment(
    ExperimentSpec(
        experiment_id="fig2",
        description="Workload analysis: latency breakdown, statistics, memory accesses",
        run=fig2_workload.run_fig2,
        report=fig2_workload.format_report,
    )
)
register_experiment(
    ExperimentSpec(
        experiment_id="fig3",
        description="FFN activation sparsity across decoder layers",
        run=fig3_sparsity.run_fig3,
        report=fig3_sparsity.format_report,
    )
)
register_experiment(
    ExperimentSpec(
        experiment_id="fig6",
        description="Effective bandwidth vs transfer size",
        run=fig6_bandwidth.run_fig6,
        report=fig6_bandwidth.format_report,
    )
)
register_experiment(
    ExperimentSpec(
        experiment_id="fig10",
        description="Design configuration, area and power at 22nm",
        run=fig10_config.run_fig10,
        report=fig10_config.format_report,
    )
)
register_experiment(
    ExperimentSpec(
        experiment_id="fig11",
        description="Homogeneous vs heterogeneous design speedups",
        run=fig11_hetero.run_fig11,
        report=fig11_hetero.format_report,
    )
)
register_experiment(
    ExperimentSpec(
        experiment_id="fig12",
        description="Activation-aware dynamic Top-k pruning evaluation",
        run=fig12_pruning.run_fig12,
        report=fig12_pruning.format_report,
    )
)
register_experiment(
    ExperimentSpec(
        experiment_id="fig13",
        description="Bandwidth management and batch decoding gains",
        run=fig13_bandwidth_mgmt.run_fig13,
        report=fig13_bandwidth_mgmt.format_report,
    )
)
register_experiment(
    ExperimentSpec(
        experiment_id="table2",
        description="EdgeMM vs mobile GPU comparison",
        run=table2_gpu_comparison.run_table2,
        report=table2_gpu_comparison.format_report,
    )
)
register_experiment(
    ExperimentSpec(
        experiment_id="ablations",
        description="Ablations: pruning threshold, DRAM bandwidth, SA geometry, cluster mix",
        run=ablations.run_ablations,
        report=ablations.format_report,
    )
)
register_experiment(
    ExperimentSpec(
        experiment_id="scenarios",
        description="Declarative serving-scenario suite (workload mixes, SLOs, autoscaling)",
        run=scenario_suite.run_scenario_suite,
        report=scenario_suite.format_report,
    )
)
register_experiment(
    ExperimentSpec(
        experiment_id="planner",
        description="SLO-aware capacity plans over the chip-design × fleet grid",
        run=planner_suite.run_planner_suite,
        report=planner_suite.format_report,
    )
)

__all__ = [
    "ablations",
    "planner_suite",
    "scenario_suite",
    "DesignPoint",
    "ParallelSweepRunner",
    "evaluate_design_point",
    "format_design_space_report",
    "run_experiments_parallel",
    "sweep_design_space",
    "sweep_design_space_batched",
    "ExperimentSpec",
    "available_experiments",
    "format_bytes",
    "format_seconds",
    "format_table",
    "get_experiment",
    "register_experiment",
    "run_and_report",
    "fig2_workload",
    "fig3_sparsity",
    "fig6_bandwidth",
    "fig10_config",
    "fig11_hetero",
    "fig12_pruning",
    "fig13_bandwidth_mgmt",
    "table2_gpu_comparison",
]
