"""Planner-suite experiment: capacity plans for the golden scenarios.

Runs the SLO-aware capacity planner (:mod:`repro.planner`) over the
scenarios that carry committed golden plan reports and tabulates each
search: how much of the candidate space the analytic bounds pruned, how
many candidates were exactly simulated, and the cheapest SLO-meeting plan.
The table is the planning counterpart of the scenario suite — adding a
scenario to ``GOLDEN_PLAN_SCENARIOS`` adds a row here and a golden plan to
the regression suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..planner import GOLDEN_PLAN_SCENARIOS, PlanReport, plan_scenario
from ..scenarios import get_scenario
from .runner import format_table


@dataclass(frozen=True)
class PlannerSuiteResult:
    """Plan reports of the golden-plan scenarios, in catalogue order."""

    reports: Tuple[PlanReport, ...]

    @property
    def n_feasible(self) -> int:
        """Scenarios for which some plan met every stated objective."""
        return sum(1 for report in self.reports if report.feasible)


def run_planner_suite() -> PlannerSuiteResult:
    """Plan every golden-plan scenario with the default planner config."""
    return PlannerSuiteResult(
        reports=tuple(
            plan_scenario(get_scenario(name)) for name in GOLDEN_PLAN_SCENARIOS
        )
    )


def format_report(result: PlannerSuiteResult) -> str:
    """Render the planner suite as the usual aligned text table."""
    rows: List[List[object]] = []
    for report in result.reports:
        if report.best is None:
            best = "(none feasible)"
            chips = "-"
        else:
            best = f"{report.best.design.name} {report.best.option.label}"
            chips = str(report.best.chips_provisioned)
        rows.append(
            [
                report.scenario,
                report.n_candidates,
                report.n_pruned_candidates,
                report.n_simulated,
                len(report.frontier),
                best,
                chips,
            ]
        )
    table = format_table(
        ["scenario", "candidates", "pruned", "simulated", "frontier",
         "best plan", "chips"],
        rows,
    )
    return (
        "Planner suite — SLO-aware capacity plans "
        f"({result.n_feasible}/{len(result.reports)} scenarios feasible)\n" + table
    )
