"""EXP-F12 — activation-aware dynamic Top-k pruning (paper Fig. 12).

Reproduces both panels:

* (a) per-layer kurtosis of the activation magnitudes and the pruning ratio
  chosen by the dynamic Top-k scheme during a token generation — the ratio
  should rise with depth as the outliers sharpen, and layer 1 is skipped;
* (b) per-layer cosine similarity between pruned and unpruned FFN outputs
  for the dynamic scheme and for fixed pruning ratios 0.1 and 0.7 — the
  dynamic scheme should track the mild 0.1 ratio while 0.7 collapses in the
  shallow layers.

It also reports the decode-latency reduction the calibrated pruning yields
on the EdgeMM performance model (paper: 42 % on average for SPHINX-Tiny).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..core.edgemm import EdgeMM
from ..models.activations import ActivationTraceGenerator, sphinx_tiny_trace
from ..models.mllm import InferenceRequest, get_mllm
from ..pruning.ffn import build_layer_stack
from ..pruning.fixed import prune_token_fixed
from ..pruning.topk import DynamicTopKConfig, TokenPruningReport, prune_token
from .runner import format_table


@dataclass(frozen=True)
class Fig12Result:
    model_name: str
    n_layers: int
    kurtosis_per_layer: Tuple[float, ...]
    dynamic_pruning_ratio_per_layer: Tuple[float, ...]
    dynamic_similarity_per_layer: Tuple[float, ...]
    fixed01_similarity_per_layer: Tuple[float, ...]
    fixed07_similarity_per_layer: Tuple[float, ...]
    mean_dynamic_pruning_ratio: float
    decode_latency_reduction: float


def run_fig12(
    trace: ActivationTraceGenerator = None,
    *,
    model_name: str = "sphinx-tiny",
    n_tokens: int = 4,
    d_ffn: int = 512,
    threshold: float = 16.0,
    output_tokens: int = 64,
) -> Fig12Result:
    """Run the dynamic and fixed pruning schemes on an activation trace.

    ``d_ffn`` controls the width of the synthetic FFN weight stack used for
    the cosine-similarity panel; the similarity depends only on which input
    channels are kept, so a reduced width keeps the experiment fast without
    changing the comparison.
    """
    trace = trace or sphinx_tiny_trace()
    if n_tokens <= 0:
        raise ValueError("n_tokens must be positive")
    n_layers = trace.config.n_layers
    d_model = trace.config.d_model
    ffn_stack = build_layer_stack(n_layers, d_model, d_ffn)
    config = DynamicTopKConfig(threshold=threshold)

    dynamic_reports: List[TokenPruningReport] = []
    fixed01_reports: List[TokenPruningReport] = []
    fixed07_reports: List[TokenPruningReport] = []
    for token in range(n_tokens):
        activations = trace.token_trace(token)
        dynamic_reports.append(prune_token(activations, ffn_stack, config=config))
        fixed01_reports.append(prune_token_fixed(activations, ffn_stack, ratio=0.1))
        fixed07_reports.append(prune_token_fixed(activations, ffn_stack, ratio=0.7))

    def _mean_over_tokens(values_per_report) -> Tuple[float, ...]:
        stacked = np.asarray(values_per_report, dtype=float)
        return tuple(float(value) for value in stacked.mean(axis=0))

    kurtoses = _mean_over_tokens([report.kurtoses for report in dynamic_reports])
    ratios = _mean_over_tokens([report.pruning_ratios() for report in dynamic_reports])
    dyn_similarity = _mean_over_tokens(
        [report.cosine_similarities for report in dynamic_reports]
    )
    fixed01 = _mean_over_tokens([report.cosine_similarities for report in fixed01_reports])
    fixed07 = _mean_over_tokens([report.cosine_similarities for report in fixed07_reports])

    # Decode-latency reduction on the performance model.
    system = EdgeMM.default()
    model = get_mllm(model_name)
    request = InferenceRequest(images=1, prompt_text_tokens=32, output_tokens=output_tokens)
    baseline = system.run(model, request)
    calibration = system.calibrate_pruning(trace, n_tokens=n_tokens, config=config)
    pruned = system.enable_pruning(calibration).run(model, request)
    if baseline.decode_latency_s > 0:
        reduction = 1.0 - pruned.decode_latency_s / baseline.decode_latency_s
    else:
        reduction = 0.0

    return Fig12Result(
        model_name=model_name,
        n_layers=n_layers,
        kurtosis_per_layer=kurtoses,
        dynamic_pruning_ratio_per_layer=ratios,
        dynamic_similarity_per_layer=dyn_similarity,
        fixed01_similarity_per_layer=fixed01,
        fixed07_similarity_per_layer=fixed07,
        mean_dynamic_pruning_ratio=float(np.mean(ratios)),
        decode_latency_reduction=float(reduction),
    )


def format_report(result: Fig12Result) -> str:
    rows = []
    for layer in range(result.n_layers):
        rows.append(
            [
                layer,
                f"{result.kurtosis_per_layer[layer]:.1f}",
                f"{100 * result.dynamic_pruning_ratio_per_layer[layer]:.1f}%",
                f"{result.dynamic_similarity_per_layer[layer]:.4f}",
                f"{result.fixed01_similarity_per_layer[layer]:.4f}",
                f"{result.fixed07_similarity_per_layer[layer]:.4f}",
            ]
        )
    table = format_table(
        ["layer", "kurtosis", "dyn prune ratio", "cos dyn", "cos fixed 0.1", "cos fixed 0.7"],
        rows,
    )
    summary = (
        f"mean dynamic pruning ratio: {100 * result.mean_dynamic_pruning_ratio:.1f}%\n"
        f"decode latency reduction on EdgeMM: "
        f"{100 * result.decode_latency_reduction:.1f}% (paper: 42%)"
    )
    return (
        f"Fig. 12 — dynamic Top-k pruning on {result.model_name}\n"
        + table
        + "\n\n"
        + summary
    )


def pruning_ratio_increases_with_depth(result: Fig12Result) -> bool:
    """Deeper layers must prune more than the shallow (stable) layers."""
    ratios = result.dynamic_pruning_ratio_per_layer
    third = max(result.n_layers // 3, 1)
    shallow = float(np.mean(ratios[1 : 1 + third]))
    deep = float(np.mean(ratios[-third:]))
    return deep >= shallow


def first_layer_is_not_pruned(result: Fig12Result) -> bool:
    return result.dynamic_pruning_ratio_per_layer[0] == 0.0


def dynamic_tracks_mild_fixed_ratio(result: Fig12Result, tolerance: float = 0.05) -> bool:
    """Dynamic pruning accuracy must stay close to the fixed-0.1 scheme."""
    dynamic = np.asarray(result.dynamic_similarity_per_layer)
    mild = np.asarray(result.fixed01_similarity_per_layer)
    return bool(np.all(dynamic >= mild - tolerance))


def aggressive_fixed_ratio_fails_shallow_layers(result: Fig12Result) -> bool:
    """Fixed-0.7 must lose accuracy in the shallow layers relative to dynamic."""
    shallow = slice(1, max(result.n_layers // 3, 2))
    dynamic = np.asarray(result.dynamic_similarity_per_layer[shallow])
    aggressive = np.asarray(result.fixed07_similarity_per_layer[shallow])
    return bool(np.mean(aggressive) < np.mean(dynamic))
