"""EXP-T2 — EdgeMM vs mobile GPU comparison (paper Table II).

Runs the full SPHINX-Tiny workload on the RTX 3060 baseline, on EdgeMM, and
on EdgeMM with activation-aware pruning (calibrated on the activation
trace), and reports the Table II rows: compute capability, bandwidth,
relative MLLM performance, plus the throughput (tokens/s) and energy
efficiency (token/J) headline numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..baselines.gpu import GPUModel, rtx3060_laptop
from ..core.edgemm import EdgeMM
from ..core.metrics import WorkloadResult
from ..models.mllm import InferenceRequest, get_mllm
from .runner import format_table


#: Published reference values for the comparison.
PAPER_REFERENCE: Dict[str, float] = {
    "edgemm_speedup": 2.15,
    "edgemm_pruned_speedup": 2.84,
    "edgemm_pruned_tokens_per_s": 138.0,
    "edgemm_tokens_per_joule": 0.28,
}


@dataclass(frozen=True)
class Table2Result:
    model_name: str
    request: InferenceRequest
    gpu: WorkloadResult
    edgemm: WorkloadResult
    edgemm_pruned: WorkloadResult
    average_keep_fraction: float
    gpu_peak_tflops: float
    gpu_bandwidth_gbs: float
    edgemm_peak_tflops: float
    edgemm_bandwidth_gbs: float

    @property
    def edgemm_speedup(self) -> float:
        return self.gpu.total_latency_s / self.edgemm.total_latency_s

    @property
    def edgemm_pruned_speedup(self) -> float:
        return self.gpu.total_latency_s / self.edgemm_pruned.total_latency_s

    @property
    def pruned_tokens_per_second(self) -> float:
        return self.edgemm_pruned.tokens_per_second

    @property
    def pruned_tokens_per_joule(self) -> Optional[float]:
        return self.edgemm_pruned.tokens_per_joule


def run_table2(
    model_name: str = "sphinx-tiny",
    *,
    request: InferenceRequest = None,
    gpu: GPUModel = None,
    calibration_tokens: int = 4,
) -> Table2Result:
    request = request or InferenceRequest(images=1, prompt_text_tokens=32, output_tokens=64)
    gpu = gpu or rtx3060_laptop()
    model = get_mllm(model_name)

    gpu_result = gpu.run_request(model, request)
    system = EdgeMM.default()
    edgemm_result = system.run(model, request)
    calibration = system.calibrate_pruning(n_tokens=calibration_tokens)
    pruned_system = system.enable_pruning(calibration)
    pruned_result = pruned_system.run(model, request)

    return Table2Result(
        model_name=model_name,
        request=request,
        gpu=gpu_result,
        edgemm=edgemm_result,
        edgemm_pruned=pruned_result,
        average_keep_fraction=calibration.average_keep_fraction,
        gpu_peak_tflops=gpu.config.peak_flops / 1e12,
        gpu_bandwidth_gbs=gpu.config.memory_bandwidth_bytes_per_s / 1e9,
        edgemm_peak_tflops=system.simulator.chip.peak_flops / 1e12,
        edgemm_bandwidth_gbs=(
            system.system.chip.dram.peak_bandwidth_bytes_per_s / 1e9
        ),
    )


def format_report(result: Table2Result) -> str:
    rows = [
        [
            "RTX 3060 Laptop",
            f"{result.gpu_peak_tflops:.0f} TFLOP/s (FP32)",
            f"{result.gpu_bandwidth_gbs:.0f} GB/s",
            "1.00x",
            f"{result.gpu.tokens_per_second:.1f}",
        ],
        [
            "EdgeMM",
            f"{result.edgemm_peak_tflops:.1f} TFLOP/s (BF16)",
            f"{result.edgemm_bandwidth_gbs:.0f} GB/s",
            f"{result.edgemm_speedup:.2f}x",
            f"{result.edgemm.tokens_per_second:.1f}",
        ],
        [
            "EdgeMM + weight pruning",
            f"{result.edgemm_peak_tflops:.1f} TFLOP/s (BF16)",
            f"{result.edgemm_bandwidth_gbs:.0f} GB/s",
            f"{result.edgemm_pruned_speedup:.2f}x",
            f"{result.edgemm_pruned.tokens_per_second:.1f}",
        ],
    ]
    table = format_table(
        ["design", "compute", "bandwidth", "MLLM perf.", "tokens/s"], rows
    )
    tokens_per_joule = result.pruned_tokens_per_joule
    summary_lines = [
        f"paper reference: {PAPER_REFERENCE['edgemm_speedup']:.2f}x / "
        f"{PAPER_REFERENCE['edgemm_pruned_speedup']:.2f}x speedup, "
        f"{PAPER_REFERENCE['edgemm_pruned_tokens_per_s']:.0f} tokens/s",
        f"average keep fraction from Alg. 1 calibration: "
        f"{result.average_keep_fraction:.3f}",
    ]
    if tokens_per_joule is not None:
        summary_lines.append(
            f"energy efficiency: {tokens_per_joule:.1f} tokens/J "
            f"(paper reports 0.28 token/J — see EXPERIMENTS.md for the metric discussion)"
        )
    return (
        f"Table II — EdgeMM vs mobile GPU ({result.model_name}, "
        f"{result.request.output_tokens} output tokens)\n"
        + table
        + "\n\n"
        + "\n".join(summary_lines)
    )


def edgemm_beats_gpu(result: Table2Result) -> bool:
    return result.edgemm_speedup > 1.0


def pruning_widens_the_gap(result: Table2Result) -> bool:
    return result.edgemm_pruned_speedup > result.edgemm_speedup


def pruned_speedup_in_paper_ballpark(
    result: Table2Result, low: float = 2.0, high: float = 4.0
) -> bool:
    """The pruned speedup should be within a factor-of-shape band of 2.84x."""
    return low <= result.edgemm_pruned_speedup <= high
