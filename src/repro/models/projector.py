"""Projector definitions aligning vision features with the language model.

Table I of the paper lists three projector families: a plain MLP (LLaVA,
SPHINX, DeepSeek-VL, KarmaVLM), the lightweight downsample projector (LDP,
MobileVLM) and the Q-Former (TinyGPT-V).  All of them are tiny relative to
the encoder and LLM (the paper notes projector latency is negligible) but
they are included so the latency breakdown of Fig. 2 can report them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .ops import OpKind, Phase, elementwise_op, matmul_op
from .transformer import TransformerLayerConfig, encoder_layer_ops


@dataclass(frozen=True)
class MLPProjectorConfig:
    """Two-layer MLP projector (GELU in between)."""

    name: str
    input_dim: int
    output_dim: int
    hidden_dim: int = 0  # 0 means single linear layer
    weight_bytes: float = 1.0
    activation_bytes: float = 2.0

    def __post_init__(self) -> None:
        if self.input_dim <= 0 or self.output_dim <= 0:
            raise ValueError("input_dim and output_dim must be positive")
        if self.hidden_dim < 0:
            raise ValueError("hidden_dim must be >= 0")

    @property
    def parameter_count(self) -> int:
        if self.hidden_dim:
            return self.input_dim * self.hidden_dim + self.hidden_dim * self.output_dim
        return self.input_dim * self.output_dim

    @property
    def parameter_bytes(self) -> int:
        return int(round(self.parameter_count * self.weight_bytes))

    def project_phase(self, tokens: int) -> Phase:
        """Project ``tokens`` vision tokens into the LLM embedding space."""
        if tokens <= 0:
            raise ValueError("tokens must be positive")
        phase = Phase(name="projector")
        common = dict(
            weight_bytes_per_element=self.weight_bytes,
            activation_bytes_per_element=self.activation_bytes,
            tag="projector",
        )
        if self.hidden_dim:
            phase.add(
                matmul_op(f"{self.name}.fc1", tokens, self.input_dim, self.hidden_dim, **common)
            )
            phase.add(
                elementwise_op(
                    f"{self.name}.gelu",
                    tokens * self.hidden_dim,
                    kind=OpKind.ACTIVATION,
                    bytes_per_element=self.activation_bytes,
                    flops_per_element=8.0,
                    tag="projector",
                )
            )
            phase.add(
                matmul_op(f"{self.name}.fc2", tokens, self.hidden_dim, self.output_dim, **common)
            )
        else:
            phase.add(
                matmul_op(f"{self.name}.fc", tokens, self.input_dim, self.output_dim, **common)
            )
        return phase

    def output_tokens(self, input_tokens: int) -> int:
        """MLP projection preserves the token count."""
        return input_tokens


@dataclass(frozen=True)
class LDPProjectorConfig:
    """Lightweight downsample projector (MobileVLM): MLP + 2x downsample."""

    name: str
    input_dim: int
    output_dim: int
    downsample: int = 2
    weight_bytes: float = 1.0
    activation_bytes: float = 2.0

    def __post_init__(self) -> None:
        if self.downsample < 1:
            raise ValueError("downsample must be >= 1")

    @property
    def parameter_count(self) -> int:
        pointwise = self.input_dim * self.output_dim + self.output_dim * self.output_dim
        depthwise = 2 * 3 * 3 * self.output_dim
        return pointwise + depthwise

    @property
    def parameter_bytes(self) -> int:
        return int(round(self.parameter_count * self.weight_bytes))

    def project_phase(self, tokens: int) -> Phase:
        if tokens <= 0:
            raise ValueError("tokens must be positive")
        phase = Phase(name="projector")
        common = dict(
            weight_bytes_per_element=self.weight_bytes,
            activation_bytes_per_element=self.activation_bytes,
            tag="projector",
        )
        phase.add(
            matmul_op(f"{self.name}.pw1", tokens, self.input_dim, self.output_dim, **common)
        )
        phase.add(
            matmul_op(f"{self.name}.dw1", tokens, 3 * 3, self.output_dim, **common)
        )
        out_tokens = self.output_tokens(tokens)
        phase.add(
            matmul_op(f"{self.name}.dw2", out_tokens, 3 * 3, self.output_dim, **common)
        )
        phase.add(
            matmul_op(f"{self.name}.pw2", out_tokens, self.output_dim, self.output_dim, **common)
        )
        return phase

    def output_tokens(self, input_tokens: int) -> int:
        return max(input_tokens // (self.downsample * self.downsample), 1)


@dataclass(frozen=True)
class QFormerProjectorConfig:
    """Q-Former projector (BLIP-2 / TinyGPT-V): a small cross-attention stack."""

    name: str
    input_dim: int
    output_dim: int
    n_layers: int = 6
    n_queries: int = 32
    d_model: int = 768
    n_heads: int = 12
    weight_bytes: float = 1.0
    activation_bytes: float = 2.0

    def __post_init__(self) -> None:
        if self.n_layers <= 0 or self.n_queries <= 0:
            raise ValueError("n_layers and n_queries must be positive")

    def _layer_config(self) -> TransformerLayerConfig:
        return TransformerLayerConfig(
            d_model=self.d_model,
            n_heads=self.n_heads,
            d_ffn=4 * self.d_model,
            gated_ffn=False,
            weight_bytes=self.weight_bytes,
            activation_bytes=self.activation_bytes,
        )

    @property
    def parameter_count(self) -> int:
        blocks = self.n_layers * self._layer_config().parameter_count
        in_proj = self.input_dim * self.d_model
        out_proj = self.d_model * self.output_dim
        return blocks + in_proj + out_proj

    @property
    def parameter_bytes(self) -> int:
        return int(round(self.parameter_count * self.weight_bytes))

    def project_phase(self, tokens: int) -> Phase:
        if tokens <= 0:
            raise ValueError("tokens must be positive")
        cfg = self._layer_config()
        phase = Phase(name="projector")
        common = dict(
            weight_bytes_per_element=self.weight_bytes,
            activation_bytes_per_element=self.activation_bytes,
            tag="projector",
        )
        phase.add(
            matmul_op(f"{self.name}.in_proj", tokens, self.input_dim, self.d_model, **common)
        )
        # The Q-Former processes the fixed query set against the vision
        # tokens; we approximate each block as a self-attention block over
        # queries + vision tokens, which upper-bounds the real cross-attention.
        combined = tokens + self.n_queries
        for layer in range(self.n_layers):
            phase.extend(
                encoder_layer_ops(cfg, combined, layer_index=layer, prefix=f"{self.name}.blk")
            )
        phase.add(
            matmul_op(
                f"{self.name}.out_proj",
                self.n_queries,
                self.d_model,
                self.output_dim,
                **common,
            )
        )
        return phase

    def output_tokens(self, input_tokens: int) -> int:
        return self.n_queries


def mlp_projector(name: str, input_dim: int, output_dim: int) -> MLPProjectorConfig:
    """Standard two-layer MLP projector with hidden dim = output dim."""
    return MLPProjectorConfig(
        name=name, input_dim=input_dim, output_dim=output_dim, hidden_dim=output_dim
    )


def available_projector_kinds() -> List[str]:
    return ["mlp", "ldp", "qformer"]
