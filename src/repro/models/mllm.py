"""Multimodal LLM compositions (Table I of the paper).

An :class:`MLLMConfig` combines one or more vision encoders, a projector and
a language model, and lowers a complete inference request (image + prompt ->
generated tokens) to a four-phase :class:`~repro.models.ops.Workload`:

``vision_encoder`` -> ``projector`` -> ``llm_prefill`` -> ``llm_decode``

The two workloads the paper evaluates in detail are SPHINX-Tiny
(CLIP ViT-L/14 + ConvNeXt + DINOv2 encoders, MLP projector, TinyLlama-1.1B)
and KarmaVLM (SigLIP-so + CLIP ViT-L/14 encoders, MLP projector,
Qwen1.5-0.5B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple, Union

from .llm import LLMConfig, get_llm
from .ops import Phase, Workload, merge_phases
from .projector import (
    LDPProjectorConfig,
    MLPProjectorConfig,
    QFormerProjectorConfig,
    mlp_projector,
)
from .vision import ConvNeXtEncoderConfig, VisionEncoderConfig, get_vision_encoder

VisionEncoder = Union[VisionEncoderConfig, ConvNeXtEncoderConfig]
Projector = Union[MLPProjectorConfig, LDPProjectorConfig, QFormerProjectorConfig]


@dataclass(frozen=True)
class InferenceRequest:
    """One MLLM inference request.

    Attributes
    ----------
    images:
        Number of input images.
    prompt_text_tokens:
        Number of text tokens in the user prompt.
    output_tokens:
        Number of tokens to generate autoregressively.
    """

    images: int = 1
    prompt_text_tokens: int = 32
    output_tokens: int = 64

    def __post_init__(self) -> None:
        if self.images < 0:
            raise ValueError("images must be >= 0")
        if self.prompt_text_tokens < 0:
            raise ValueError("prompt_text_tokens must be >= 0")
        if self.output_tokens <= 0:
            raise ValueError("output_tokens must be positive")
        if self.images == 0 and self.prompt_text_tokens == 0:
            raise ValueError("request must contain at least an image or a prompt")


@dataclass(frozen=True)
class MLLMConfig:
    """A multimodal LLM assembled from encoders, a projector and an LLM."""

    name: str
    vision_encoders: Tuple[VisionEncoder, ...]
    projector: Projector
    llm: LLMConfig

    def __post_init__(self) -> None:
        if not self.vision_encoders:
            raise ValueError("an MLLM needs at least one vision encoder")

    # ------------------------------------------------------------------
    # Model statistics (Fig. 2(b))
    # ------------------------------------------------------------------
    @property
    def parameter_count(self) -> int:
        encoders = sum(enc.parameter_count for enc in self.vision_encoders)
        return encoders + self.projector.parameter_count + self.llm.parameter_count

    @property
    def parameter_bytes(self) -> int:
        encoders = sum(enc.parameter_bytes for enc in self.vision_encoders)
        return encoders + self.projector.parameter_bytes + self.llm.parameter_bytes

    def vision_tokens(self, images: int = 1) -> int:
        """Vision tokens fed to the LLM after projection."""
        if images == 0:
            return 0
        raw_tokens = sum(enc.num_tokens for enc in self.vision_encoders) * images
        return self.projector.output_tokens(raw_tokens)

    def prompt_tokens(self, request: InferenceRequest) -> int:
        """Total prompt length: projected vision tokens plus text tokens."""
        return self.vision_tokens(request.images) + request.prompt_text_tokens

    # ------------------------------------------------------------------
    # Lowering
    # ------------------------------------------------------------------
    def build_workload(
        self, request: InferenceRequest, *, average_decode_context: bool = True
    ) -> Workload:
        """Lower one inference request to a four-phase workload."""
        workload = Workload(name=f"{self.name}")
        raw_vision_tokens = 0
        if request.images > 0:
            encode_phases = [
                enc.encode_phase(images=request.images) for enc in self.vision_encoders
            ]
            workload.add(merge_phases("vision_encoder", encode_phases))
            raw_vision_tokens = (
                sum(enc.num_tokens for enc in self.vision_encoders) * request.images
            )
            workload.add(self.projector.project_phase(raw_vision_tokens))
        prompt = self.prompt_tokens(request)
        if prompt <= 0:
            raise ValueError("prompt must contain at least one token")
        workload.add(self.llm.prefill_phase(prompt))
        workload.add(
            self.llm.decode_phase(
                prompt, request.output_tokens, average_context=average_decode_context
            )
        )
        return workload

    def decode_step(self, context_tokens: int) -> Phase:
        """A single decode step at a given context length (for schedulers)."""
        return self.llm.decode_step_phase(context_tokens)


# ----------------------------------------------------------------------
# Catalogue (Table I)
# ----------------------------------------------------------------------
_MLLM_CATALOGUE: Dict[str, MLLMConfig] = {}


def _register(config: MLLMConfig) -> MLLMConfig:
    key = config.name.lower()
    if key in _MLLM_CATALOGUE:
        raise ValueError(f"duplicate MLLM registration: {config.name}")
    _MLLM_CATALOGUE[key] = config
    return config


SPHINX_TINY = _register(
    MLLMConfig(
        name="sphinx-tiny",
        vision_encoders=(
            get_vision_encoder("clip-vit-l14"),
            get_vision_encoder("clip-convnext-b"),
            get_vision_encoder("dinov2-l"),
        ),
        projector=mlp_projector("sphinx-tiny.projector", input_dim=1024, output_dim=2048),
        llm=get_llm("tinyllama-1.1b"),
    )
)

KARMAVLM = _register(
    MLLMConfig(
        name="karmavlm",
        vision_encoders=(
            get_vision_encoder("siglip-so400m"),
            get_vision_encoder("clip-vit-l14"),
        ),
        projector=mlp_projector("karmavlm.projector", input_dim=1152, output_dim=1024),
        llm=get_llm("qwen1.5-0.5b"),
    )
)

LLAVA_7B = _register(
    MLLMConfig(
        name="llava-7b",
        vision_encoders=(get_vision_encoder("clip-vit-l14"),),
        projector=mlp_projector("llava.projector", input_dim=1024, output_dim=4096),
        llm=get_llm("vicuna-7b"),
    )
)

MOBILEVLM = _register(
    MLLMConfig(
        name="mobilevlm",
        vision_encoders=(get_vision_encoder("clip-vit-l14"),),
        projector=LDPProjectorConfig(
            name="mobilevlm.ldp", input_dim=1024, output_dim=2560, downsample=2
        ),
        llm=get_llm("mobilellama-2.7b"),
    )
)

TINYGPT_V = _register(
    MLLMConfig(
        name="tinygpt-v",
        vision_encoders=(get_vision_encoder("eva-clip-g"),),
        projector=QFormerProjectorConfig(
            name="tinygpt-v.qformer", input_dim=1408, output_dim=2560
        ),
        llm=get_llm("phi-2"),
    )
)

DEEPSEEK_VL = _register(
    MLLMConfig(
        name="deepseek-vl",
        vision_encoders=(get_vision_encoder("siglip-l"),),
        projector=mlp_projector("deepseek-vl.projector", input_dim=1024, output_dim=2048),
        llm=get_llm("deepseek-llm-1.3b"),
    )
)


def available_mllms() -> List[str]:
    """Names of all registered MLLMs."""
    return sorted(_MLLM_CATALOGUE)


def get_mllm(name: str) -> MLLMConfig:
    """Look up a registered MLLM by (case-insensitive) name."""
    key = name.lower()
    if key not in _MLLM_CATALOGUE:
        raise KeyError(
            f"unknown MLLM {name!r}; available: {', '.join(available_mllms())}"
        )
    return _MLLM_CATALOGUE[key]
