"""Lightweight operator-graph utilities.

The performance simulator mostly consumes flat phases, but the mapping
explorer and the scheduler benefit from a dependency view: which operators
belong to the same layer, which layers feed which, and which operators can
be partitioned across cores.  This module provides a minimal DAG built from
the layer indices recorded on each operator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .ops import Op, Phase


@dataclass
class LayerNode:
    """All operators of one layer (or the layer-less preamble/epilogue)."""

    layer_index: Optional[int]
    ops: List[Op] = field(default_factory=list)

    @property
    def flops(self) -> int:
        return sum(op.flops for op in self.ops)

    @property
    def total_bytes(self) -> int:
        return sum(op.total_bytes for op in self.ops)

    @property
    def weight_bytes(self) -> int:
        return sum(op.weight_bytes for op in self.ops)


@dataclass
class PhaseGraph:
    """A phase viewed as an ordered chain of layer nodes.

    Layers of a Transformer execute sequentially (layer *i+1* consumes layer
    *i*'s output), while operators *within* a layer offer the parallelism the
    mapping explorer partitions across cores.
    """

    phase_name: str
    nodes: List[LayerNode]

    @property
    def n_layers(self) -> int:
        return sum(1 for node in self.nodes if node.layer_index is not None)

    def node_for_layer(self, layer_index: int) -> LayerNode:
        for node in self.nodes:
            if node.layer_index == layer_index:
                return node
        raise KeyError(f"phase {self.phase_name!r} has no layer {layer_index}")

    def critical_path_flops(self) -> int:
        """FLOPs along the sequential layer chain (equals total FLOPs)."""
        return sum(node.flops for node in self.nodes)

    def prunable_weight_bytes(self) -> int:
        return sum(
            op.weight_bytes
            for node in self.nodes
            for op in node.ops
            if op.prunable
        )


def build_phase_graph(phase: Phase) -> PhaseGraph:
    """Group a phase's operators into per-layer nodes, preserving order."""
    nodes: List[LayerNode] = []
    index: Dict[Optional[int], LayerNode] = {}
    for op in phase.ops:
        node = index.get(op.layer_index)
        if node is None:
            node = LayerNode(layer_index=op.layer_index)
            index[op.layer_index] = node
            nodes.append(node)
        node.ops.append(op)
    return PhaseGraph(phase_name=phase.name, nodes=nodes)


def partition_ops_round_robin(ops: Sequence[Op], n_partitions: int) -> List[List[Op]]:
    """Distribute operators across ``n_partitions`` workers round-robin.

    Used for coarse op-level load balancing when a phase's layers contain
    more independent operators than cores.
    """
    if n_partitions <= 0:
        raise ValueError("n_partitions must be positive")
    partitions: List[List[Op]] = [[] for _ in range(n_partitions)]
    # Sort largest-first so the round-robin assignment approximates LPT
    # (longest-processing-time) scheduling.
    for rank, op in enumerate(sorted(ops, key=lambda o: o.flops, reverse=True)):
        partitions[rank % n_partitions].append(op)
    return partitions


def partition_balance(partitions: Sequence[Sequence[Op]]) -> float:
    """Load-balance quality: max partition FLOPs / mean partition FLOPs."""
    if not partitions:
        raise ValueError("partitions must not be empty")
    loads = [sum(op.flops for op in part) for part in partitions]
    mean = sum(loads) / len(loads)
    if mean == 0:
        return 1.0
    return max(loads) / mean
