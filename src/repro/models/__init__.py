"""MLLM workload substrate: operator IR, model catalogue and profiling."""

from .ops import (
    Op,
    OpKind,
    Phase,
    Workload,
    elementwise_op,
    matmul_op,
    merge_phases,
)
from .transformer import (
    TransformerLayerConfig,
    decode_layer_ops,
    encoder_layer_ops,
    prefill_layer_ops,
)
from .llm import LLMConfig, available_llms, get_llm
from .vision import (
    ConvNeXtEncoderConfig,
    VisionEncoderConfig,
    available_vision_encoders,
    get_vision_encoder,
)
from .projector import (
    LDPProjectorConfig,
    MLPProjectorConfig,
    QFormerProjectorConfig,
    mlp_projector,
)
from .mllm import (
    InferenceRequest,
    MLLMConfig,
    available_mllms,
    get_mllm,
)
from .activations import (
    ActivationTraceConfig,
    ActivationTraceGenerator,
    karmavlm_trace,
    sphinx_tiny_trace,
    synthetic_ffn_weights,
)
from .profiler import (
    LatencyBreakdown,
    PhaseStatistics,
    WorkloadStatistics,
    latency_breakdown,
    latency_sweep,
    memory_access_breakdown,
    phase_statistics,
    weight_traffic_breakdown,
    workload_statistics,
)
from .graph import (
    LayerNode,
    PhaseGraph,
    build_phase_graph,
    partition_balance,
    partition_ops_round_robin,
)

__all__ = [
    "Op",
    "OpKind",
    "Phase",
    "Workload",
    "elementwise_op",
    "matmul_op",
    "merge_phases",
    "TransformerLayerConfig",
    "decode_layer_ops",
    "encoder_layer_ops",
    "prefill_layer_ops",
    "LLMConfig",
    "available_llms",
    "get_llm",
    "ConvNeXtEncoderConfig",
    "VisionEncoderConfig",
    "available_vision_encoders",
    "get_vision_encoder",
    "LDPProjectorConfig",
    "MLPProjectorConfig",
    "QFormerProjectorConfig",
    "mlp_projector",
    "InferenceRequest",
    "MLLMConfig",
    "available_mllms",
    "get_mllm",
    "ActivationTraceConfig",
    "ActivationTraceGenerator",
    "karmavlm_trace",
    "sphinx_tiny_trace",
    "synthetic_ffn_weights",
    "LatencyBreakdown",
    "PhaseStatistics",
    "WorkloadStatistics",
    "latency_breakdown",
    "latency_sweep",
    "memory_access_breakdown",
    "phase_statistics",
    "weight_traffic_breakdown",
    "workload_statistics",
    "LayerNode",
    "PhaseGraph",
    "build_phase_graph",
    "partition_balance",
    "partition_ops_round_robin",
]
