"""Operator-level intermediate representation of MLLM workloads.

EdgeMM's in-house simulator works at the granularity of tensor operators
(GEMM, GEMV, attention, elementwise).  This module defines a small operator
IR that carries exactly the quantities the performance model needs:

* arithmetic work (multiply-accumulate count / FLOPs),
* memory traffic (weight bytes, activation bytes, output bytes),
* the kind of operator, which determines which coprocessor (systolic array
  or CIM macro) is the natural execution target.

Every higher-level model (vision encoders, projectors, LLMs) lowers to a
flat list of :class:`Op` objects grouped into :class:`Phase` objects.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from .. import costs


class OpKind(enum.Enum):
    """Classification of an operator by its compute/memory behaviour."""

    GEMM = "gemm"
    GEMV = "gemv"
    ATTENTION = "attention"
    ELEMENTWISE = "elementwise"
    SOFTMAX = "softmax"
    NORM = "norm"
    ACTIVATION = "activation"
    EMBEDDING = "embedding"
    CONV = "conv"
    OTHER = "other"


#: Operator kinds whose dominant work is a matrix-matrix product.  These map
#: naturally onto the compute-centric (systolic-array) cores.
COMPUTE_BOUND_KINDS = frozenset({OpKind.GEMM, OpKind.CONV, OpKind.ATTENTION})

#: Operator kinds whose dominant work is a matrix-vector product.  These map
#: naturally onto the memory-centric (CIM) cores.
MEMORY_BOUND_KINDS = frozenset({OpKind.GEMV, OpKind.EMBEDDING})


@dataclass(frozen=True)
class Op:
    """A single tensor operator with its work and traffic accounting.

    Attributes
    ----------
    name:
        Human-readable name, e.g. ``"decoder.3.ffn.gate"``.
    kind:
        The :class:`OpKind` classification.
    m, k, n:
        Logical GEMM dimensions: the operator computes an (m x k) by
        (k x n) product.  For a GEMV, ``m == 1``.  Non-matmul operators
        use ``m`` for the number of elements processed and ``k = n = 1``.
    weight_bytes:
        Bytes of model parameters that must be read from DRAM (zero for
        operators with no weights, e.g. softmax).
    activation_bytes:
        Bytes of input activations read.
    output_bytes:
        Bytes of output activations written.
    flops:
        Total floating-point operations (2 * MACs for matmul-like ops).
    prunable:
        Whether the operator is a candidate for activation-aware weight
        pruning (the FFN GEMVs of the decode phase in the paper).
    layer_index:
        Index of the decoder/encoder layer this op belongs to, if any.
    tag:
        Free-form grouping tag used by the profiler, e.g. ``"ffn"``,
        ``"attention"``, ``"kv_cache"``.
    """

    name: str
    kind: OpKind
    m: int = 1
    k: int = 1
    n: int = 1
    weight_bytes: int = 0
    activation_bytes: int = 0
    output_bytes: int = 0
    flops: int = 0
    prunable: bool = False
    layer_index: Optional[int] = None
    tag: str = ""

    def __post_init__(self) -> None:
        if self.m <= 0 or self.k <= 0 or self.n <= 0:
            raise ValueError(
                f"op {self.name!r}: dimensions must be positive, got "
                f"m={self.m}, k={self.k}, n={self.n}"
            )
        for label, value in (
            ("weight_bytes", self.weight_bytes),
            ("activation_bytes", self.activation_bytes),
            ("output_bytes", self.output_bytes),
            ("flops", self.flops),
        ):
            if value < 0:
                raise ValueError(f"op {self.name!r}: {label} must be >= 0")

    @property
    def total_bytes(self) -> int:
        """Total DRAM-visible traffic of the operator."""
        return self.weight_bytes + self.activation_bytes + self.output_bytes

    @property
    def macs(self) -> int:
        """Multiply-accumulate count (flops are counted as 2 per MAC)."""
        return self.flops // 2

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of traffic; the roofline x-axis."""
        if self.total_bytes == 0:
            return math.inf if self.flops > 0 else 0.0
        return self.flops / self.total_bytes

    @property
    def is_compute_bound_kind(self) -> bool:
        return self.kind in COMPUTE_BOUND_KINDS

    @property
    def is_memory_bound_kind(self) -> bool:
        return self.kind in MEMORY_BOUND_KINDS

    def pruned_weight_bytes(self, keep_fraction: float) -> int:
        """Weight traffic after activation-aware pruning at ``keep_fraction``.

        The single source of truth for how pruning scales weight reads:
        the simulator, the pipeline model and the serving cost model all
        account batches' shared weight traffic through this method.
        """
        if not 0.0 <= keep_fraction <= 1.0:
            raise ValueError("keep_fraction must be in [0, 1]")
        return int(
            costs.pruned_weight_bytes(self.weight_bytes, self.prunable, keep_fraction)
        )

    def scaled_traffic(self, weight_keep_fraction: float) -> "Op":
        """Return a copy with weight traffic scaled by ``weight_keep_fraction``.

        Used to apply activation-aware pruning: keeping a fraction ``f`` of
        the channels reads only ``f`` of the weight rows from DRAM and
        performs only ``f`` of the MACs.
        """
        if not 0.0 <= weight_keep_fraction <= 1.0:
            raise ValueError("weight_keep_fraction must be in [0, 1]")
        return replace(
            self,
            weight_bytes=int(round(self.weight_bytes * weight_keep_fraction)),
            flops=int(round(self.flops * weight_keep_fraction)),
        )


def matmul_op(
    name: str,
    m: int,
    k: int,
    n: int,
    *,
    weight_bytes_per_element: float = 1.0,
    activation_bytes_per_element: float = 2.0,
    weights_resident: bool = False,
    prunable: bool = False,
    layer_index: Optional[int] = None,
    tag: str = "",
) -> Op:
    """Build a GEMM/GEMV operator for an (m x k) @ (k x n) product.

    The operator is classified as :attr:`OpKind.GEMV` when ``m == 1``
    (a single embedding vector against the whole weight matrix, the decode
    case) and as :attr:`OpKind.GEMM` otherwise.

    Parameters
    ----------
    weight_bytes_per_element:
        Storage bytes per weight element (1.0 for INT8, 2.0 for BF16).
    activation_bytes_per_element:
        Storage bytes per activation element.
    weights_resident:
        If True the (k x n) operand is not a model parameter read from DRAM
        (e.g. attention score @ value products); its traffic is counted as
        activation traffic instead.
    """
    if m <= 0 or k <= 0 or n <= 0:
        raise ValueError("matmul dimensions must be positive")
    kind = OpKind.GEMV if m == 1 else OpKind.GEMM
    macs = m * k * n
    weight_elements = k * n
    act_elements = m * k
    out_elements = m * n
    if weights_resident:
        weight_bytes = 0
        activation_bytes = int(
            round((act_elements + weight_elements) * activation_bytes_per_element)
        )
    else:
        weight_bytes = int(round(weight_elements * weight_bytes_per_element))
        activation_bytes = int(round(act_elements * activation_bytes_per_element))
    return Op(
        name=name,
        kind=kind,
        m=m,
        k=k,
        n=n,
        weight_bytes=weight_bytes,
        activation_bytes=activation_bytes,
        output_bytes=int(round(out_elements * activation_bytes_per_element)),
        flops=2 * macs,
        prunable=prunable,
        layer_index=layer_index,
        tag=tag,
    )


def elementwise_op(
    name: str,
    elements: int,
    *,
    kind: OpKind = OpKind.ELEMENTWISE,
    bytes_per_element: float = 2.0,
    flops_per_element: float = 1.0,
    reads: int = 2,
    writes: int = 1,
    layer_index: Optional[int] = None,
    tag: str = "",
) -> Op:
    """Build an elementwise/softmax/norm/activation operator."""
    if elements <= 0:
        raise ValueError("elements must be positive")
    return Op(
        name=name,
        kind=kind,
        m=elements,
        k=1,
        n=1,
        weight_bytes=0,
        activation_bytes=int(round(elements * bytes_per_element * reads)),
        output_bytes=int(round(elements * bytes_per_element * writes)),
        flops=int(round(elements * flops_per_element)),
        layer_index=layer_index,
        tag=tag,
    )


@dataclass
class Phase:
    """An ordered group of operators making up one inference phase.

    The paper distinguishes four phases of an MLLM forward pass:
    vision encoding, projection, LLM prefill and LLM decode.  A decode
    phase object describes the work of a *single* decode step; drivers
    multiply by the number of generated tokens.
    """

    name: str
    ops: List[Op] = field(default_factory=list)
    repeat: int = 1

    def __post_init__(self) -> None:
        if self.repeat < 1:
            raise ValueError("repeat must be >= 1")

    def add(self, op: Op) -> None:
        self.ops.append(op)

    def extend(self, ops: Iterable[Op]) -> None:
        self.ops.extend(ops)

    def __iter__(self) -> Iterator[Op]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def flops(self) -> int:
        return self.repeat * sum(op.flops for op in self.ops)

    @property
    def weight_bytes(self) -> int:
        return self.repeat * sum(op.weight_bytes for op in self.ops)

    @property
    def activation_bytes(self) -> int:
        return self.repeat * sum(op.activation_bytes for op in self.ops)

    @property
    def output_bytes(self) -> int:
        return self.repeat * sum(op.output_bytes for op in self.ops)

    @property
    def total_bytes(self) -> int:
        return self.weight_bytes + self.activation_bytes + self.output_bytes

    def pruned_weight_bytes(self, keep_fraction: float) -> int:
        """Phase weight traffic with pruning applied (including repeats)."""
        return self.repeat * sum(
            op.pruned_weight_bytes(keep_fraction) for op in self.ops
        )

    @property
    def arithmetic_intensity(self) -> float:
        total = self.total_bytes
        if total == 0:
            return 0.0
        return self.flops / total

    def ops_by_kind(self, kind: OpKind) -> List[Op]:
        return [op for op in self.ops if op.kind is kind]

    def ops_by_tag(self, tag: str) -> List[Op]:
        return [op for op in self.ops if op.tag == tag]

    def traffic_by_tag(self) -> dict:
        """Total DRAM traffic per tag (used for Fig. 2(c))."""
        totals: dict = {}
        for op in self.ops:
            totals[op.tag] = totals.get(op.tag, 0) + op.total_bytes
        return {tag: self.repeat * total for tag, total in totals.items()}

    def scaled(self, repeat: int) -> "Phase":
        """Return a copy of this phase with a different repeat count."""
        return Phase(name=self.name, ops=list(self.ops), repeat=repeat)


@dataclass
class Workload:
    """A complete MLLM inference workload: an ordered list of phases."""

    name: str
    phases: List[Phase] = field(default_factory=list)

    def add(self, phase: Phase) -> None:
        self.phases.append(phase)

    def phase(self, name: str) -> Phase:
        for phase in self.phases:
            if phase.name == name:
                return phase
        raise KeyError(f"workload {self.name!r} has no phase named {name!r}")

    def has_phase(self, name: str) -> bool:
        return any(phase.name == name for phase in self.phases)

    @property
    def phase_names(self) -> Tuple[str, ...]:
        return tuple(phase.name for phase in self.phases)

    @property
    def flops(self) -> int:
        return sum(phase.flops for phase in self.phases)

    @property
    def total_bytes(self) -> int:
        return sum(phase.total_bytes for phase in self.phases)

    def __iter__(self) -> Iterator[Phase]:
        return iter(self.phases)

    def __len__(self) -> int:
        return len(self.phases)


def merge_phases(name: str, phases: Sequence[Phase]) -> Phase:
    """Flatten several phases into one (expanding their repeat counts)."""
    merged = Phase(name=name)
    for phase in phases:
        for _ in range(phase.repeat):
            merged.extend(phase.ops)
    return merged
