"""Language-model definitions for the edge MLLMs evaluated in the paper.

Each LLM is described by its architectural shape (layer count, model
dimension, FFN dimension, attention heads, vocabulary size) and can lower
itself to prefill and decode :class:`~repro.models.ops.Phase` objects.

The catalogue covers the language backbones of Table I of the paper:
TinyLlama-1.1B (SPHINX-Tiny), Qwen1.5-0.5B (KarmaVLM), MobileLLaMA-2.7B,
Phi-2 2.7B, DeepSeek-LLM 1.3B, Vicuna-7B/13B and LLaMA-33B.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .ops import Op, OpKind, Phase, matmul_op
from .transformer import TransformerLayerConfig, decode_layer_ops, prefill_layer_ops


@dataclass(frozen=True)
class LLMConfig:
    """Architecture parameters of a decoder-only language model."""

    name: str
    n_layers: int
    d_model: int
    n_heads: int
    d_ffn: int
    vocab_size: int
    n_kv_heads: Optional[int] = None
    gated_ffn: bool = True
    weight_bytes: float = 1.0
    activation_bytes: float = 2.0

    def __post_init__(self) -> None:
        if self.n_layers <= 0:
            raise ValueError("n_layers must be positive")
        if self.vocab_size <= 0:
            raise ValueError("vocab_size must be positive")
        # Validate the per-layer shape eagerly so bad configs fail at
        # construction time rather than at lowering time.
        self.layer_config()

    def layer_config(self) -> TransformerLayerConfig:
        return TransformerLayerConfig(
            d_model=self.d_model,
            n_heads=self.n_heads,
            n_kv_heads=self.n_kv_heads,
            d_ffn=self.d_ffn,
            gated_ffn=self.gated_ffn,
            weight_bytes=self.weight_bytes,
            activation_bytes=self.activation_bytes,
        )

    @property
    def parameter_count(self) -> int:
        """Total weight elements: embeddings + decoder blocks + LM head."""
        block = self.layer_config().parameter_count
        embedding = self.vocab_size * self.d_model
        lm_head = self.vocab_size * self.d_model
        return self.n_layers * block + embedding + lm_head

    @property
    def parameter_bytes(self) -> int:
        return int(round(self.parameter_count * self.weight_bytes))

    @property
    def decoder_parameter_bytes(self) -> int:
        """Weight bytes read per decode step (all blocks + LM head)."""
        block = self.layer_config().parameter_count
        lm_head = self.vocab_size * self.d_model
        return int(round((self.n_layers * block + lm_head) * self.weight_bytes))

    # ------------------------------------------------------------------
    # Lowering to the operator IR
    # ------------------------------------------------------------------
    def prefill_phase(self, prompt_tokens: int) -> Phase:
        """Operators for prefilling ``prompt_tokens`` prompt tokens."""
        if prompt_tokens <= 0:
            raise ValueError("prompt_tokens must be positive")
        cfg = self.layer_config()
        phase = Phase(name="llm_prefill")
        for layer in range(self.n_layers):
            phase.extend(
                prefill_layer_ops(
                    cfg, prompt_tokens, layer_index=layer, prefix=f"{self.name}.prefill"
                )
            )
        phase.add(self._lm_head_op(prompt_tokens=1, label="prefill"))
        return phase

    def decode_step_phase(self, context_tokens: int) -> Phase:
        """Operators for generating one token with ``context_tokens`` cached."""
        if context_tokens <= 0:
            raise ValueError("context_tokens must be positive")
        cfg = self.layer_config()
        phase = Phase(name="llm_decode")
        for layer in range(self.n_layers):
            phase.extend(
                decode_layer_ops(
                    cfg, context_tokens, layer_index=layer, prefix=f"{self.name}.decode"
                )
            )
        phase.add(self._lm_head_op(prompt_tokens=1, label="decode"))
        return phase

    def decode_phase(
        self, prompt_tokens: int, output_tokens: int, *, average_context: bool = True
    ) -> Phase:
        """Operators for the full decode of ``output_tokens`` tokens.

        With ``average_context`` (the default) a single representative decode
        step at the mean context length is built and repeated, which keeps
        the op count manageable for long generations while preserving total
        work and traffic to first order (KV-cache traffic grows linearly in
        context length, so the mean context gives the exact total).
        """
        if output_tokens <= 0:
            raise ValueError("output_tokens must be positive")
        if average_context:
            mean_context = prompt_tokens + max(output_tokens - 1, 0) / 2.0
            step = self.decode_step_phase(max(int(round(mean_context)), 1))
            return step.scaled(repeat=output_tokens)
        phase = Phase(name="llm_decode")
        for step_index in range(output_tokens):
            context = prompt_tokens + step_index
            step = self.decode_step_phase(max(context, 1))
            phase.extend(step.ops)
        return phase

    def _lm_head_op(self, prompt_tokens: int, label: str) -> Op:
        return matmul_op(
            f"{self.name}.{label}.lm_head",
            prompt_tokens,
            self.d_model,
            self.vocab_size,
            weight_bytes_per_element=self.weight_bytes,
            activation_bytes_per_element=self.activation_bytes,
            tag="lm_head",
        )

    def ffn_weight_bytes_per_step(self) -> int:
        """FFN weight bytes read during one (unpruned) decode step."""
        per_layer = (3 if self.gated_ffn else 2) * self.d_model * self.d_ffn
        return int(round(self.n_layers * per_layer * self.weight_bytes))


# ----------------------------------------------------------------------
# Catalogue of the language models referenced in Table I of the paper
# ----------------------------------------------------------------------
_LLM_CATALOGUE: Dict[str, LLMConfig] = {}


def _register(config: LLMConfig) -> LLMConfig:
    key = config.name.lower()
    if key in _LLM_CATALOGUE:
        raise ValueError(f"duplicate LLM registration: {config.name}")
    _LLM_CATALOGUE[key] = config
    return config


TINYLLAMA_1_1B = _register(
    LLMConfig(
        name="tinyllama-1.1b",
        n_layers=22,
        d_model=2048,
        n_heads=32,
        n_kv_heads=4,
        d_ffn=5632,
        vocab_size=32000,
    )
)

QWEN1_5_0_5B = _register(
    LLMConfig(
        name="qwen1.5-0.5b",
        n_layers=24,
        d_model=1024,
        n_heads=16,
        n_kv_heads=16,
        d_ffn=2816,
        vocab_size=151936,
    )
)

MOBILELLAMA_2_7B = _register(
    LLMConfig(
        name="mobilellama-2.7b",
        n_layers=32,
        d_model=2560,
        n_heads=32,
        d_ffn=6912,
        vocab_size=32000,
    )
)

PHI_2_2_7B = _register(
    LLMConfig(
        name="phi-2",
        n_layers=32,
        d_model=2560,
        n_heads=32,
        d_ffn=10240,
        vocab_size=51200,
        gated_ffn=False,
    )
)

DEEPSEEK_LLM_1_3B = _register(
    LLMConfig(
        name="deepseek-llm-1.3b",
        n_layers=24,
        d_model=2048,
        n_heads=16,
        d_ffn=5504,
        vocab_size=102400,
    )
)

VICUNA_7B = _register(
    LLMConfig(
        name="vicuna-7b",
        n_layers=32,
        d_model=4096,
        n_heads=32,
        d_ffn=11008,
        vocab_size=32000,
    )
)

VICUNA_13B = _register(
    LLMConfig(
        name="vicuna-13b",
        n_layers=40,
        d_model=5120,
        n_heads=40,
        d_ffn=13824,
        vocab_size=32000,
    )
)

LLAMA_33B = _register(
    LLMConfig(
        name="llama-33b",
        n_layers=60,
        d_model=6656,
        n_heads=52,
        d_ffn=17920,
        vocab_size=32000,
    )
)


def available_llms() -> List[str]:
    """Names of all registered language models."""
    return sorted(_LLM_CATALOGUE)


def get_llm(name: str) -> LLMConfig:
    """Look up a registered language model by (case-insensitive) name."""
    key = name.lower()
    if key not in _LLM_CATALOGUE:
        raise KeyError(
            f"unknown LLM {name!r}; available: {', '.join(available_llms())}"
        )
    return _LLM_CATALOGUE[key]
