"""Transformer layer builders lowered to the operator IR.

These builders produce the operator lists for a standard pre-norm
Transformer block in its three usage modes:

* **encoder** — all tokens processed together (vision encoder),
* **prefill** — all prompt tokens processed together, KV cache written,
* **decode** — a single token processed against the cached KV entries.

The shapes follow the conventions of the LLaMA-family models the paper
targets (gated-MLP FFN, grouped-query attention optional) and of ViT-style
encoders (standard MLP FFN with GELU).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .ops import Op, OpKind, elementwise_op, matmul_op


@dataclass(frozen=True)
class TransformerLayerConfig:
    """Shape parameters of one Transformer block.

    Attributes
    ----------
    d_model:
        Hidden (model) dimension.
    n_heads:
        Number of attention heads.
    n_kv_heads:
        Number of key/value heads (``n_heads`` unless grouped-query
        attention is used).
    d_ffn:
        FFN inner (channel) dimension.
    gated_ffn:
        True for the gated-MLP (SwiGLU) FFN of LLaMA-family models
        (three projections: gate, up, down); False for the classic
        two-projection MLP of ViT-style encoders.
    weight_bytes:
        Bytes per weight element (1 for INT8, 2 for BF16).
    activation_bytes:
        Bytes per activation element.
    """

    d_model: int
    n_heads: int
    d_ffn: int
    n_kv_heads: Optional[int] = None
    gated_ffn: bool = True
    weight_bytes: float = 1.0
    activation_bytes: float = 2.0

    def __post_init__(self) -> None:
        if self.d_model <= 0 or self.n_heads <= 0 or self.d_ffn <= 0:
            raise ValueError("d_model, n_heads and d_ffn must be positive")
        if self.d_model % self.n_heads != 0:
            raise ValueError("d_model must be divisible by n_heads")
        kv_heads = self.kv_heads
        if kv_heads <= 0 or self.n_heads % kv_heads != 0:
            raise ValueError("n_kv_heads must divide n_heads")

    @property
    def kv_heads(self) -> int:
        return self.n_kv_heads if self.n_kv_heads is not None else self.n_heads

    @property
    def head_dim(self) -> int:
        return self.d_model // self.n_heads

    @property
    def kv_dim(self) -> int:
        return self.kv_heads * self.head_dim

    @property
    def parameter_count(self) -> int:
        """Number of weight elements in one block (attention + FFN)."""
        attn = (
            self.d_model * self.d_model  # Q
            + 2 * self.d_model * self.kv_dim  # K, V
            + self.d_model * self.d_model  # output projection
        )
        if self.gated_ffn:
            ffn = 3 * self.d_model * self.d_ffn
        else:
            ffn = 2 * self.d_model * self.d_ffn
        return attn + ffn

    @property
    def parameter_bytes(self) -> int:
        return int(round(self.parameter_count * self.weight_bytes))


def _projections(
    cfg: TransformerLayerConfig,
    tokens: int,
    layer_index: Optional[int],
    prefix: str,
) -> List[Op]:
    """QKV and output projections for ``tokens`` query tokens."""
    common = dict(
        weight_bytes_per_element=cfg.weight_bytes,
        activation_bytes_per_element=cfg.activation_bytes,
        layer_index=layer_index,
        tag="attn_proj",
    )
    return [
        matmul_op(f"{prefix}.q_proj", tokens, cfg.d_model, cfg.d_model, **common),
        matmul_op(f"{prefix}.k_proj", tokens, cfg.d_model, cfg.kv_dim, **common),
        matmul_op(f"{prefix}.v_proj", tokens, cfg.d_model, cfg.kv_dim, **common),
        matmul_op(f"{prefix}.o_proj", tokens, cfg.d_model, cfg.d_model, **common),
    ]


def _attention_core(
    cfg: TransformerLayerConfig,
    q_tokens: int,
    kv_tokens: int,
    layer_index: Optional[int],
    prefix: str,
    *,
    include_kv_operand_traffic: bool,
) -> List[Op]:
    """Score and context matmuls plus softmax for the attention core.

    The score (Q @ K^T) and context (scores @ V) products involve no model
    parameters.  Their arithmetic work is the per-head sum: every query head
    computes a (q_tokens x head_dim) by (head_dim x kv_tokens) product, so
    across all heads the MAC count equals q_tokens * d_model * kv_tokens.
    The K/V operand traffic is only charged here when no separate KV-cache
    operator carries it (the encoder case); in prefill/decode the
    ``kv_cache`` operators account for those DRAM reads and writes, so the
    score/context operators only read Q and the score matrix.
    """
    act_bytes = cfg.activation_bytes
    macs_per_product = q_tokens * cfg.d_model * kv_tokens
    score_elements = q_tokens * kv_tokens * cfg.n_heads
    kv_operand_bytes = (
        int(round(kv_tokens * cfg.kv_dim * act_bytes)) if include_kv_operand_traffic else 0
    )
    score = Op(
        name=f"{prefix}.scores",
        kind=OpKind.ATTENTION if q_tokens > 1 else OpKind.GEMV,
        m=q_tokens,
        k=cfg.d_model,
        n=kv_tokens,
        weight_bytes=0,
        activation_bytes=int(round(q_tokens * cfg.d_model * act_bytes)) + kv_operand_bytes,
        output_bytes=int(round(score_elements * act_bytes)),
        flops=2 * macs_per_product,
        layer_index=layer_index,
        tag="attn_core",
    )
    softmax = elementwise_op(
        f"{prefix}.softmax",
        score_elements,
        kind=OpKind.SOFTMAX,
        bytes_per_element=act_bytes,
        flops_per_element=5.0,
        layer_index=layer_index,
        tag="attn_core",
    )
    context = Op(
        name=f"{prefix}.context",
        kind=OpKind.ATTENTION if q_tokens > 1 else OpKind.GEMV,
        m=q_tokens,
        k=kv_tokens,
        n=cfg.d_model,
        weight_bytes=0,
        activation_bytes=int(round(score_elements * act_bytes)) + kv_operand_bytes,
        output_bytes=int(round(q_tokens * cfg.d_model * act_bytes)),
        flops=2 * macs_per_product,
        layer_index=layer_index,
        tag="attn_core",
    )
    return [score, softmax, context]


def _kv_cache_ops(
    cfg: TransformerLayerConfig,
    q_tokens: int,
    kv_tokens: int,
    layer_index: Optional[int],
    prefix: str,
    mode: str,
) -> List[Op]:
    """KV-cache write traffic (prefill) or read traffic (decode)."""
    elements = kv_tokens * cfg.kv_dim * 2  # K and V
    if mode == "prefill":
        # Write the freshly computed K/V for all prompt tokens.
        return [
            Op(
                name=f"{prefix}.kv_write",
                kind=OpKind.OTHER,
                m=elements,
                weight_bytes=0,
                activation_bytes=0,
                output_bytes=int(round(elements * cfg.activation_bytes)),
                flops=0,
                layer_index=layer_index,
                tag="kv_cache",
            )
        ]
    if mode == "decode":
        # Read the whole cache, append one token's K/V.
        read_elements = kv_tokens * cfg.kv_dim * 2
        write_elements = q_tokens * cfg.kv_dim * 2
        return [
            Op(
                name=f"{prefix}.kv_read",
                kind=OpKind.OTHER,
                m=read_elements,
                weight_bytes=0,
                activation_bytes=int(round(read_elements * cfg.activation_bytes)),
                output_bytes=int(round(write_elements * cfg.activation_bytes)),
                flops=0,
                layer_index=layer_index,
                tag="kv_cache",
            )
        ]
    return []


def _ffn_ops(
    cfg: TransformerLayerConfig,
    tokens: int,
    layer_index: Optional[int],
    prefix: str,
    prunable: bool,
) -> List[Op]:
    """Gated-MLP (Eq. 1 of the paper) or classic MLP FFN operators."""
    common = dict(
        weight_bytes_per_element=cfg.weight_bytes,
        activation_bytes_per_element=cfg.activation_bytes,
        layer_index=layer_index,
        tag="ffn",
    )
    ops: List[Op] = []
    if cfg.gated_ffn:
        ops.append(
            matmul_op(
                f"{prefix}.ffn.gate",
                tokens,
                cfg.d_model,
                cfg.d_ffn,
                prunable=prunable,
                **common,
            )
        )
        ops.append(
            matmul_op(
                f"{prefix}.ffn.up",
                tokens,
                cfg.d_model,
                cfg.d_ffn,
                prunable=prunable,
                **common,
            )
        )
        ops.append(
            elementwise_op(
                f"{prefix}.ffn.act_mul",
                tokens * cfg.d_ffn,
                kind=OpKind.ACTIVATION,
                bytes_per_element=cfg.activation_bytes,
                flops_per_element=4.0,
                layer_index=layer_index,
                tag="ffn",
            )
        )
        ops.append(
            matmul_op(
                f"{prefix}.ffn.down",
                tokens,
                cfg.d_ffn,
                cfg.d_model,
                prunable=prunable,
                **common,
            )
        )
    else:
        ops.append(
            matmul_op(
                f"{prefix}.ffn.fc1",
                tokens,
                cfg.d_model,
                cfg.d_ffn,
                prunable=prunable,
                **common,
            )
        )
        ops.append(
            elementwise_op(
                f"{prefix}.ffn.gelu",
                tokens * cfg.d_ffn,
                kind=OpKind.ACTIVATION,
                bytes_per_element=cfg.activation_bytes,
                flops_per_element=8.0,
                layer_index=layer_index,
                tag="ffn",
            )
        )
        ops.append(
            matmul_op(
                f"{prefix}.ffn.fc2",
                tokens,
                cfg.d_ffn,
                cfg.d_model,
                prunable=prunable,
                **common,
            )
        )
    return ops


def _norm_ops(
    cfg: TransformerLayerConfig,
    tokens: int,
    layer_index: Optional[int],
    prefix: str,
) -> List[Op]:
    return [
        elementwise_op(
            f"{prefix}.norm{i}",
            tokens * cfg.d_model,
            kind=OpKind.NORM,
            bytes_per_element=cfg.activation_bytes,
            flops_per_element=4.0,
            layer_index=layer_index,
            tag="norm",
        )
        for i in (1, 2)
    ]


def encoder_layer_ops(
    cfg: TransformerLayerConfig,
    tokens: int,
    layer_index: Optional[int] = None,
    prefix: str = "encoder",
) -> List[Op]:
    """Operators of one encoder block processing ``tokens`` tokens."""
    if tokens <= 0:
        raise ValueError("tokens must be positive")
    name = f"{prefix}.{layer_index}" if layer_index is not None else prefix
    ops: List[Op] = []
    ops.extend(_norm_ops(cfg, tokens, layer_index, name))
    ops.extend(_projections(cfg, tokens, layer_index, name))
    ops.extend(
        _attention_core(
            cfg, tokens, tokens, layer_index, name, include_kv_operand_traffic=True
        )
    )
    ops.extend(_ffn_ops(cfg, tokens, layer_index, name, prunable=False))
    return ops


def prefill_layer_ops(
    cfg: TransformerLayerConfig,
    prompt_tokens: int,
    layer_index: Optional[int] = None,
    prefix: str = "prefill",
) -> List[Op]:
    """Operators of one decoder block during prefill of ``prompt_tokens``."""
    if prompt_tokens <= 0:
        raise ValueError("prompt_tokens must be positive")
    name = f"{prefix}.{layer_index}" if layer_index is not None else prefix
    ops: List[Op] = []
    ops.extend(_norm_ops(cfg, prompt_tokens, layer_index, name))
    ops.extend(_projections(cfg, prompt_tokens, layer_index, name))
    ops.extend(
        _attention_core(
            cfg,
            prompt_tokens,
            prompt_tokens,
            layer_index,
            name,
            include_kv_operand_traffic=False,
        )
    )
    ops.extend(_kv_cache_ops(cfg, prompt_tokens, prompt_tokens, layer_index, name, "prefill"))
    ops.extend(_ffn_ops(cfg, prompt_tokens, layer_index, name, prunable=False))
    return ops


def decode_layer_ops(
    cfg: TransformerLayerConfig,
    context_tokens: int,
    layer_index: Optional[int] = None,
    prefix: str = "decode",
) -> List[Op]:
    """Operators of one decoder block for a single decode step.

    ``context_tokens`` is the current KV-cache length (prompt plus tokens
    generated so far).  The FFN projections are GEMVs and are marked
    ``prunable`` — these are the operators targeted by the paper's
    activation-aware weight pruning.
    """
    if context_tokens <= 0:
        raise ValueError("context_tokens must be positive")
    name = f"{prefix}.{layer_index}" if layer_index is not None else prefix
    ops: List[Op] = []
    ops.extend(_norm_ops(cfg, 1, layer_index, name))
    ops.extend(_projections(cfg, 1, layer_index, name))
    ops.extend(
        _attention_core(
            cfg, 1, context_tokens, layer_index, name, include_kv_operand_traffic=False
        )
    )
    ops.extend(_kv_cache_ops(cfg, 1, context_tokens, layer_index, name, "decode"))
    ops.extend(_ffn_ops(cfg, 1, layer_index, name, prunable=True))
    return ops
