"""Workload profiling utilities (Fig. 2 of the paper).

The profiler answers the questions Section II-B asks about edge MLLMs:

* how the inference latency splits across vision encoder / projector /
  prefill / decode as the output token length grows (Fig. 2(a)),
* the per-phase model statistics — FLOPs, parameters, arithmetic
  intensity (Fig. 2(b)),
* where the DRAM traffic goes — FFN weights vs attention weights vs KV
  cache vs activations (Fig. 2(c)).

Latency numbers require a hardware model; the profiler accepts any object
with an ``execute_phase(phase) -> PhaseResult``-like interface (the EdgeMM
simulator, the homogeneous variants and the GPU baseline all provide one),
but the traffic and FLOP statistics are hardware-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from .mllm import InferenceRequest, MLLMConfig
from .ops import OpKind, Phase, Workload


@dataclass(frozen=True)
class PhaseStatistics:
    """Hardware-independent statistics of one phase."""

    name: str
    flops: int
    weight_bytes: int
    activation_bytes: int
    output_bytes: int
    op_count: int
    gemm_flops: int
    gemv_flops: int

    @property
    def total_bytes(self) -> int:
        return self.weight_bytes + self.activation_bytes + self.output_bytes

    @property
    def arithmetic_intensity(self) -> float:
        total = self.total_bytes
        return self.flops / total if total else 0.0


@dataclass(frozen=True)
class WorkloadStatistics:
    """Per-phase and aggregate statistics of a workload (Fig. 2(b))."""

    workload_name: str
    phases: Dict[str, PhaseStatistics]

    @property
    def total_flops(self) -> int:
        return sum(p.flops for p in self.phases.values())

    @property
    def total_bytes(self) -> int:
        return sum(p.total_bytes for p in self.phases.values())

    def phase(self, name: str) -> PhaseStatistics:
        if name not in self.phases:
            raise KeyError(f"no phase named {name!r} in {self.workload_name}")
        return self.phases[name]


def phase_statistics(phase: Phase) -> PhaseStatistics:
    """Compute hardware-independent statistics of a phase."""
    gemm_flops = phase.repeat * sum(
        op.flops for op in phase.ops if op.kind is OpKind.GEMM
    )
    gemv_flops = phase.repeat * sum(
        op.flops for op in phase.ops if op.kind is OpKind.GEMV
    )
    return PhaseStatistics(
        name=phase.name,
        flops=phase.flops,
        weight_bytes=phase.weight_bytes,
        activation_bytes=phase.activation_bytes,
        output_bytes=phase.output_bytes,
        op_count=phase.repeat * len(phase.ops),
        gemm_flops=gemm_flops,
        gemv_flops=gemv_flops,
    )


def workload_statistics(workload: Workload) -> WorkloadStatistics:
    """Per-phase statistics for a whole workload."""
    return WorkloadStatistics(
        workload_name=workload.name,
        phases={phase.name: phase_statistics(phase) for phase in workload.phases},
    )


def memory_access_breakdown(workload: Workload) -> Dict[str, int]:
    """DRAM traffic grouped by operator tag (Fig. 2(c)).

    Tags of interest: ``ffn`` (FFN weights + activations), ``attn_proj``
    (attention projection weights), ``kv_cache``, ``lm_head``, plus the
    encoder-side tags.  Weight and activation traffic are both included, as
    in the paper's figure.
    """
    breakdown: Dict[str, int] = {}
    for phase in workload.phases:
        for tag, traffic in phase.traffic_by_tag().items():
            label = tag or "other"
            breakdown[label] = breakdown.get(label, 0) + traffic
    return breakdown


def weight_traffic_breakdown(workload: Workload) -> Dict[str, int]:
    """Weight-only DRAM traffic grouped by operator tag."""
    breakdown: Dict[str, int] = {}
    for phase in workload.phases:
        for op in phase.ops:
            label = op.tag or "other"
            breakdown[label] = breakdown.get(label, 0) + phase.repeat * op.weight_bytes
    return breakdown


@dataclass(frozen=True)
class LatencyBreakdown:
    """Per-phase latency of one request on one hardware model (Fig. 2(a))."""

    workload_name: str
    hardware_name: str
    output_tokens: int
    phase_latency_s: Dict[str, float]

    @property
    def total_latency_s(self) -> float:
        return sum(self.phase_latency_s.values())

    def fraction(self, phase_name: str) -> float:
        total = self.total_latency_s
        if total == 0:
            return 0.0
        return self.phase_latency_s.get(phase_name, 0.0) / total


def latency_breakdown(
    model: MLLMConfig,
    request: InferenceRequest,
    hardware,
    *,
    hardware_name: Optional[str] = None,
) -> LatencyBreakdown:
    """Per-phase latency of a request on a hardware model.

    ``hardware`` must expose ``execute_phase(phase)`` returning an object
    with a ``latency_s`` attribute (all hardware models in this package do).
    """
    workload = model.build_workload(request)
    phase_latency: Dict[str, float] = {}
    for phase in workload.phases:
        result = hardware.execute_phase(phase)
        phase_latency[phase.name] = float(result.latency_s)
    return LatencyBreakdown(
        workload_name=workload.name,
        hardware_name=hardware_name or type(hardware).__name__,
        output_tokens=request.output_tokens,
        phase_latency_s=phase_latency,
    )


def latency_sweep(
    model: MLLMConfig,
    hardware,
    output_token_lengths: Sequence[int],
    *,
    images: int = 1,
    prompt_text_tokens: int = 32,
    hardware_name: Optional[str] = None,
) -> List[LatencyBreakdown]:
    """Latency breakdowns across a range of output token lengths (Fig. 2(a))."""
    if not output_token_lengths:
        raise ValueError("output_token_lengths must not be empty")
    results = []
    for length in output_token_lengths:
        request = InferenceRequest(
            images=images,
            prompt_text_tokens=prompt_text_tokens,
            output_tokens=length,
        )
        results.append(
            latency_breakdown(model, request, hardware, hardware_name=hardware_name)
        )
    return results
