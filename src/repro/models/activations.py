"""Synthetic activation traces calibrated to the paper's profiling (Fig. 3).

The activation-aware pruning algorithm only consumes the *statistics* of the
FFN input activations: per-channel magnitudes, their sparsity, and the
presence of a few outlier channels whose prominence grows with decoder-layer
depth.  Since the real SPHINX-Tiny checkpoint and VQA inputs are not
available offline, this module generates activation vectors with exactly
those properties:

* most channels have small magnitudes (drawn from a heavy-tailed but
  narrow base distribution),
* a small set of outlier channels carries magnitudes one to two orders of
  magnitude larger,
* the outlier fraction shrinks and the outlier magnitude grows with layer
  depth, so channel-wise kurtosis increases with depth — matching the
  "outliers become more prominent as the layer index increases" observation
  and the Kurtosis curve of Fig. 12(a),
* the first layer has a high-kurtosis but *unstable* distribution (its
  outlier channel positions are re-drawn every token), matching the paper's
  note that pruning layer 1 destroys accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class ActivationTraceConfig:
    """Parameters of a synthetic FFN-activation trace.

    Attributes
    ----------
    n_layers:
        Number of decoder layers.
    d_model:
        Activation vector dimension (channels).
    base_scale:
        Scale of the non-outlier channel magnitudes.
    outlier_fraction_first:
        Fraction of channels that are outliers in the earliest stable layer.
    outlier_fraction_last:
        Fraction of channels that are outliers in the deepest layer
        (smaller => sparser => more prunable).
    outlier_scale_first:
        Outlier magnitude multiplier at the earliest stable layer.
    outlier_scale_last:
        Outlier magnitude multiplier at the deepest layer.
    first_layer_unstable:
        Whether layer 0's outlier channels are re-randomised per token.
    seed:
        Base RNG seed; the trace is fully deterministic given the seed.
    """

    n_layers: int = 22
    d_model: int = 2048
    base_scale: float = 0.02
    outlier_fraction_first: float = 0.45
    outlier_fraction_last: float = 0.08
    outlier_scale_first: float = 4.0
    outlier_scale_last: float = 40.0
    first_layer_unstable: bool = True
    seed: int = 2025

    def __post_init__(self) -> None:
        if self.n_layers <= 0 or self.d_model <= 0:
            raise ValueError("n_layers and d_model must be positive")
        if not 0.0 < self.outlier_fraction_last <= self.outlier_fraction_first <= 1.0:
            raise ValueError(
                "outlier fractions must satisfy 0 < last <= first <= 1"
            )
        if self.outlier_scale_first <= 0 or self.outlier_scale_last <= 0:
            raise ValueError("outlier scales must be positive")
        if self.base_scale <= 0:
            raise ValueError("base_scale must be positive")


class ActivationTraceGenerator:
    """Generates per-layer FFN input activation vectors for decode steps."""

    def __init__(self, config: Optional[ActivationTraceConfig] = None) -> None:
        self.config = config or ActivationTraceConfig()
        self._layer_outlier_channels = self._draw_outlier_channels()

    # ------------------------------------------------------------------
    # Layer-depth interpolation helpers
    # ------------------------------------------------------------------
    def _depth_fraction(self, layer_index: int) -> float:
        cfg = self.config
        if cfg.n_layers == 1:
            return 1.0
        return layer_index / (cfg.n_layers - 1)

    def outlier_fraction(self, layer_index: int) -> float:
        """Fraction of outlier channels at a given layer depth."""
        self._check_layer(layer_index)
        cfg = self.config
        t = self._depth_fraction(layer_index)
        # Geometric interpolation keeps the fraction positive and gives the
        # rapid early drop seen in the profiled traces.
        return float(
            cfg.outlier_fraction_first
            * (cfg.outlier_fraction_last / cfg.outlier_fraction_first) ** t
        )

    def outlier_scale(self, layer_index: int) -> float:
        """Outlier magnitude multiplier at a given layer depth."""
        self._check_layer(layer_index)
        cfg = self.config
        t = self._depth_fraction(layer_index)
        return float(
            cfg.outlier_scale_first
            * (cfg.outlier_scale_last / cfg.outlier_scale_first) ** t
        )

    def _check_layer(self, layer_index: int) -> None:
        if not 0 <= layer_index < self.config.n_layers:
            raise IndexError(
                f"layer_index {layer_index} out of range [0, {self.config.n_layers})"
            )

    def _draw_outlier_channels(self) -> List[np.ndarray]:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        channels: List[np.ndarray] = []
        for layer in range(cfg.n_layers):
            count = max(int(round(self.outlier_fraction(layer) * cfg.d_model)), 1)
            channels.append(rng.choice(cfg.d_model, size=count, replace=False))
        return channels

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def layer_vector(self, layer_index: int, token_index: int = 0) -> np.ndarray:
        """FFN input activation vector ``Vx`` for one layer and token."""
        self._check_layer(layer_index)
        cfg = self.config
        rng = np.random.default_rng(
            cfg.seed + 7919 * (layer_index + 1) + 104729 * (token_index + 1)
        )
        base = rng.laplace(loc=0.0, scale=cfg.base_scale, size=cfg.d_model)
        if layer_index == 0 and cfg.first_layer_unstable:
            count = max(int(round(self.outlier_fraction(0) * cfg.d_model)), 1)
            outliers = rng.choice(cfg.d_model, size=count, replace=False)
        else:
            outliers = self._layer_outlier_channels[layer_index]
        scale = self.outlier_scale(layer_index)
        signs = rng.choice((-1.0, 1.0), size=outliers.size)
        magnitudes = rng.gamma(shape=2.0, scale=cfg.base_scale * scale, size=outliers.size)
        base[outliers] = signs * (magnitudes + cfg.base_scale * scale)
        return base

    def token_trace(self, token_index: int = 0) -> List[np.ndarray]:
        """Activation vectors of every layer for one generated token."""
        return [
            self.layer_vector(layer, token_index)
            for layer in range(self.config.n_layers)
        ]

    def iter_tokens(self, n_tokens: int, start: int = 0) -> Iterator[List[np.ndarray]]:
        """Iterate over per-token traces for ``n_tokens`` decode steps."""
        if n_tokens <= 0:
            raise ValueError("n_tokens must be positive")
        for token in range(start, start + n_tokens):
            yield self.token_trace(token)

    def stable_outlier_channels(self, layer_index: int) -> np.ndarray:
        """The fixed outlier channel set of a layer (copy)."""
        self._check_layer(layer_index)
        return self._layer_outlier_channels[layer_index].copy()


def sphinx_tiny_trace(seed: int = 2025) -> ActivationTraceGenerator:
    """Trace generator matching SPHINX-Tiny's TinyLlama-1.1B decoder shape."""
    return ActivationTraceGenerator(
        ActivationTraceConfig(n_layers=22, d_model=2048, seed=seed)
    )


def karmavlm_trace(seed: int = 2025) -> ActivationTraceGenerator:
    """Trace generator matching KarmaVLM's Qwen1.5-0.5B decoder shape."""
    return ActivationTraceGenerator(
        ActivationTraceConfig(n_layers=24, d_model=1024, seed=seed)
    )


def synthetic_ffn_weights(
    d_model: int, d_ffn: int, seed: int = 7, scale: float = 0.02
) -> np.ndarray:
    """Deterministic synthetic FFN weight matrix of shape (d_ffn, d_model).

    Rows correspond to output channels; columns to input channels, so
    activation-channel pruning removes *columns* of this matrix (equivalently
    rows of the ``d_model x d_ffn`` layout used in the paper's Fig. 8).
    """
    if d_model <= 0 or d_ffn <= 0:
        raise ValueError("d_model and d_ffn must be positive")
    rng = np.random.default_rng(seed)
    return rng.normal(loc=0.0, scale=scale, size=(d_ffn, d_model))
