"""Vision-encoder definitions for the MLLMs of Table I.

The encoders are ViT-style Transformers (CLIP ViT-L/14, SigLIP, DINOv2,
EVA) plus a convolutional CLIP-ConvNeXt variant used by SPHINX-Tiny.  Each
encoder lowers to a single compute-intensive ``vision_encoder`` phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .ops import Op, OpKind, Phase, elementwise_op, matmul_op
from .transformer import TransformerLayerConfig, encoder_layer_ops


@dataclass(frozen=True)
class VisionEncoderConfig:
    """Architecture parameters of a ViT-style vision encoder."""

    name: str
    n_layers: int
    d_model: int
    n_heads: int
    d_ffn: int
    image_size: int = 224
    patch_size: int = 14
    output_dim: int = 0  # 0 means no final projection
    weight_bytes: float = 1.0
    activation_bytes: float = 2.0

    def __post_init__(self) -> None:
        if self.image_size % self.patch_size != 0:
            raise ValueError("image_size must be divisible by patch_size")
        if self.n_layers <= 0:
            raise ValueError("n_layers must be positive")
        self.layer_config()

    @property
    def num_patches(self) -> int:
        side = self.image_size // self.patch_size
        return side * side

    @property
    def num_tokens(self) -> int:
        """Patch tokens plus the [CLS] token."""
        return self.num_patches + 1

    def layer_config(self) -> TransformerLayerConfig:
        return TransformerLayerConfig(
            d_model=self.d_model,
            n_heads=self.n_heads,
            d_ffn=self.d_ffn,
            gated_ffn=False,
            weight_bytes=self.weight_bytes,
            activation_bytes=self.activation_bytes,
        )

    @property
    def parameter_count(self) -> int:
        patch_embed = 3 * self.patch_size * self.patch_size * self.d_model
        blocks = self.n_layers * self.layer_config().parameter_count
        head = self.d_model * self.output_dim if self.output_dim else 0
        return patch_embed + blocks + head

    @property
    def parameter_bytes(self) -> int:
        return int(round(self.parameter_count * self.weight_bytes))

    def encode_phase(self, images: int = 1) -> Phase:
        """Operators for encoding ``images`` images."""
        if images <= 0:
            raise ValueError("images must be positive")
        cfg = self.layer_config()
        tokens = self.num_tokens * images
        phase = Phase(name="vision_encoder")
        phase.add(self._patch_embed_op(tokens))
        for layer in range(self.n_layers):
            phase.extend(
                encoder_layer_ops(cfg, tokens, layer_index=layer, prefix=f"{self.name}.enc")
            )
        if self.output_dim:
            phase.add(
                matmul_op(
                    f"{self.name}.head",
                    tokens,
                    self.d_model,
                    self.output_dim,
                    weight_bytes_per_element=self.weight_bytes,
                    activation_bytes_per_element=self.activation_bytes,
                    tag="vision_head",
                )
            )
        return phase

    def _patch_embed_op(self, tokens: int) -> Op:
        patch_elements = 3 * self.patch_size * self.patch_size
        return matmul_op(
            f"{self.name}.patch_embed",
            tokens,
            patch_elements,
            self.d_model,
            weight_bytes_per_element=self.weight_bytes,
            activation_bytes_per_element=self.activation_bytes,
            tag="patch_embed",
        )


@dataclass(frozen=True)
class ConvNeXtEncoderConfig:
    """Simplified CLIP-ConvNeXt encoder (used by SPHINX-Tiny alongside ViT).

    The ConvNeXt trunk is modelled as four stages of depthwise 7x7 +
    pointwise convolutions; each stage is lowered to GEMM-equivalent
    operators using the im2col formulation, which is how the systolic
    array would execute them.
    """

    name: str
    depths: tuple = (3, 3, 9, 3)
    dims: tuple = (128, 256, 512, 1024)
    image_size: int = 224
    output_dim: int = 768
    weight_bytes: float = 1.0
    activation_bytes: float = 2.0

    def __post_init__(self) -> None:
        if len(self.depths) != len(self.dims):
            raise ValueError("depths and dims must have equal length")
        if self.image_size % 32 != 0:
            raise ValueError("image_size must be divisible by 32")

    @property
    def parameter_count(self) -> int:
        total = 3 * 4 * 4 * self.dims[0]  # stem
        for stage, (depth, dim) in enumerate(zip(self.depths, self.dims)):
            block = 7 * 7 * dim + dim * 4 * dim + 4 * dim * dim
            total += depth * block
            if stage + 1 < len(self.dims):
                total += 2 * 2 * dim * self.dims[stage + 1]
        total += self.dims[-1] * self.output_dim
        return total

    @property
    def parameter_bytes(self) -> int:
        return int(round(self.parameter_count * self.weight_bytes))

    def encode_phase(self, images: int = 1) -> Phase:
        if images <= 0:
            raise ValueError("images must be positive")
        phase = Phase(name="vision_encoder")
        resolution = self.image_size // 4
        common = dict(
            weight_bytes_per_element=self.weight_bytes,
            activation_bytes_per_element=self.activation_bytes,
            tag="conv",
        )
        phase.add(
            matmul_op(
                f"{self.name}.stem",
                images * resolution * resolution,
                3 * 4 * 4,
                self.dims[0],
                **common,
            )
        )
        for stage, (depth, dim) in enumerate(zip(self.depths, self.dims)):
            tokens = images * resolution * resolution
            for block in range(depth):
                prefix = f"{self.name}.s{stage}.b{block}"
                phase.add(
                    matmul_op(f"{prefix}.dwconv", tokens, 7 * 7, dim, **common)
                )
                phase.add(
                    matmul_op(f"{prefix}.pw1", tokens, dim, 4 * dim, **common)
                )
                phase.add(
                    elementwise_op(
                        f"{prefix}.gelu",
                        tokens * 4 * dim,
                        kind=OpKind.ACTIVATION,
                        bytes_per_element=self.activation_bytes,
                        flops_per_element=8.0,
                        tag="conv",
                    )
                )
                phase.add(
                    matmul_op(f"{prefix}.pw2", tokens, 4 * dim, dim, **common)
                )
            if stage + 1 < len(self.dims):
                resolution //= 2
                phase.add(
                    matmul_op(
                        f"{self.name}.down{stage}",
                        images * resolution * resolution,
                        2 * 2 * dim,
                        self.dims[stage + 1],
                        **common,
                    )
                )
        phase.add(
            matmul_op(
                f"{self.name}.head",
                images,
                self.dims[-1],
                self.output_dim,
                **common,
            )
        )
        return phase

    @property
    def num_tokens(self) -> int:
        final_resolution = self.image_size // 32
        return final_resolution * final_resolution


# ----------------------------------------------------------------------
# Catalogue
# ----------------------------------------------------------------------
_VISION_CATALOGUE: Dict[str, object] = {}


def _register(config) -> object:
    key = config.name.lower()
    if key in _VISION_CATALOGUE:
        raise ValueError(f"duplicate vision-encoder registration: {config.name}")
    _VISION_CATALOGUE[key] = config
    return config


CLIP_VIT_L14 = _register(
    VisionEncoderConfig(
        name="clip-vit-l14",
        n_layers=24,
        d_model=1024,
        n_heads=16,
        d_ffn=4096,
        image_size=224,
        patch_size=14,
        output_dim=768,
    )
)

SIGLIP_SO400M = _register(
    VisionEncoderConfig(
        name="siglip-so400m",
        n_layers=27,
        d_model=1152,
        n_heads=16,
        d_ffn=4304,
        image_size=224,
        patch_size=14,
        output_dim=1152,
    )
)

SIGLIP_L = _register(
    VisionEncoderConfig(
        name="siglip-l",
        n_layers=24,
        d_model=1024,
        n_heads=16,
        d_ffn=4096,
        image_size=224,
        patch_size=16,
        output_dim=1024,
    )
)

DINOV2_L = _register(
    VisionEncoderConfig(
        name="dinov2-l",
        n_layers=24,
        d_model=1024,
        n_heads=16,
        d_ffn=4096,
        image_size=224,
        patch_size=14,
    )
)

EVA_CLIP_G = _register(
    VisionEncoderConfig(
        name="eva-clip-g",
        n_layers=40,
        d_model=1408,
        n_heads=16,
        d_ffn=6144,
        image_size=224,
        patch_size=14,
        output_dim=1024,
    )
)

CLIP_CONVNEXT = _register(
    ConvNeXtEncoderConfig(name="clip-convnext-b")
)


def available_vision_encoders() -> List[str]:
    return sorted(_VISION_CATALOGUE)


def get_vision_encoder(name: str):
    key = name.lower()
    if key not in _VISION_CATALOGUE:
        raise KeyError(
            f"unknown vision encoder {name!r}; available: "
            f"{', '.join(available_vision_encoders())}"
        )
    return _VISION_CATALOGUE[key]
