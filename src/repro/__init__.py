"""EdgeMM reproduction: multi-core CPU with heterogeneous AI extensions.

The package reproduces the system described in "EdgeMM: Multi-Core CPU with
Heterogeneous AI-Extension and Activation-aware Weight Pruning for
Multimodal LLMs at Edge" (DAC 2025):

* :mod:`repro.core` — the EdgeMM system model (simulator, pipeline, driver),
* :mod:`repro.arch` — hardware blocks (systolic array, CIM macro, DMA, DRAM),
* :mod:`repro.isa` — the RISC-V AI-extension ISA and functional executor,
* :mod:`repro.models` — the MLLM workload substrate (Table I catalogue),
* :mod:`repro.pruning` — activation-aware dynamic Top-k pruning (Alg. 1),
* :mod:`repro.scheduling` — bandwidth management and batch decoding,
* :mod:`repro.serving` — traffic-scale serving: arrivals, continuous
  batching, latency percentiles, multi-chip fleets,
* :mod:`repro.scenarios` — declarative serving scenarios (mixes, arrivals,
  fleets, SLOs) with golden-locked reports,
* :mod:`repro.planner` — SLO-aware capacity planning over the batched
  design grid (analytic pruning + exact simulation + Pareto frontiers),
* :mod:`repro.baselines` — GPU, Snitch and homogeneous-chip baselines,
* :mod:`repro.experiments` — one module per paper table/figure, plus the
  parallel experiment engine.
"""

from .core import EdgeMM, PerformanceSimulator, SystemConfig, WorkloadResult
from .models import InferenceRequest, get_mllm

__version__ = "0.1.0"

__all__ = [
    "EdgeMM",
    "PerformanceSimulator",
    "SystemConfig",
    "WorkloadResult",
    "InferenceRequest",
    "get_mllm",
    "__version__",
]
