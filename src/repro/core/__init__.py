"""EdgeMM core: system configuration, performance simulator and driver."""

from .config import (
    PrecisionConfig,
    PruningRuntimeConfig,
    SystemConfig,
    default_system,
    homo_cc_system,
    homo_mc_system,
    scaled_system,
)
from .metrics import PhaseResult, WorkloadResult, geometric_mean_speedup
from .simulator import CacheInfo, OpExecution, PerformanceSimulator, PoolCostParams
from .batch import (
    BatchCostEngine,
    BatchWorkloadResult,
    DesignGrid,
    OpTable,
    batch_run_request,
    compile_workload,
)
from .mapping import MappingChoice, MappingDecision, MappingExplorer
from .pipeline import PipelineModel, PipelinePoint
from .edgemm import EdgeMM, PruningCalibration

__all__ = [
    "PrecisionConfig",
    "PruningRuntimeConfig",
    "SystemConfig",
    "default_system",
    "homo_cc_system",
    "homo_mc_system",
    "scaled_system",
    "PhaseResult",
    "WorkloadResult",
    "geometric_mean_speedup",
    "CacheInfo",
    "OpExecution",
    "PerformanceSimulator",
    "PoolCostParams",
    "BatchCostEngine",
    "BatchWorkloadResult",
    "DesignGrid",
    "OpTable",
    "batch_run_request",
    "compile_workload",
    "MappingChoice",
    "MappingDecision",
    "MappingExplorer",
    "PipelineModel",
    "PipelinePoint",
    "EdgeMM",
    "PruningCalibration",
]
