"""Latency, throughput and energy accounting for simulation results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class PhaseResult:
    """Performance result of executing one phase on one hardware model.

    ``compute_cycles`` and ``memory_cycles`` are the two roofline legs; the
    phase latency is determined per-operator by whichever leg dominates, so
    ``cycles <= compute_cycles + memory_cycles`` and
    ``cycles >= max(compute_cycles, memory_cycles)`` need not hold exactly
    when operators alternate between compute- and memory-bound behaviour.
    """

    name: str
    cycles: float
    compute_cycles: float
    memory_cycles: float
    latency_s: float
    dram_bytes: int
    flops: int
    op_count: int
    cluster_kind: str

    @property
    def bound(self) -> str:
        """Which resource dominated: ``"compute"`` or ``"memory"``."""
        return "compute" if self.compute_cycles >= self.memory_cycles else "memory"

    @property
    def achieved_flops_per_s(self) -> float:
        if self.latency_s == 0:
            return 0.0
        return self.flops / self.latency_s

    @property
    def achieved_bandwidth_bytes_per_s(self) -> float:
        if self.latency_s == 0:
            return 0.0
        return self.dram_bytes / self.latency_s


@dataclass(frozen=True)
class WorkloadResult:
    """Performance result of a full MLLM inference request."""

    workload_name: str
    hardware_name: str
    phases: Dict[str, PhaseResult]
    output_tokens: int
    power_w: Optional[float] = None

    @property
    def total_latency_s(self) -> float:
        return sum(result.latency_s for result in self.phases.values())

    @property
    def total_cycles(self) -> float:
        return sum(result.cycles for result in self.phases.values())

    @property
    def total_dram_bytes(self) -> int:
        return sum(result.dram_bytes for result in self.phases.values())

    @property
    def total_flops(self) -> int:
        return sum(result.flops for result in self.phases.values())

    def phase(self, name: str) -> PhaseResult:
        if name not in self.phases:
            raise KeyError(
                f"no phase {name!r}; available: {', '.join(self.phases)}"
            )
        return self.phases[name]

    @property
    def decode_latency_s(self) -> float:
        return self.phases.get("llm_decode", _ZERO_PHASE).latency_s

    @property
    def prefill_latency_s(self) -> float:
        return self.phases.get("llm_prefill", _ZERO_PHASE).latency_s

    @property
    def encode_latency_s(self) -> float:
        encode = self.phases.get("vision_encoder", _ZERO_PHASE).latency_s
        projector = self.phases.get("projector", _ZERO_PHASE).latency_s
        return encode + projector

    @property
    def tokens_per_second(self) -> float:
        """End-to-end generation throughput of a single request."""
        if self.total_latency_s == 0:
            return 0.0
        return self.output_tokens / self.total_latency_s

    @property
    def decode_tokens_per_second(self) -> float:
        """Decode-only throughput (tokens per second of decode time)."""
        decode = self.decode_latency_s
        if decode == 0:
            return 0.0
        return self.output_tokens / decode

    @property
    def time_per_output_token_s(self) -> float:
        if self.output_tokens == 0:
            return 0.0
        return self.total_latency_s / self.output_tokens

    @property
    def energy_j(self) -> Optional[float]:
        if self.power_w is None:
            return None
        return self.power_w * self.total_latency_s

    @property
    def tokens_per_joule(self) -> Optional[float]:
        energy = self.energy_j
        if energy is None or energy == 0:
            return None
        return self.output_tokens / energy

    def speedup_over(self, other: "WorkloadResult") -> float:
        """Latency speedup of this result relative to another."""
        if self.total_latency_s == 0:
            raise ZeroDivisionError("cannot compute speedup of a zero-latency result")
        return other.total_latency_s / self.total_latency_s


_ZERO_PHASE = PhaseResult(
    name="missing",
    cycles=0.0,
    compute_cycles=0.0,
    memory_cycles=0.0,
    latency_s=0.0,
    dram_bytes=0,
    flops=0,
    op_count=0,
    cluster_kind="none",
)


def geometric_mean_speedup(speedups: Dict[str, float]) -> float:
    """Geometric mean across a dict of per-workload speedups."""
    if not speedups:
        raise ValueError("speedups must not be empty")
    product = 1.0
    for value in speedups.values():
        if value <= 0:
            raise ValueError("speedups must be positive")
        product *= value
    return product ** (1.0 / len(speedups))
