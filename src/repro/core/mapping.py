"""Mapping explorer: tensor partitioning of operators across clusters.

The paper's in-house simulator includes a "dedicated mapping explorer".
Ours searches, per operator, over

* the execution pool (CC vs MC clusters, when both can run the kind),
* the number of clusters the output dimension is partitioned across,
* (for GEMM) the token-block size streamed per weight tile residency,

and returns the lowest-latency mapping under the roofline model used by the
performance simulator.  It is used by the scheduler when deciding whether an
odd-shaped operator is worth spreading across the whole pool or is better
kept on a subset of clusters (small operators lose more to per-transfer
overhead than they gain from extra compute).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..models.ops import Op, OpKind
from .simulator import PerformanceSimulator


@dataclass(frozen=True)
class MappingChoice:
    """One candidate mapping of an operator."""

    pool: str
    n_clusters: int
    compute_cycles: float
    memory_cycles: float

    @property
    def cycles(self) -> float:
        return max(self.compute_cycles, self.memory_cycles)


@dataclass(frozen=True)
class MappingDecision:
    """The chosen mapping plus the candidates that were evaluated."""

    op_name: str
    best: MappingChoice
    candidates: Tuple[MappingChoice, ...]

    @property
    def cycles(self) -> float:
        return self.best.cycles


class MappingExplorer:
    """Searches cluster-count and pool choices per operator."""

    def __init__(self, simulator: PerformanceSimulator) -> None:
        self.simulator = simulator

    def _candidate_pools(self, op: Op) -> List[str]:
        pools = []
        if self.simulator.has_cc:
            pools.append("cc")
        if self.simulator.has_mc:
            pools.append("mc")
        if not pools:
            raise RuntimeError("chip has no clusters")
        if op.kind is OpKind.OTHER:
            # Pure data movement: pool choice is irrelevant; keep the default.
            return [self.simulator.pool_for(op)]
        return pools

    def _candidate_cluster_counts(self, pool: str) -> List[int]:
        total = (
            self.simulator.chip.n_cc_clusters
            if pool == "cc"
            else self.simulator.chip.n_mc_clusters
        )
        counts = []
        count = 1
        while count < total:
            counts.append(count)
            count *= 2
        counts.append(total)
        return counts

    def explore_op(
        self, op: Op, *, bandwidth_fraction: float = 1.0
    ) -> MappingDecision:
        """Evaluate all candidate mappings of one operator."""
        candidates: List[MappingChoice] = []
        for pool in self._candidate_pools(op):
            total_clusters = (
                self.simulator.chip.n_cc_clusters
                if pool == "cc"
                else self.simulator.chip.n_mc_clusters
            )
            for n_clusters in self._candidate_cluster_counts(pool):
                compute = self._compute_with_clusters(op, pool, n_clusters)
                traffic = self.simulator._op_traffic_bytes(op, 1.0)
                memory = self.simulator.memory_cycles(traffic, pool, bandwidth_fraction)
                candidates.append(
                    MappingChoice(
                        pool=pool,
                        n_clusters=min(n_clusters, total_clusters),
                        compute_cycles=compute,
                        memory_cycles=memory,
                    )
                )
        best = min(candidates, key=lambda choice: (choice.cycles, choice.n_clusters))
        return MappingDecision(op_name=op.name, best=best, candidates=tuple(candidates))

    def _compute_with_clusters(self, op: Op, pool: str, n_clusters: int) -> float:
        chip = self.simulator.chip
        cluster = chip.cc_cluster if pool == "cc" else chip.mc_cluster
        if op.kind in (OpKind.GEMM, OpKind.CONV, OpKind.ATTENTION):
            n_share = max(math.ceil(op.n / n_clusters), 1)
            return cluster.gemm_cycles(op.m, op.k, n_share)
        if op.kind in (OpKind.GEMV, OpKind.EMBEDDING):
            n_share = max(math.ceil(op.n / n_clusters), 1)
            return cluster.gemv_cycles(op.k, n_share)
        if op.kind in (OpKind.ELEMENTWISE, OpKind.SOFTMAX, OpKind.NORM, OpKind.ACTIVATION):
            elements = max(math.ceil(op.m / n_clusters), 1)
            flops_per_element = op.flops / op.m if op.m else 1.0
            return cluster.elementwise_cycles(elements, max(flops_per_element, 1.0))
        return 0.0

    def explore_ops(
        self, ops: Sequence[Op], *, bandwidth_fraction: float = 1.0
    ) -> List[MappingDecision]:
        """Explore a list of operators (e.g. one layer's ops)."""
        return [
            self.explore_op(op, bandwidth_fraction=bandwidth_fraction) for op in ops
        ]

    def total_cycles(
        self, ops: Sequence[Op], *, bandwidth_fraction: float = 1.0
    ) -> float:
        """Best-mapping cycles summed over a list of operators."""
        return sum(
            decision.cycles
            for decision in self.explore_ops(ops, bandwidth_fraction=bandwidth_fraction)
        )
