"""Phase-level performance simulator of the EdgeMM chip.

The simulator plays the role of the paper's in-house simulator: it executes
an operator-level workload against the architecture model and reports per-
phase latency, traffic and energy.  For every operator it computes

* **compute cycles** from the coprocessor cycle models (systolic array
  Eq. 2, CIM macro Eq. 3, or the Snitch SIMD datapath for baselines), with
  the work tensor-partitioned across the clusters of the assigned pool;
* **memory cycles** from the DRAM model: payload bytes divided by the
  bandwidth share granted to the pool, plus per-transfer overhead governed
  by the cluster's on-chip data memory (the effective-bandwidth behaviour
  of Fig. 6(b));

and takes the maximum of the two legs (compute/DMA double buffering), then
sums over the operators of the phase.  GEMM-like operators are routed to
CC-clusters and GEMV-like operators to MC-clusters when both are available
("auto" policy); homogeneous variants simply lack one of the pools.

Two layers of memoization keep traffic-scale simulation fast:

* per-op cycle results are cached by the cost-relevant signature
  ``(kind, m, k, n, traffic bytes, flops, prunable, pool, bandwidth,
  keep_fraction)`` — decoder layers share shapes, so a 22-layer decode
  phase resolves to a handful of cache entries;
* whole-request :class:`WorkloadResult` objects are cached by
  ``(model, request)``, so a serving simulation replaying thousands of
  identical requests pays for the first one only.

Both caches belong to the simulator instance; :meth:`clear_cache` resets
them (required after mutating ``self.system`` or chip state in place).

All cycle arithmetic routes through the shared array-aware kernels of
:mod:`repro.costs` (via :class:`PoolCostParams`), the same kernels the
batched engine in :mod:`repro.core.batch` broadcasts over whole design
grids — which is what makes batched sweeps bit-identical to this scalar
path.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from .. import costs
from ..arch.area_power import AreaPowerModel, TechnologyConfig
from ..arch.chip import Chip, ChipConfig
from ..models.mllm import InferenceRequest, MLLMConfig
from ..models.ops import Op, OpKind, Phase, Workload
from .config import SystemConfig, default_system
from .metrics import PhaseResult, WorkloadResult


@dataclass(frozen=True)
class PoolCostParams:
    """Scalar cost-model parameters of one execution pool ('cc' or 'mc').

    The flattened view of the cluster/core/coprocessor object model that
    the shared :mod:`repro.costs` kernels consume.  The scalar simulator
    extracts one per pool; :class:`~repro.core.batch.DesignGrid` stacks one
    per design point into columns.
    """

    pool: str
    n_clusters: int
    n_cores: int
    dispatch_cycles: int
    #: Systolic geometry (CC pools) — zero for MC pools.
    sa_rows: int
    sa_cols: int
    #: CIM geometry (MC pools) — zero for CC pools.
    cim_subarrays: int
    cim_columns: int
    cim_activation_bits: int
    #: Vector-unit width used for elementwise work.
    lanes: int
    #: Double-buffered DMA staging space (the Fig. 6(b) lever).
    buffer_bytes: int

    @classmethod
    def from_chip_config(cls, config: ChipConfig, pool: str) -> "PoolCostParams":
        if pool == "cc":
            cluster = config.group.cc_cluster
            systolic = cluster.core.systolic
            return cls(
                pool="cc",
                n_clusters=config.n_cc_clusters,
                n_cores=cluster.n_cores,
                dispatch_cycles=cluster.core.dispatch_overhead_cycles,
                sa_rows=systolic.rows,
                sa_cols=systolic.cols,
                cim_subarrays=0,
                cim_columns=0,
                cim_activation_bits=0,
                lanes=systolic.cols,
                buffer_bytes=cluster.data_memory_bytes,
            )
        if pool == "mc":
            cluster = config.group.mc_cluster
            cim = cluster.core.cim
            return cls(
                pool="mc",
                n_clusters=config.n_mc_clusters,
                n_cores=cluster.n_cores,
                dispatch_cycles=cluster.core.dispatch_overhead_cycles,
                sa_rows=0,
                sa_cols=0,
                cim_subarrays=cim.subarrays_per_column,
                cim_columns=cim.columns,
                cim_activation_bits=cim.activation_bits,
                lanes=cim.columns,
                buffer_bytes=cluster.data_memory_bytes,
            )
        raise ValueError("pool must be 'cc' or 'mc'")

    def compute_cycles(self, op: Op, n_clusters: int) -> float:
        """Coprocessor cycles for one operator partitioned over ``n_clusters``.

        Dispatches the operator's kind to the shared :mod:`repro.costs`
        kernel of this pool's coprocessor — the same arithmetic the batch
        engine broadcasts over whole design grids.
        """
        if op.kind in (OpKind.GEMM, OpKind.CONV, OpKind.ATTENTION):
            n_share = costs.partitioned_share(op.n, n_clusters)
            if self.pool == "cc":
                return float(
                    costs.systolic_gemm_cycles(
                        op.m,
                        op.k,
                        n_share,
                        rows=self.sa_rows,
                        cols=self.sa_cols,
                        n_cores=self.n_cores,
                        dispatch_cycles=self.dispatch_cycles,
                    )
                )
            return float(
                costs.cim_gemm_cycles(
                    op.m,
                    op.k,
                    n_share,
                    subarrays=self.cim_subarrays,
                    columns=self.cim_columns,
                    activation_bits=self.cim_activation_bits,
                    n_cores=self.n_cores,
                    dispatch_cycles=self.dispatch_cycles,
                )
            )
        if op.kind in (OpKind.GEMV, OpKind.EMBEDDING):
            n_share = costs.partitioned_share(op.n, n_clusters)
            if self.pool == "cc":
                return float(
                    costs.systolic_gemm_cycles(
                        1,
                        op.k,
                        n_share,
                        rows=self.sa_rows,
                        cols=self.sa_cols,
                        n_cores=self.n_cores,
                        dispatch_cycles=self.dispatch_cycles,
                    )
                )
            return float(
                costs.cim_gemv_cycles(
                    op.k,
                    n_share,
                    subarrays=self.cim_subarrays,
                    columns=self.cim_columns,
                    activation_bits=self.cim_activation_bits,
                    n_cores=self.n_cores,
                    dispatch_cycles=self.dispatch_cycles,
                )
            )
        if op.kind in (OpKind.ELEMENTWISE, OpKind.SOFTMAX, OpKind.NORM, OpKind.ACTIVATION):
            elements = costs.partitioned_share(op.m, n_clusters)
            flops_per_element = op.flops / op.m if op.m else 1.0
            return float(
                costs.elementwise_cycles(
                    elements,
                    max(flops_per_element, 1.0),
                    n_cores=self.n_cores,
                    lanes=self.lanes,
                )
            )
        # OpKind.OTHER: pure data movement (KV-cache reads/writes).
        return 0.0


@dataclass(frozen=True)
class OpExecution:
    """Execution record of one operator."""

    op_name: str
    pool: str
    compute_cycles: float
    memory_cycles: float
    dram_bytes: int

    @property
    def cycles(self) -> float:
        return max(self.compute_cycles, self.memory_cycles)


@dataclass(frozen=True)
class CacheInfo:
    """Hit/miss counters of the simulator's memoization layers."""

    op_hits: int
    op_misses: int
    request_hits: int
    request_misses: int

    @property
    def op_hit_rate(self) -> float:
        total = self.op_hits + self.op_misses
        return self.op_hits / total if total else 0.0


class PerformanceSimulator:
    """Executes operator workloads on an EdgeMM (or variant) chip model."""

    def __init__(
        self,
        system: Optional[SystemConfig] = None,
        *,
        technology: Optional[TechnologyConfig] = None,
        enable_cache: bool = True,
    ) -> None:
        self.system = system or default_system()
        self._technology_config = technology
        self._refresh_cost_params()
        self.enable_cache = enable_cache
        self._op_cache: Dict[tuple, Tuple[float, float, int]] = {}
        self._request_cache: Dict[tuple, WorkloadResult] = {}
        self._op_hits = 0
        self._op_misses = 0
        self._request_hits = 0
        self._request_misses = 0

    # ------------------------------------------------------------------
    # Memoization
    # ------------------------------------------------------------------
    def _refresh_cost_params(self) -> None:
        """Rebuild the chip model and flattened cost parameters from the system.

        Everything cost-relevant derives from ``self.system`` here — the
        chip object, the area/power model and the kernel parameters — so a
        caller that replaces ``self.system`` and calls :meth:`clear_cache`
        gets a coherent simulator, never a mix of old and new configs.
        """
        self.chip = Chip(self.system.chip)
        self.area_power = AreaPowerModel(self.system.chip, self._technology_config)
        self._technology = self.area_power.technology
        self._pool_params = {
            pool: PoolCostParams.from_chip_config(self.system.chip, pool)
            for pool in ("cc", "mc")
        }
        self._dram_bytes_per_cycle = self.chip.dram_bytes_per_cycle()
        self._request_overhead_cycles = self.chip.dram.config.request_overhead_cycles
        self._request_latency_cycles = self.chip.interconnect.request_latency_cycles()

    def clear_cache(self) -> None:
        """Drop all memoized results (call after mutating the system)."""
        self._op_cache.clear()
        self._request_cache.clear()
        self._op_hits = self._op_misses = 0
        self._request_hits = self._request_misses = 0
        self._refresh_cost_params()

    def cache_info(self) -> CacheInfo:
        """Hit/miss counters for the op- and request-level caches."""
        return CacheInfo(
            op_hits=self._op_hits,
            op_misses=self._op_misses,
            request_hits=self._request_hits,
            request_misses=self._request_misses,
        )

    # ------------------------------------------------------------------
    # Pool selection
    # ------------------------------------------------------------------
    @property
    def has_cc(self) -> bool:
        return self.chip.n_cc_clusters > 0

    @property
    def has_mc(self) -> bool:
        return self.chip.n_mc_clusters > 0

    def pool_for(self, op: Op) -> str:
        """Choose the execution pool ('cc' or 'mc') for an operator."""
        if not self.has_cc and not self.has_mc:
            raise RuntimeError("chip has no clusters")
        prefers_mc = op.kind in (OpKind.GEMV, OpKind.EMBEDDING)
        if prefers_mc:
            return "mc" if self.has_mc else "cc"
        return "cc" if self.has_cc else "mc"

    def _pool_cluster_count(self, pool: str) -> int:
        return self.chip.n_cc_clusters if pool == "cc" else self.chip.n_mc_clusters

    # ------------------------------------------------------------------
    # Operator execution
    # ------------------------------------------------------------------
    def _compute_cycles(self, op: Op, pool: str, n_clusters: int) -> float:
        """Coprocessor cycles with the work partitioned across clusters."""
        return self._pool_params[pool].compute_cycles(op, n_clusters)

    def effective_keep_fraction(self, keep_fraction: Optional[float] = None) -> float:
        """Resolve an explicit keep fraction against the pruning config.

        ``None`` means "use the system default": the calibrated average keep
        fraction when pruning is enabled, otherwise 1.0.  Every layer that
        prices pruned weight traffic (operator execution, the pipeline
        model, the serving cost model) resolves through this one helper.
        """
        if keep_fraction is not None:
            return keep_fraction
        if self.system.pruning.enabled:
            return self.system.pruning.average_keep_fraction
        return 1.0

    def _op_traffic_bytes(self, op: Op, keep_fraction: float) -> int:
        return (
            op.pruned_weight_bytes(keep_fraction)
            + op.activation_bytes
            + op.output_bytes
        )

    def memory_cycles(
        self, traffic_bytes: int, pool: str, bandwidth_fraction: float
    ) -> float:
        """DRAM cycles to move ``traffic_bytes`` with a pool's bandwidth share.

        Public cost primitive: the pipeline model, the mapping explorer and
        the serving layer price custom traffic patterns (e.g. batch-shared
        weight reads) with it.
        """
        if traffic_bytes <= 0:
            return 0.0
        if bandwidth_fraction <= 0:
            raise ValueError("bandwidth_fraction must be positive")
        return float(
            costs.memory_cycles(
                traffic_bytes,
                buffer_bytes=self._pool_params[pool].buffer_bytes,
                dram_bytes_per_cycle=self._dram_bytes_per_cycle,
                bandwidth_fraction=bandwidth_fraction,
                request_overhead_cycles=self._request_overhead_cycles,
                request_latency_cycles=self._request_latency_cycles,
            )
        )

    def execute_op(
        self,
        op: Op,
        *,
        pool: Optional[str] = None,
        bandwidth_fraction: float = 1.0,
        keep_fraction: Optional[float] = None,
    ) -> OpExecution:
        """Execute one operator and return its cycle accounting."""
        pool = pool or self.pool_for(op)
        if pool not in ("cc", "mc"):
            raise ValueError("pool must be 'cc' or 'mc'")
        n_clusters = self._pool_cluster_count(pool)
        if n_clusters == 0:
            raise ValueError(f"chip {self.system.name!r} has no {pool.upper()} clusters")
        keep_fraction = self.effective_keep_fraction(keep_fraction)
        key = None
        if self.enable_cache:
            # Only the cost-relevant signature: ops with the same shape,
            # traffic and routing (e.g. every decoder layer's FFN GEMV)
            # share one entry regardless of name or layer index.
            key = (
                op.kind,
                op.m,
                op.k,
                op.n,
                op.weight_bytes,
                op.activation_bytes,
                op.output_bytes,
                op.flops,
                op.prunable,
                pool,
                bandwidth_fraction,
                keep_fraction,
            )
            cached = self._op_cache.get(key)
            if cached is not None:
                self._op_hits += 1
                compute, memory, traffic = cached
                return OpExecution(
                    op_name=op.name,
                    pool=pool,
                    compute_cycles=compute,
                    memory_cycles=memory,
                    dram_bytes=traffic,
                )
            self._op_misses += 1
        traffic = self._op_traffic_bytes(op, keep_fraction)
        compute = self._compute_cycles(op, pool, n_clusters)
        if op.prunable and keep_fraction < 1.0 and op.kind is OpKind.GEMV:
            # Pruning also removes the matching MACs (smaller reduction dim).
            compute *= keep_fraction
        memory = self.memory_cycles(traffic, pool, bandwidth_fraction)
        if key is not None:
            self._op_cache[key] = (compute, memory, traffic)
        return OpExecution(
            op_name=op.name,
            pool=pool,
            compute_cycles=compute,
            memory_cycles=memory,
            dram_bytes=traffic,
        )

    # ------------------------------------------------------------------
    # Phase / workload execution
    # ------------------------------------------------------------------
    def execute_phase(
        self,
        phase: Phase,
        *,
        pool: Optional[str] = None,
        bandwidth_fraction: float = 1.0,
        keep_fraction: Optional[float] = None,
    ) -> PhaseResult:
        """Execute one phase; operators run back-to-back with DMA overlap."""
        total_compute = 0.0
        total_memory = 0.0
        total_cycles = 0.0
        total_bytes = 0
        total_flops = 0
        pool_votes: Dict[str, float] = {"cc": 0.0, "mc": 0.0}
        for op in phase.ops:
            execution = self.execute_op(
                op,
                pool=pool,
                bandwidth_fraction=bandwidth_fraction,
                keep_fraction=keep_fraction,
            )
            total_compute += execution.compute_cycles
            total_memory += execution.memory_cycles
            total_cycles += execution.cycles
            total_bytes += execution.dram_bytes
            total_flops += op.flops
            pool_votes[execution.pool] += execution.cycles
        repeat = phase.repeat
        total_compute *= repeat
        total_memory *= repeat
        total_cycles *= repeat
        total_bytes *= repeat
        total_flops *= repeat
        dominant_pool = max(pool_votes, key=pool_votes.get) if total_cycles else (pool or "cc")
        return PhaseResult(
            name=phase.name,
            cycles=total_cycles,
            compute_cycles=total_compute,
            memory_cycles=total_memory,
            latency_s=self.chip.cycles_to_seconds(total_cycles),
            dram_bytes=int(total_bytes),
            flops=int(total_flops),
            op_count=repeat * len(phase.ops),
            cluster_kind=dominant_pool,
        )

    def execute_workload(
        self,
        workload: Workload,
        *,
        output_tokens: Optional[int] = None,
        bandwidth_fraction: float = 1.0,
    ) -> WorkloadResult:
        """Execute all phases of a workload sequentially."""
        phase_results: Dict[str, PhaseResult] = {}
        for phase in workload.phases:
            phase_results[phase.name] = self.execute_phase(
                phase, bandwidth_fraction=bandwidth_fraction
            )
        if output_tokens is None:
            decode = next(
                (p for p in workload.phases if p.name == "llm_decode"), None
            )
            output_tokens = decode.repeat if decode is not None else 1
        return WorkloadResult(
            workload_name=workload.name,
            hardware_name=self.system.name,
            phases=phase_results,
            output_tokens=output_tokens,
            power_w=self.average_power_w(phase_results),
        )

    def run_request(self, model: MLLMConfig, request: InferenceRequest) -> WorkloadResult:
        """Build the workload for an inference request and execute it.

        Results are memoized by the ``(model, request)`` pair — both are
        frozen, hashable dataclasses, so two models agreeing only on name
        never alias.  Cache hits return a shallow copy, so mutating a
        returned result's ``phases`` dict cannot poison later hits.
        """
        if not self.enable_cache:
            workload = model.build_workload(request)
            return self.execute_workload(workload, output_tokens=request.output_tokens)
        key = (model, request)
        cached = self._request_cache.get(key)
        if cached is not None:
            self._request_hits += 1
            return replace(cached, phases=dict(cached.phases))
        self._request_misses += 1
        workload = model.build_workload(request)
        result = self.execute_workload(workload, output_tokens=request.output_tokens)
        self._request_cache[key] = replace(result, phases=dict(result.phases))
        return result

    # ------------------------------------------------------------------
    # Energy
    # ------------------------------------------------------------------
    def average_power_w(self, phase_results: Dict[str, PhaseResult]) -> float:
        """Average chip + DRAM power over the executed phases."""
        total_cycles = sum(result.cycles for result in phase_results.values())
        if total_cycles == 0:
            return self.area_power.power_report(0.0).total_mw / 1e3
        total_compute = sum(result.compute_cycles for result in phase_results.values())
        utilization = min(total_compute / total_cycles, 1.0)
        chip_power_w = self.area_power.power_report(utilization).total_mw / 1e3
        total_bytes = sum(result.dram_bytes for result in phase_results.values())
        total_seconds = self.chip.cycles_to_seconds(total_cycles)
        if total_seconds == 0:
            return chip_power_w
        dram_energy_j = (
            total_bytes * self._technology.dram_access_energy_pj_per_byte * 1e-12
        )
        return chip_power_w + dram_energy_j / total_seconds
