"""Top-level EdgeMM system: the user-facing entry point of the library.

:class:`EdgeMM` bundles the chip model, the performance simulator, the
pruning pipeline and the metrics into one object:

    >>> from repro.core import EdgeMM
    >>> from repro.models import get_mllm, InferenceRequest
    >>> system = EdgeMM.default()
    >>> result = system.run(get_mllm("sphinx-tiny"),
    ...                      InferenceRequest(images=1, prompt_text_tokens=32,
    ...                                       output_tokens=64))
    >>> result.tokens_per_second  # doctest: +SKIP

Variants (homogeneous CC / MC chips) and the pruning-enabled configuration
are exposed as alternative constructors so the evaluation scripts read like
the paper's experiment descriptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..arch.area_power import AreaPowerModel
from ..models.activations import ActivationTraceGenerator, sphinx_tiny_trace
from ..models.mllm import InferenceRequest, MLLMConfig
from ..models.ops import Phase, Workload
from ..pruning.topk import DynamicTopKConfig, prune_token
from .config import (
    SystemConfig,
    default_system,
    homo_cc_system,
    homo_mc_system,
)
from .metrics import PhaseResult, WorkloadResult
from .pipeline import PipelineModel
from .simulator import PerformanceSimulator


@dataclass(frozen=True)
class PruningCalibration:
    """Result of calibrating Algorithm 1 on an activation trace."""

    average_keep_fraction: float
    mean_pruning_ratio: float
    mean_cosine_similarity: float
    per_layer_keep_fraction: tuple


class EdgeMM:
    """The EdgeMM system: chip model + simulator + pruning + metrics."""

    def __init__(self, system: Optional[SystemConfig] = None) -> None:
        self.system = system or default_system()
        self.simulator = PerformanceSimulator(self.system)
        self.area_power = self.simulator.area_power

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def default(cls) -> "EdgeMM":
        """The paper's default heterogeneous configuration (Fig. 10)."""
        return cls(default_system())

    @classmethod
    def homo_cc(cls) -> "EdgeMM":
        """Homogeneous compute-centric variant (Fig. 11 comparison)."""
        return cls(homo_cc_system())

    @classmethod
    def homo_mc(cls) -> "EdgeMM":
        """Homogeneous memory-centric variant (Fig. 11 comparison)."""
        return cls(homo_mc_system())

    @classmethod
    def with_pruning(
        cls,
        average_keep_fraction: float,
        *,
        base: Optional[SystemConfig] = None,
    ) -> "EdgeMM":
        """EdgeMM with activation-aware pruning at a given keep fraction."""
        base = base or default_system()
        return cls(base.with_pruning(average_keep_fraction))

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def run(self, model: MLLMConfig, request: InferenceRequest) -> WorkloadResult:
        """Run one MLLM inference request and return its performance."""
        return self.simulator.run_request(model, request)

    def run_workload(self, workload: Workload) -> WorkloadResult:
        """Run an already-lowered workload."""
        return self.simulator.execute_workload(workload)

    def run_phase(self, phase: Phase, **kwargs) -> PhaseResult:
        """Run a single phase (used by the per-phase comparisons of Fig. 11)."""
        return self.simulator.execute_phase(phase, **kwargs)

    def pipeline(self, model: MLLMConfig, **kwargs) -> PipelineModel:
        """A streaming-pipeline model for this system and MLLM."""
        return PipelineModel(self.simulator, model, **kwargs)

    # ------------------------------------------------------------------
    # Pruning calibration
    # ------------------------------------------------------------------
    def calibrate_pruning(
        self,
        trace: Optional[ActivationTraceGenerator] = None,
        *,
        n_tokens: int = 8,
        config: Optional[DynamicTopKConfig] = None,
    ) -> PruningCalibration:
        """Run Algorithm 1 on an activation trace to obtain keep fractions.

        The calibration averages the per-layer keep fractions over
        ``n_tokens`` decode steps; the resulting average keep fraction can be
        fed to :meth:`with_pruning` (or :meth:`enable_pruning`) so the
        performance simulator reflects the measured traffic reduction.
        """
        trace = trace or sphinx_tiny_trace()
        if n_tokens <= 0:
            raise ValueError("n_tokens must be positive")
        keep_matrix = []
        ratios = []
        similarities = []
        for token_index in range(n_tokens):
            activations = trace.token_trace(token_index)
            report = prune_token(activations, config=config)
            keep_matrix.append(
                [decision.kept / decision.total_channels for decision in report.decisions]
            )
            ratios.append(report.mean_pruning_ratio)
            if report.cosine_similarities:
                similarities.append(report.mean_cosine_similarity)
        keep_array = np.asarray(keep_matrix)
        per_layer = tuple(float(value) for value in keep_array.mean(axis=0))
        return PruningCalibration(
            average_keep_fraction=float(keep_array.mean()),
            mean_pruning_ratio=float(np.mean(ratios)),
            mean_cosine_similarity=float(np.mean(similarities)) if similarities else 1.0,
            per_layer_keep_fraction=per_layer,
        )

    def enable_pruning(self, calibration: PruningCalibration) -> "EdgeMM":
        """A new EdgeMM instance with pruning enabled at the calibrated level."""
        return EdgeMM(self.system.with_pruning(calibration.average_keep_fraction))

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """Configuration summary (Fig. 10 style)."""
        summary = self.simulator.chip.describe()
        area = self.area_power.area_report()
        power = self.area_power.power_report(utilization=0.6)
        summary.update(
            {
                "system": self.system.name,
                "pruning_enabled": self.system.pruning.enabled,
                "chip_area_mm2": area.chip_mm2,
                "sa_fraction_of_cc_core": area.sa_fraction_of_cc_core,
                "cim_fraction_of_mc_core": area.cim_fraction_of_mc_core,
                "power_mw_at_60pct": power.total_mw,
            }
        )
        return summary

    def tokens_per_joule(self, result: WorkloadResult) -> float:
        """Energy efficiency of a run (Table II's token/J metric)."""
        value = result.tokens_per_joule
        if value is None:
            raise ValueError("result carries no power estimate")
        return value
