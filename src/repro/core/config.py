"""Top-level EdgeMM system configuration.

Bundles the chip architecture parameters with the system-level knobs the
evaluations sweep: numeric precision, the DRAM bandwidth split between CC-
and MC-clusters, and the pruning/bandwidth-management features.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..arch.chip import ChipConfig, GroupConfig, homo_cc_chip_config, homo_mc_chip_config


@dataclass(frozen=True)
class PrecisionConfig:
    """Operand precisions used by the performance and traffic models."""

    weight_bits: int = 8
    activation_bits: int = 16
    accumulator_bits: int = 32

    def __post_init__(self) -> None:
        for label, bits in (
            ("weight_bits", self.weight_bits),
            ("activation_bits", self.activation_bits),
            ("accumulator_bits", self.accumulator_bits),
        ):
            if bits <= 0 or bits % 8:
                raise ValueError(f"{label} must be a positive multiple of 8")

    @property
    def weight_bytes(self) -> float:
        return self.weight_bits / 8.0

    @property
    def activation_bytes(self) -> float:
        return self.activation_bits / 8.0


@dataclass(frozen=True)
class PruningRuntimeConfig:
    """Runtime pruning settings applied by the performance simulator.

    ``average_keep_fraction`` is the mean fraction of FFN input channels
    kept across decoder layers; it is normally obtained by running
    Algorithm 1 on an activation trace (see ``repro.pruning``) rather than
    set by hand.
    """

    enabled: bool = False
    average_keep_fraction: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.average_keep_fraction <= 1.0:
            raise ValueError("average_keep_fraction must be in (0, 1]")


@dataclass(frozen=True)
class SystemConfig:
    """Complete EdgeMM system configuration."""

    chip: ChipConfig = field(default_factory=ChipConfig)
    precision: PrecisionConfig = field(default_factory=PrecisionConfig)
    pruning: PruningRuntimeConfig = field(default_factory=PruningRuntimeConfig)
    #: Fraction of DRAM bandwidth granted to CC-clusters when both cluster
    #: types are active concurrently (the pipeline case); the remainder goes
    #: to MC-clusters.  0.5 is the "default equal bandwidth sharing".
    cc_bandwidth_fraction: float = 0.5
    name: str = "edgemm"

    def __post_init__(self) -> None:
        if not 0.0 <= self.cc_bandwidth_fraction <= 1.0:
            raise ValueError("cc_bandwidth_fraction must be in [0, 1]")

    def with_pruning(self, average_keep_fraction: float) -> "SystemConfig":
        """A copy with activation-aware pruning enabled."""
        return replace(
            self,
            pruning=PruningRuntimeConfig(
                enabled=True, average_keep_fraction=average_keep_fraction
            ),
            name=f"{self.name}+pruning",
        )

    def with_bandwidth_fraction(self, cc_fraction: float) -> "SystemConfig":
        """A copy with a different CC/MC bandwidth split."""
        return replace(self, cc_bandwidth_fraction=cc_fraction)


def default_system() -> SystemConfig:
    """The paper's default EdgeMM configuration (Fig. 10)."""
    return SystemConfig()


def homo_cc_system() -> SystemConfig:
    """Homogeneous compute-centric chip (comparison point of Fig. 11)."""
    return SystemConfig(chip=homo_cc_chip_config(), name="homo_cc")


def homo_mc_system() -> SystemConfig:
    """Homogeneous memory-centric chip (comparison point of Fig. 11)."""
    return SystemConfig(chip=homo_mc_chip_config(), name="homo_mc")


def scaled_system(
    n_groups: int = 4,
    cc_clusters_per_group: int = 2,
    mc_clusters_per_group: int = 2,
    *,
    base: Optional[SystemConfig] = None,
) -> SystemConfig:
    """A scaled EdgeMM variant (the architecture is parameterisable)."""
    base = base or default_system()
    group = GroupConfig(
        n_cc_clusters=cc_clusters_per_group,
        n_mc_clusters=mc_clusters_per_group,
        cc_cluster=base.chip.group.cc_cluster,
        mc_cluster=base.chip.group.mc_cluster,
    )
    chip = ChipConfig(
        n_groups=n_groups,
        group=group,
        frequency_hz=base.chip.frequency_hz,
        dram=base.chip.dram,
        interconnect=base.chip.interconnect,
        name=f"edgemm_{n_groups}x{cc_clusters_per_group}cc{mc_clusters_per_group}mc",
    )
    return SystemConfig(
        chip=chip,
        precision=base.precision,
        pruning=base.pruning,
        cc_bandwidth_fraction=base.cc_bandwidth_fraction,
        name=chip.name,
    )
