"""Array-native batched cost engine for design-space sweeps.

The scalar :class:`~repro.core.simulator.PerformanceSimulator` walks a
workload one operator at a time — perfect for a single chip, hopeless for
the thousand-point sweeps of design-space exploration where every point
re-runs the same closed-form cost equations.  This module evaluates entire
grids of design points in a handful of NumPy passes:

1. :class:`OpTable` compiles a :class:`~repro.models.ops.Workload` into a
   columnar table: the cost-relevant operator signature ``(kind, m, k, n,
   traffic bytes, flops, prunable)`` deduplicated into unique columns plus
   an order index, with per-phase slices.  A workload is chip-independent,
   so it compiles once per sweep instead of once per point.
2. :class:`DesignGrid` flattens a list of :class:`SystemConfig` design
   points (chip geometry, DRAM, bandwidth share, keep fraction) into
   parameter columns.
3. :class:`BatchCostEngine` broadcasts the shared :mod:`repro.costs`
   kernels over the ``(points, unique ops)`` cross product and reduces to
   per-phase totals.

Numerical identity with the scalar simulator is a hard guarantee, not an
approximation: both paths run the same kernels, and the per-phase
reductions use ``np.add.accumulate`` — a strict left fold, the same
summation order as the scalar ``for op in phase`` loop — so every float in
a :class:`~repro.core.metrics.WorkloadResult` materialised from a batch is
bit-identical to the scalar result.  Regression tests assert this across
randomized configurations.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import costs
from ..arch.area_power import AreaPowerModel
from ..arch.chip import ChipConfig
from ..models.mllm import InferenceRequest, MLLMConfig
from ..models.ops import Op, OpKind, Phase, Workload, merge_phases
from .config import SystemConfig
from .metrics import PhaseResult, WorkloadResult
from .simulator import PoolCostParams

__all__ = [
    "OpTable",
    "PhaseSlice",
    "DesignGrid",
    "OpCostMatrices",
    "BatchPhaseArrays",
    "BatchWorkloadResult",
    "BatchCostEngine",
    "RequestPrice",
    "ServiceTimeBounds",
    "ServiceTimeBoundsPricer",
    "compile_workload",
    "batch_run_request",
    "batch_price_request_mix",
    "batch_service_time_bounds",
    "context_bucket_for",
    "ordered_sum",
]

#: Operator kinds priced as matrix-matrix products (systolic-friendly).
_MAT_KINDS = frozenset({OpKind.GEMM, OpKind.CONV, OpKind.ATTENTION})
#: Operator kinds priced as matrix-vector products (CIM-friendly).
_VEC_KINDS = frozenset({OpKind.GEMV, OpKind.EMBEDDING})
#: Operator kinds priced on the vector units.
_ELEM_KINDS = frozenset(
    {OpKind.ELEMENTWISE, OpKind.SOFTMAX, OpKind.NORM, OpKind.ACTIVATION}
)


@dataclass(frozen=True)
class PhaseSlice:
    """One phase's slice of an :class:`OpTable` op-order array."""

    name: str
    start: int
    stop: int
    repeat: int
    #: Sum of op FLOPs for a single repeat (exact Python int).
    flops: int

    @property
    def op_count(self) -> int:
        """Number of operators in one repeat of the phase."""
        return self.stop - self.start


class OpTable:
    """Columnar, deduplicated view of a workload's operators.

    Unique cost signatures become columns; ``order`` maps every operator
    position (phase by phase, in execution order) to its column, so
    reductions can preserve the scalar simulator's exact summation order
    while the expensive per-op cost math runs once per unique signature.
    """

    def __init__(self, name: str, phases: Sequence[Tuple[str, Sequence[Op], int]]) -> None:
        signature_index: Dict[tuple, int] = {}
        columns: List[Op] = []
        order: List[int] = []
        slices: List[PhaseSlice] = []
        for phase_name, ops, repeat in phases:
            start = len(order)
            flops = 0
            for op in ops:
                signature = (
                    op.kind,
                    op.m,
                    op.k,
                    op.n,
                    op.weight_bytes,
                    op.activation_bytes,
                    op.output_bytes,
                    op.flops,
                    op.prunable,
                )
                index = signature_index.get(signature)
                if index is None:
                    index = len(columns)
                    signature_index[signature] = index
                    columns.append(op)
                order.append(index)
                flops += op.flops
            slices.append(
                PhaseSlice(
                    name=phase_name,
                    start=start,
                    stop=len(order),
                    repeat=repeat,
                    flops=flops,
                )
            )
        self.name = name
        self.phases: Tuple[PhaseSlice, ...] = tuple(slices)
        self.order = np.asarray(order, dtype=np.int64)
        kinds = [op.kind for op in columns]
        self.m = np.asarray([op.m for op in columns], dtype=np.int64)
        self.k = np.asarray([op.k for op in columns], dtype=np.int64)
        self.n = np.asarray([op.n for op in columns], dtype=np.int64)
        self.weight_bytes = np.asarray(
            [op.weight_bytes for op in columns], dtype=np.int64
        )
        self.activation_bytes = np.asarray(
            [op.activation_bytes for op in columns], dtype=np.int64
        )
        self.output_bytes = np.asarray(
            [op.output_bytes for op in columns], dtype=np.int64
        )
        self.flops = np.asarray([op.flops for op in columns], dtype=np.int64)
        self.prunable = np.asarray([op.prunable for op in columns], dtype=bool)
        self.is_mat = np.asarray([kind in _MAT_KINDS for kind in kinds], dtype=bool)
        self.is_vec = np.asarray([kind in _VEC_KINDS for kind in kinds], dtype=bool)
        self.is_elem = np.asarray([kind in _ELEM_KINDS for kind in kinds], dtype=bool)
        #: Strict GEMV mask — pruning shrinks the MACs of GEMV only, not
        #: EMBEDDING (mirrors ``op.kind is OpKind.GEMV`` in the simulator).
        self.is_strict_gemv = np.asarray(
            [kind is OpKind.GEMV for kind in kinds], dtype=bool
        )
        #: MC-pool preference of the auto routing policy.
        self.prefers_mc = self.is_vec

    @property
    def n_unique(self) -> int:
        """Number of unique cost signatures (columns of the table)."""
        return int(self.m.size)

    @property
    def n_ops(self) -> int:
        """Total operator positions across all phases (one repeat each)."""
        return int(self.order.size)

    def phase(self, name: str) -> PhaseSlice:
        """The slice of the phase called ``name`` (KeyError if absent)."""
        for slice_ in self.phases:
            if slice_.name == name:
                return slice_
        raise KeyError(f"op table {self.name!r} has no phase named {name!r}")

    @property
    def default_output_tokens(self) -> int:
        """Mirror of the simulator's default: the decode phase's repeat."""
        for slice_ in self.phases:
            if slice_.name == "llm_decode":
                return slice_.repeat
        return 1

    @classmethod
    def from_workload(cls, workload: Workload) -> "OpTable":
        """Compile every phase of ``workload`` into one op table."""
        return cls(
            workload.name,
            [(phase.name, phase.ops, phase.repeat) for phase in workload.phases],
        )

    @classmethod
    def from_phase(cls, phase: Phase) -> "OpTable":
        """Compile a single ``phase`` into a one-phase op table."""
        return cls(phase.name, [(phase.name, phase.ops, phase.repeat)])


def compile_workload(workload: Workload) -> OpTable:
    """Compile a workload into its columnar op table."""
    return OpTable.from_workload(workload)


def _as_point_array(value, n_points: int, name: str) -> np.ndarray:
    """Broadcast a scalar or per-point sequence to a float64 (P,) array."""
    if np.isscalar(value):
        array = np.full(n_points, float(value), dtype=np.float64)
    else:
        array = np.asarray(list(value), dtype=np.float64)
        if array.shape != (n_points,):
            raise ValueError(
                f"{name} must be a scalar or a sequence of {n_points} values"
            )
    return array


class DesignGrid:
    """Columnar parameters of a batch of design points.

    One row per design point: pool geometry (clusters, cores, systolic and
    CIM shapes, staging buffers), the DRAM/interconnect cost parameters,
    the DRAM bandwidth share and the effective pruning keep fraction.
    """

    def __init__(
        self,
        systems: Sequence[SystemConfig],
        *,
        bandwidth_fraction=1.0,
        keep_fraction=None,
    ) -> None:
        if not systems:
            raise ValueError("a design grid needs at least one system")
        self.systems: Tuple[SystemConfig, ...] = tuple(systems)
        n = len(self.systems)
        self.names: Tuple[str, ...] = tuple(system.name for system in self.systems)
        self.bandwidth_fraction = _as_point_array(
            bandwidth_fraction, n, "bandwidth_fraction"
        )
        if np.any(self.bandwidth_fraction <= 0):
            raise ValueError("bandwidth_fraction must be positive")
        # Resolve keep fractions exactly like
        # PerformanceSimulator.effective_keep_fraction: an explicit value
        # wins, otherwise the system's calibrated default applies.
        defaults = [
            system.pruning.average_keep_fraction if system.pruning.enabled else 1.0
            for system in self.systems
        ]
        if keep_fraction is None:
            resolved = defaults
        elif np.isscalar(keep_fraction):
            resolved = [float(keep_fraction)] * n
        else:
            values = list(keep_fraction)
            if len(values) != n:
                raise ValueError(
                    f"keep_fraction must be a scalar or a sequence of {n} values"
                )
            resolved = [
                default if value is None else float(value)
                for value, default in zip(values, defaults)
            ]
        self.keep_fraction = np.asarray(resolved, dtype=np.float64)
        if np.any(self.keep_fraction <= 0) or np.any(self.keep_fraction > 1):
            raise ValueError("keep_fraction must be in (0, 1]")

        cc = [PoolCostParams.from_chip_config(s.chip, "cc") for s in self.systems]
        mc = [PoolCostParams.from_chip_config(s.chip, "mc") for s in self.systems]

        def column(params, attribute):
            return np.asarray([getattr(p, attribute) for p in params], dtype=np.int64)

        self.cc_n_clusters = column(cc, "n_clusters")
        self.mc_n_clusters = column(mc, "n_clusters")
        self.has_cc = self.cc_n_clusters > 0
        self.has_mc = self.mc_n_clusters > 0
        self.cc_n_cores = column(cc, "n_cores")
        self.mc_n_cores = column(mc, "n_cores")
        self.cc_dispatch = column(cc, "dispatch_cycles")
        self.mc_dispatch = column(mc, "dispatch_cycles")
        self.sa_rows = column(cc, "sa_rows")
        self.sa_cols = column(cc, "sa_cols")
        self.cim_subarrays = column(mc, "cim_subarrays")
        self.cim_columns = column(mc, "cim_columns")
        self.cim_activation_bits = column(mc, "cim_activation_bits")
        self.cc_lanes = column(cc, "lanes")
        self.mc_lanes = column(mc, "lanes")
        self.cc_buffer = column(cc, "buffer_bytes")
        self.mc_buffer = column(mc, "buffer_bytes")
        self.frequency_hz = np.asarray(
            [s.chip.frequency_hz for s in self.systems], dtype=np.float64
        )
        # Mirror Chip.dram_bytes_per_cycle(): peak bandwidth over chip clock.
        self.dram_bytes_per_cycle = np.asarray(
            [
                s.chip.dram.peak_bandwidth_bytes_per_s / s.chip.frequency_hz
                for s in self.systems
            ],
            dtype=np.float64,
        )
        self.request_overhead_cycles = np.asarray(
            [s.chip.dram.request_overhead_cycles for s in self.systems], dtype=np.int64
        )
        self.request_latency_cycles = np.asarray(
            [
                s.chip.interconnect.total_traversal_latency_cycles
                for s in self.systems
            ],
            dtype=np.int64,
        )
        # Keyed by chip-config identity: configs are frozen but not
        # hashable (the ACU op-cycle table is a dict), and the grid keeps
        # the systems alive, so id() keys cannot be recycled.
        self._area_power_cache: Dict[int, AreaPowerModel] = {}

    @property
    def n_points(self) -> int:
        """Number of design points (rows) in the grid."""
        return len(self.systems)

    @classmethod
    def from_systems(
        cls,
        systems: Sequence[SystemConfig],
        *,
        bandwidth_fraction=1.0,
        keep_fraction=None,
    ) -> "DesignGrid":
        """Build a grid from ``systems`` (see the class for the knobs)."""
        return cls(
            systems, bandwidth_fraction=bandwidth_fraction, keep_fraction=keep_fraction
        )

    def area_power(self, point: int) -> AreaPowerModel:
        """The (cached) analytical area/power model of one design point."""
        chip = self.systems[point].chip
        model = self._area_power_cache.get(id(chip))
        if model is None:
            model = AreaPowerModel(chip)
            self._area_power_cache[id(chip)] = model
        return model


@dataclass(frozen=True)
class OpCostMatrices:
    """Per-(design point, unique op) cost components, shape ``(P, U)``."""

    compute_cycles: np.ndarray
    memory_cycles: np.ndarray
    traffic_bytes: np.ndarray
    pruned_weight_bytes: np.ndarray
    pool_is_mc: np.ndarray

    @property
    def cycles(self) -> np.ndarray:
        """Per-op latency: compute/DMA double buffering takes the max leg."""
        return np.maximum(self.compute_cycles, self.memory_cycles)


@dataclass(frozen=True)
class BatchPhaseArrays:
    """Per-point totals of one phase across the whole grid."""

    name: str
    cycles: np.ndarray
    compute_cycles: np.ndarray
    memory_cycles: np.ndarray
    latency_s: np.ndarray
    dram_bytes: np.ndarray
    flops: int
    op_count: int
    dominant_is_mc: np.ndarray


def ordered_sum(matrix: np.ndarray) -> np.ndarray:
    """Strict left-fold row sum of ``matrix`` — the scalar summation order.

    ``np.add.accumulate`` is defined element-by-element
    (``out[i] = out[i-1] + a[i]``), unlike ``np.sum`` whose pairwise
    reduction would differ from the scalar simulator in the last ulp.
    """
    if matrix.shape[1] == 0:
        return np.zeros(matrix.shape[0], dtype=matrix.dtype)
    return np.add.accumulate(matrix, axis=1)[:, -1]


class BatchWorkloadResult:
    """Grid-shaped workload result with scalar materialisation.

    Array views (``total_latency_s`` etc.) serve sweep-style consumers;
    :meth:`result_for` materialises the exact
    :class:`~repro.core.metrics.WorkloadResult` the scalar simulator would
    have produced for one point (including the power estimate).
    """

    def __init__(
        self,
        table: OpTable,
        grid: DesignGrid,
        phase_arrays: Sequence[BatchPhaseArrays],
        output_tokens: int,
    ) -> None:
        self.table = table
        self.grid = grid
        self.phases: Tuple[BatchPhaseArrays, ...] = tuple(phase_arrays)
        self.output_tokens = output_tokens

    @property
    def n_points(self) -> int:
        """Number of design points the result spans."""
        return self.grid.n_points

    def phase(self, name: str) -> BatchPhaseArrays:
        """The per-point arrays of the phase called ``name``."""
        for arrays in self.phases:
            if arrays.name == name:
                return arrays
        raise KeyError(f"no phase {name!r}; available: "
                       f"{', '.join(p.name for p in self.phases)}")

    @property
    def total_latency_s(self) -> np.ndarray:
        """Per-point end-to-end latency (same fold as ``WorkloadResult``)."""
        total = np.zeros(self.n_points)
        for arrays in self.phases:
            total = total + arrays.latency_s
        return total

    @property
    def tokens_per_second(self) -> np.ndarray:
        """Per-point decode throughput (0 where total latency is 0)."""
        total = self.total_latency_s
        return np.where(total > 0, self.output_tokens / np.where(total > 0, total, 1.0), 0.0)

    def _power_w(self, point: int, phases: Dict[str, PhaseResult]) -> float:
        """Mirror of ``PerformanceSimulator.average_power_w`` for one point."""
        model = self.grid.area_power(point)
        technology = model.technology
        total_cycles = sum(result.cycles for result in phases.values())
        if total_cycles == 0:
            return model.power_report(0.0).total_mw / 1e3
        total_compute = sum(result.compute_cycles for result in phases.values())
        utilization = min(total_compute / total_cycles, 1.0)
        chip_power_w = model.power_report(utilization).total_mw / 1e3
        total_bytes = sum(result.dram_bytes for result in phases.values())
        total_seconds = total_cycles / self.grid.frequency_hz[point]
        if total_seconds == 0:
            return chip_power_w
        dram_energy_j = (
            total_bytes * technology.dram_access_energy_pj_per_byte * 1e-12
        )
        return chip_power_w + dram_energy_j / total_seconds

    def result_for(self, point: int) -> WorkloadResult:
        """Materialise the scalar-identical ``WorkloadResult`` of one point."""
        if not 0 <= point < self.n_points:
            raise IndexError(f"point {point} out of range [0, {self.n_points})")
        phases: Dict[str, PhaseResult] = {}
        for arrays in self.phases:
            phases[arrays.name] = PhaseResult(
                name=arrays.name,
                cycles=float(arrays.cycles[point]),
                compute_cycles=float(arrays.compute_cycles[point]),
                memory_cycles=float(arrays.memory_cycles[point]),
                latency_s=float(arrays.latency_s[point]),
                dram_bytes=int(arrays.dram_bytes[point]),
                flops=arrays.flops,
                op_count=arrays.op_count,
                cluster_kind="mc" if arrays.dominant_is_mc[point] else "cc",
            )
        return WorkloadResult(
            workload_name=self.table.name,
            hardware_name=self.grid.names[point],
            phases=phases,
            output_tokens=self.output_tokens,
            power_w=self._power_w(point, phases),
        )

    def results(self) -> List[WorkloadResult]:
        """Materialise every design point, in grid order."""
        return [self.result_for(point) for point in range(self.n_points)]


class BatchCostEngine:
    """Evaluates op tables against a design grid in broadcasted passes."""

    def __init__(self, grid: DesignGrid) -> None:
        self.grid = grid

    # ------------------------------------------------------------------
    # Pool routing
    # ------------------------------------------------------------------
    def _pool_matrix(self, table: OpTable, pool: Optional[str]) -> np.ndarray:
        """Boolean (P, U) matrix: op runs on the MC pool of the point."""
        grid = self.grid
        if pool is None:
            # Auto policy: GEMV-like ops prefer MC, everything else CC,
            # falling back to the only available pool on homogeneous chips.
            return np.where(
                table.prefers_mc[None, :],
                grid.has_mc[:, None],
                ~grid.has_cc[:, None],
            )
        if pool not in ("cc", "mc"):
            raise ValueError("pool must be 'cc' or 'mc'")
        available = grid.has_mc if pool == "mc" else grid.has_cc
        if not np.all(available):
            name = grid.names[int(np.argmin(available))]
            raise ValueError(f"chip {name!r} has no {pool.upper()} clusters")
        return np.full(
            (grid.n_points, table.n_unique), pool == "mc", dtype=bool
        )

    # ------------------------------------------------------------------
    # Per-op cost matrices
    # ------------------------------------------------------------------
    def op_costs(self, table: OpTable, *, pool: Optional[str] = None) -> OpCostMatrices:
        """Compute/memory/traffic of every unique op at every design point."""
        grid = self.grid
        n_points, n_unique = grid.n_points, table.n_unique
        pool_mc = self._pool_matrix(table, pool)
        keep = grid.keep_fraction[:, None]
        # Safe divisors: a pool with zero clusters is never *selected*, but
        # the unselected side of each np.where still evaluates.
        cc_div = np.maximum(grid.cc_n_clusters, 1)[:, None]
        mc_div = np.maximum(grid.mc_n_clusters, 1)[:, None]

        compute = np.zeros((n_points, n_unique), dtype=np.float64)

        mat = table.is_mat
        if mat.any():
            m = table.m[mat][None, :]
            k = table.k[mat][None, :]
            n = table.n[mat][None, :]
            cc_val = costs.systolic_gemm_cycles(
                m,
                k,
                costs.partitioned_share(n, cc_div),
                rows=grid.sa_rows[:, None],
                cols=grid.sa_cols[:, None],
                n_cores=grid.cc_n_cores[:, None],
                dispatch_cycles=grid.cc_dispatch[:, None],
            )
            mc_val = costs.cim_gemm_cycles(
                m,
                k,
                costs.partitioned_share(n, mc_div),
                subarrays=grid.cim_subarrays[:, None],
                columns=grid.cim_columns[:, None],
                activation_bits=grid.cim_activation_bits[:, None],
                n_cores=grid.mc_n_cores[:, None],
                dispatch_cycles=grid.mc_dispatch[:, None],
            )
            compute[:, mat] = np.where(pool_mc[:, mat], mc_val, cc_val)

        vec = table.is_vec
        if vec.any():
            k = table.k[vec][None, :]
            n = table.n[vec][None, :]
            cc_val = costs.systolic_gemm_cycles(
                1,
                k,
                costs.partitioned_share(n, cc_div),
                rows=grid.sa_rows[:, None],
                cols=grid.sa_cols[:, None],
                n_cores=grid.cc_n_cores[:, None],
                dispatch_cycles=grid.cc_dispatch[:, None],
            )
            mc_val = costs.cim_gemv_cycles(
                k,
                costs.partitioned_share(n, mc_div),
                subarrays=grid.cim_subarrays[:, None],
                columns=grid.cim_columns[:, None],
                activation_bits=grid.cim_activation_bits[:, None],
                n_cores=grid.mc_n_cores[:, None],
                dispatch_cycles=grid.mc_dispatch[:, None],
            )
            compute[:, vec] = np.where(pool_mc[:, vec], mc_val, cc_val)

        elem = table.is_elem
        if elem.any():
            m = table.m[elem][None, :]
            flops_per_element = np.true_divide(table.flops[elem], table.m[elem])[None, :]
            cc_val = costs.elementwise_cycles(
                costs.partitioned_share(m, cc_div),
                np.maximum(flops_per_element, 1.0),
                n_cores=grid.cc_n_cores[:, None],
                lanes=grid.cc_lanes[:, None],
            )
            mc_val = costs.elementwise_cycles(
                costs.partitioned_share(m, mc_div),
                np.maximum(flops_per_element, 1.0),
                n_cores=grid.mc_n_cores[:, None],
                lanes=grid.mc_lanes[:, None],
            )
            compute[:, elem] = np.where(pool_mc[:, elem], mc_val, cc_val)

        # Pruning removes the matching MACs of strict GEMVs.
        prune_compute = (
            table.is_strict_gemv[None, :] & table.prunable[None, :] & (keep < 1.0)
        )
        compute = np.where(prune_compute, compute * keep, compute)

        weight = costs.pruned_weight_bytes(
            table.weight_bytes[None, :], table.prunable[None, :], keep
        )
        traffic = weight + table.activation_bytes[None, :] + table.output_bytes[None, :]

        buffer = np.where(pool_mc, grid.mc_buffer[:, None], grid.cc_buffer[:, None])
        memory = costs.memory_cycles(
            traffic,
            buffer_bytes=buffer,
            dram_bytes_per_cycle=grid.dram_bytes_per_cycle[:, None],
            bandwidth_fraction=grid.bandwidth_fraction[:, None],
            request_overhead_cycles=grid.request_overhead_cycles[:, None],
            request_latency_cycles=grid.request_latency_cycles[:, None],
        )
        return OpCostMatrices(
            compute_cycles=compute,
            memory_cycles=memory,
            traffic_bytes=traffic,
            pruned_weight_bytes=weight,
            pool_is_mc=pool_mc,
        )

    # ------------------------------------------------------------------
    # Phase / workload reduction
    # ------------------------------------------------------------------
    def _reduce_phase(
        self,
        table: OpTable,
        matrices: OpCostMatrices,
        slice_: PhaseSlice,
        pool: Optional[str] = None,
    ) -> BatchPhaseArrays:
        index = table.order[slice_.start : slice_.stop]
        compute = matrices.compute_cycles[:, index]
        memory = matrices.memory_cycles[:, index]
        cycles = np.maximum(compute, memory)
        pool_mc = matrices.pool_is_mc[:, index]
        total_compute = ordered_sum(compute)
        total_memory = ordered_sum(memory)
        total_cycles = ordered_sum(cycles)
        votes_mc = ordered_sum(np.where(pool_mc, cycles, 0.0))
        votes_cc = ordered_sum(np.where(pool_mc, 0.0, cycles))
        total_bytes = matrices.traffic_bytes[:, index].sum(axis=1)
        repeat = slice_.repeat
        total_compute = total_compute * repeat
        total_memory = total_memory * repeat
        total_cycles = total_cycles * repeat
        total_bytes = total_bytes * repeat
        latency_s = total_cycles / self.grid.frequency_hz
        # max(votes, key=votes.get) returns 'cc' on ties; zero-cycle phases
        # fall back to the forced pool (the simulator's `pool or "cc"`).
        dominant_is_mc = np.where(total_cycles != 0, votes_mc > votes_cc, pool == "mc")
        return BatchPhaseArrays(
            name=slice_.name,
            cycles=total_cycles,
            compute_cycles=total_compute,
            memory_cycles=total_memory,
            latency_s=latency_s,
            dram_bytes=total_bytes,
            flops=slice_.flops * repeat,
            op_count=repeat * slice_.op_count,
            dominant_is_mc=dominant_is_mc,
        )

    def evaluate(
        self,
        table: OpTable,
        *,
        pool: Optional[str] = None,
        output_tokens: Optional[int] = None,
    ) -> BatchWorkloadResult:
        """Evaluate the whole grid against a workload's op table."""
        matrices = self.op_costs(table, pool=pool)
        phase_arrays = [
            self._reduce_phase(table, matrices, slice_, pool) for slice_ in table.phases
        ]
        if output_tokens is None:
            output_tokens = table.default_output_tokens
        return BatchWorkloadResult(table, self.grid, phase_arrays, output_tokens)

    def evaluate_workload(
        self,
        workload: Workload,
        *,
        pool: Optional[str] = None,
        output_tokens: Optional[int] = None,
    ) -> BatchWorkloadResult:
        """Compile and evaluate a workload in one call."""
        return self.evaluate(
            OpTable.from_workload(workload), pool=pool, output_tokens=output_tokens
        )


def batch_run_request(
    model: MLLMConfig,
    request: InferenceRequest,
    systems: Sequence[SystemConfig],
    *,
    bandwidth_fraction=1.0,
    keep_fraction=None,
) -> BatchWorkloadResult:
    """Run one inference ``request`` of ``model`` against many chip designs.

    The batched counterpart of
    :meth:`~repro.core.simulator.PerformanceSimulator.run_request`: the
    workload lowers once (it is chip-independent) and every point of
    ``systems`` evaluates as broadcasted array arithmetic, under the given
    ``bandwidth_fraction`` and ``keep_fraction`` (scalar or per-point).
    ``result_for(i)`` is bit-identical to
    ``PerformanceSimulator(systems[i]).run_request(...)``.
    """
    workload = model.build_workload(request)
    grid = DesignGrid.from_systems(
        systems, bandwidth_fraction=bandwidth_fraction, keep_fraction=keep_fraction
    )
    engine = BatchCostEngine(grid)
    return engine.evaluate_workload(workload, output_tokens=request.output_tokens)


@dataclass(frozen=True)
class RequestPrice:
    """Batch-1 price of one request shape on one design point.

    ``latency_s`` folds the per-phase latencies in workload phase order —
    the same float summation as ``WorkloadResult.total_latency_s`` — so it
    is ``==``-equal to the scalar simulator's end-to-end latency.
    """

    latency_s: float
    dram_bytes: int
    flops: int

    @property
    def chip_seconds(self) -> float:
        """Alias making fleet-capacity arithmetic read naturally."""
        return self.latency_s


def batch_price_request_mix(
    model: MLLMConfig,
    requests: Sequence[InferenceRequest],
    system: SystemConfig,
    *,
    bandwidth_fraction=1.0,
) -> Dict[InferenceRequest, RequestPrice]:
    """Price every unique shape of ``requests`` on ``system`` in one pass.

    ``bandwidth_fraction`` is the DRAM share the pricing runs under.
    The serving-scenario layer compiles traces mixing heterogeneous request
    shapes (text chat, multi-image, video frames, long context).  Pricing
    them one scalar simulation at a time would redo the same cost algebra
    per shape; instead this stacks every unique shape's phases into a
    *single* :class:`OpTable` — cross-shape signature deduplication comes
    for free, decoder layers repeat across shapes — and evaluates the lot
    against one single-point grid.  ``result[shape].latency_s`` is
    bit-identical to
    ``PerformanceSimulator(system).run_request(model, shape)``'s
    ``total_latency_s`` (regression-tested in ``tests/core/test_batch.py``).
    """
    unique: Dict[InferenceRequest, None] = {}
    for request in requests:
        unique.setdefault(request, None)
    if not unique:
        raise ValueError("requests must not be empty")
    shapes = list(unique)
    phases: List[Tuple[str, Sequence[Op], int]] = []
    spans: List[Tuple[int, int]] = []
    for index, shape in enumerate(shapes):
        workload = model.build_workload(shape)
        start = len(phases)
        phases.extend(
            (f"{index}/{phase.name}", phase.ops, phase.repeat)
            for phase in workload.phases
        )
        spans.append((start, len(phases)))
    table = OpTable("request_mix", phases)
    grid = DesignGrid.from_systems([system], bandwidth_fraction=bandwidth_fraction)
    result = BatchCostEngine(grid).evaluate(table)
    prices: Dict[InferenceRequest, RequestPrice] = {}
    for shape, (start, stop) in zip(shapes, spans):
        arrays = result.phases[start:stop]
        prices[shape] = RequestPrice(
            latency_s=sum(float(a.latency_s[0]) for a in arrays),
            dram_bytes=sum(int(a.dram_bytes[0]) for a in arrays),
            flops=sum(a.flops for a in arrays),
        )
    return prices


@dataclass(frozen=True)
class ServiceTimeBounds:
    """Analytic lower bounds on serving service times, per (point, shape).

    Every array has shape ``(n_points, n_shapes)``; row order follows
    ``systems`` and column order follows ``shapes`` (use :meth:`shape_index`
    to map a request shape back to its column).  The bounds mirror the
    serving engine's cost model exactly:

    * ``prefill_s`` — the CC-stage (encode + projector + prefill) latency,
      the *exact* value :meth:`repro.serving.queue.ContinuousBatchingSimulator.
      cc_latency_s` computes, and a hard floor on any request's queue-free
      service start-to-first-phase time;
    * ``first_step_s`` — one single-stream decode step at the shape's
      initial context bucket, the exact
      :meth:`~repro.serving.queue.BatchDecodeCostModel.step_latency_s` of a
      batch of one;
    * ``min_ttft_s`` — ``prefill_s + first_step_s``: no fleet of this chip,
      under any dispatch policy, admission control or batch composition,
      can serve the shape's first token faster (queue wait is >= 0, decode
      steps only slow down as streams join the batch);
    * ``min_latency_s`` — ``prefill_s`` plus one single-stream step per
      output token at the context bucket that token decodes under.  The
      exact simulator steps every stream exactly ``output_tokens`` times at
      those same buckets, each step at least as slow as its single-stream
      bound, so this floors the end-to-end latency.

    The bounds are what makes SLO-infeasibility *provable* without
    simulation: if the percentile of a bound across a trace already misses
    an objective, every exact simulation of that chip misses it too (see
    :mod:`repro.planner.prune`).
    """

    systems: Tuple[SystemConfig, ...]
    shapes: Tuple[InferenceRequest, ...]
    prefill_s: np.ndarray
    first_step_s: np.ndarray
    min_ttft_s: np.ndarray
    min_latency_s: np.ndarray

    @property
    def n_points(self) -> int:
        """Number of design points (rows of every bound array)."""
        return len(self.systems)

    def shape_index(self, shape: InferenceRequest) -> int:
        """The column of ``shape`` in the bound arrays."""
        for index, candidate in enumerate(self.shapes):
            if candidate == shape:
                return index
        raise KeyError(f"shape {shape!r} was not priced by these bounds")


def context_bucket_for(context: int, context_bucket: int) -> int:
    """Quantize a ``context`` length up to a multiple of ``context_bucket``.

    The single definition of decode-context quantization: the serving cost
    model (:class:`repro.serving.queue.BatchDecodeCostModel`) and the
    analytic service-time bounds both resolve buckets through this helper,
    so the bounds can never drift from the buckets the exact simulator
    prices — which the planner's pruning soundness depends on.
    """
    return (
        (max(context, 1) + context_bucket - 1) // context_bucket
    ) * context_bucket


class ServiceTimeBoundsPricer:
    """Reusable service-time-bound evaluator over a fixed shape set.

    Compiling the *shape side* of :func:`batch_service_time_bounds` — the
    merged CC-stage op table, the decode-bucket op table, per-shape prompt
    lengths and bucket histograms — is design-independent and costs far
    more than one additional design row in the broadcasted evaluation.
    The pricer hoists that compilation into ``__init__`` so callers that
    bound *many* batches of designs against the *same* trace (the flat
    planner chunking over a huge grid, the branch-and-bound planner
    pricing one wave of subgrid corners per tree level) pay it exactly
    once; :meth:`bounds` then evaluates any batch of systems with only the
    per-design broadcast work.

    ``batch_service_time_bounds(model, shapes, systems)`` is equivalent to
    ``ServiceTimeBoundsPricer(model, shapes).bounds(systems)`` and the
    floats are identical — the pricer is a refactoring of that function,
    not a reimplementation.
    """

    def __init__(
        self,
        model: MLLMConfig,
        shapes: Sequence[InferenceRequest],
        *,
        cc_bandwidth_fraction: float = 0.5,
        context_bucket: int = 32,
    ) -> None:
        if not 0.0 < cc_bandwidth_fraction < 1.0:
            raise ValueError("cc_bandwidth_fraction must be in (0, 1)")
        if context_bucket < 1:
            raise ValueError("context_bucket must be >= 1")
        unique: Dict[InferenceRequest, None] = {}
        for shape in shapes:
            unique.setdefault(shape, None)
        if not unique:
            raise ValueError("shapes must not be empty")
        self.model = model
        self.cc_bandwidth_fraction = cc_bandwidth_fraction
        self.context_bucket = context_bucket
        self.shapes: Tuple[InferenceRequest, ...] = tuple(unique)
        self._shape_column = {
            shape: column for column, shape in enumerate(self.shapes)
        }

        # Chip-independent tables: one merged CC-stage phase per shape, one
        # decode-step phase per context bucket any shape's decode touches.
        from .pipeline import CC_STAGE_PHASES

        cc_phases: List[Tuple[str, Sequence[Op], int]] = []
        prompts: List[int] = []
        bucket_counts: List[Counter] = []
        buckets: Dict[int, None] = {}
        for index, shape in enumerate(self.shapes):
            probe = InferenceRequest(
                images=shape.images,
                prompt_text_tokens=shape.prompt_text_tokens,
                output_tokens=1,
            )
            workload = model.build_workload(probe)
            merged = merge_phases(
                "cc_stage",
                [
                    phase
                    for phase in workload.phases
                    if phase.name in CC_STAGE_PHASES
                ],
            )
            cc_phases.append((f"{index}/cc_stage", merged.ops, merged.repeat))
            prompt = model.prompt_tokens(shape)
            prompts.append(prompt)
            counts = Counter(
                context_bucket_for(prompt + step, context_bucket)
                for step in range(shape.output_tokens)
            )
            bucket_counts.append(counts)
            buckets.setdefault(context_bucket_for(prompt, context_bucket), None)
            for bucket in counts:
                buckets.setdefault(bucket, None)
        self._bucket_list = sorted(buckets)
        self._bucket_column = {
            bucket: column for column, bucket in enumerate(self._bucket_list)
        }
        self._decode_table = OpTable(
            "decode_bounds",
            [
                (f"bucket/{bucket}", model.decode_step(bucket).ops, 1)
                for bucket in self._bucket_list
            ],
        )
        self._cc_table = OpTable("cc_stage_bounds", cc_phases)
        self._prompts = prompts
        self._bucket_counts = bucket_counts
        self._first_columns = [
            self._bucket_column[context_bucket_for(prompt, context_bucket)]
            for prompt in prompts
        ]

    @property
    def n_shapes(self) -> int:
        """Number of unique request shapes the pricer was compiled for."""
        return len(self.shapes)

    def shape_column(self, shape: InferenceRequest) -> int:
        """The bound-array column of ``shape`` (must have been compiled)."""
        try:
            return self._shape_column[shape]
        except KeyError:
            raise KeyError(f"shape {shape!r} was not compiled by this pricer")

    def trace_columns(self, trace: Sequence) -> np.ndarray:
        """Bound-array columns of a serving trace, one per request.

        Accepts :class:`~repro.serving.queue.ServingRequest` sequences (the
        planner's compiled traces); the returned int64 array indexes the
        shape axis of every array :meth:`bounds` returns.
        """
        return np.asarray(
            [self._shape_column[request.request] for request in trace],
            dtype=np.int64,
        )

    def bounds(self, systems: Sequence[SystemConfig]) -> ServiceTimeBounds:
        """Evaluate the compiled shapes against a batch of ``systems``.

        Only the per-design broadcast runs here; the shape-side tables are
        reused from ``__init__``, so calling this repeatedly with small
        system batches costs the same total broadcast work as one big call.
        """
        if not systems:
            raise ValueError("systems must not be empty")
        system_list = tuple(systems)
        n_points, n_shapes = len(system_list), len(self.shapes)

        prefill_s = np.zeros((n_points, n_shapes), dtype=np.float64)
        step_s = np.zeros((n_points, len(self._bucket_list)), dtype=np.float64)
        mc_bandwidth_fraction = 1.0 - self.cc_bandwidth_fraction

        # Points grouped by pool availability: the serving engine's CC stage
        # falls back to the MC pool on MC-only chips (and decode to CC on
        # CC-only chips), and the batch engine requires a uniform pool string
        # per evaluation.
        pool_groups: Dict[Tuple[bool, bool], List[int]] = {}
        for point, system in enumerate(system_list):
            key = (system.chip.n_cc_clusters > 0, system.chip.n_mc_clusters > 0)
            pool_groups.setdefault(key, []).append(point)

        for (has_cc, has_mc), points in pool_groups.items():
            subset = [system_list[point] for point in points]
            cc_pool = "cc" if has_cc else "mc"
            decode_pool = "mc" if has_mc else "cc"

            cc_grid = DesignGrid.from_systems(
                subset, bandwidth_fraction=self.cc_bandwidth_fraction
            )
            cc_result = BatchCostEngine(cc_grid).evaluate(
                self._cc_table, pool=cc_pool
            )
            for column in range(n_shapes):
                prefill_s[points, column] = cc_result.phases[column].latency_s

            # Decode-step cost triples mirror BatchDecodeCostModel._cost:
            # per-op bytes and compute at bandwidth_fraction=1, then one
            # step-level memory_cycles over the total traffic at the MC
            # bandwidth share.
            decode_grid = DesignGrid.from_systems(subset, bandwidth_fraction=1.0)
            matrices = BatchCostEngine(decode_grid).op_costs(
                self._decode_table, pool=decode_pool
            )
            buffer_bytes = (
                decode_grid.mc_buffer
                if decode_pool == "mc"
                else decode_grid.cc_buffer
            )
            for column, slice_ in enumerate(self._decode_table.phases):
                index = self._decode_table.order[slice_.start : slice_.stop]
                traffic = matrices.traffic_bytes[:, index].sum(axis=1)
                compute = ordered_sum(matrices.compute_cycles[:, index])
                memory = costs.memory_cycles(
                    traffic,
                    buffer_bytes=buffer_bytes,
                    dram_bytes_per_cycle=decode_grid.dram_bytes_per_cycle,
                    bandwidth_fraction=mc_bandwidth_fraction,
                    request_overhead_cycles=decode_grid.request_overhead_cycles,
                    request_latency_cycles=decode_grid.request_latency_cycles,
                )
                step_s[points, column] = (
                    np.maximum(memory, compute) / decode_grid.frequency_hz
                )

        first_step_s = step_s[:, self._first_columns]
        decode_floor_s = np.zeros((n_points, n_shapes), dtype=np.float64)
        for column, counts in enumerate(self._bucket_counts):
            for bucket, count in sorted(counts.items()):
                decode_floor_s[:, column] += (
                    count * step_s[:, self._bucket_column[bucket]]
                )
        return ServiceTimeBounds(
            systems=system_list,
            shapes=self.shapes,
            prefill_s=prefill_s,
            first_step_s=first_step_s,
            min_ttft_s=prefill_s + first_step_s,
            min_latency_s=prefill_s + decode_floor_s,
        )


def batch_service_time_bounds(
    model: MLLMConfig,
    shapes: Sequence[InferenceRequest],
    systems: Sequence[SystemConfig],
    *,
    cc_bandwidth_fraction: float = 0.5,
    context_bucket: int = 32,
) -> ServiceTimeBounds:
    """Lower-bound serving service times of shapes across a design grid.

    One broadcasted pass prices every unique request shape's CC stage and
    every decode-context bucket against *all* ``systems`` at once — the
    array-native counterpart of asking each chip's serving cost model for
    its prefill latency and single-stream decode steps.  ``shapes`` are
    deduplicated; ``cc_bandwidth_fraction`` and ``context_bucket`` must
    match the serving configuration being bounded (decode gets the
    remaining ``1 - cc_bandwidth_fraction`` of the bandwidth, exactly like
    :class:`~repro.serving.queue.ContinuousBatchingSimulator`).

    The returned per-shape values are *bounds on a fleet of any size*: they
    assume zero queueing and batch-1 decode, both of which the exact
    event-driven simulator can only do worse than.  Chips that mix CC and
    MC pools, CC-only chips and MC-only chips are all supported (points are
    internally grouped by pool availability, matching the serving engine's
    pool fallback).

    This is the one-shot convenience wrapper over
    :class:`ServiceTimeBoundsPricer`; callers bounding many design batches
    against one trace should hold a pricer instead (the shape-side
    compilation dominates small batches).
    """
    return ServiceTimeBoundsPricer(
        model,
        shapes,
        cc_bandwidth_fraction=cc_bandwidth_fraction,
        context_bucket=context_bucket,
    ).bounds(systems)
