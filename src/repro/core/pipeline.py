"""Streaming-pipeline model of EdgeMM (Fig. 9 of the paper).

In real-time applications a stream of requests arrives continuously.  The
CC-clusters run the modality encoder and LLM-prefill of request *i+1* while
the MC-clusters decode request *i*, forming a two-stage pipeline whose
stages share the DRAM bandwidth.

This module evaluates that pipeline for a given output token length ``l``
and a bandwidth split ``Bc : Bm``:

* **CC-stage latency** — vision encode + projector + prefill with the CC
  share of the bandwidth;
* **MC-stage latency** — ``l`` decode steps with the MC share, optionally
  with activation-aware pruning, optionally decoding a batch of ``B``
  requests concurrently (stream-based batch decoding, which re-uses each
  weight read across the batch);
* **pipeline latency / throughput** — the steady-state request latency is
  the sum of both stages, the throughput is ``B`` requests (times ``l``
  tokens) per pipeline interval, which is the *slower* stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..models.mllm import InferenceRequest, MLLMConfig
from ..models.ops import merge_phases
from .simulator import PerformanceSimulator

#: Phases executed by the CC-stage (everything before the first decoded
#: token).  The serving layer shares this definition.
CC_STAGE_PHASES: Tuple[str, ...] = ("vision_encoder", "projector", "llm_prefill")


def cc_stage_latency(
    simulator: PerformanceSimulator,
    model: MLLMConfig,
    request: InferenceRequest,
    *,
    pool: str = "cc",
    bandwidth_fraction: float = 0.5,
) -> float:
    """Encode + projector + prefill latency of one request on one pool.

    The single definition of CC-stage costing, shared by the pipeline
    model and the serving engine so their latencies cannot diverge.
    """
    if not 0.0 < bandwidth_fraction <= 1.0:
        raise ValueError("bandwidth_fraction must be in (0, 1]")
    workload = model.build_workload(request)
    cc_phases = [phase for phase in workload.phases if phase.name in CC_STAGE_PHASES]
    merged = merge_phases("cc_stage", cc_phases)
    result = simulator.execute_phase(
        merged, pool=pool, bandwidth_fraction=bandwidth_fraction
    )
    return result.latency_s


@dataclass(frozen=True)
class PipelinePoint:
    """Steady-state pipeline behaviour for one operating point."""

    output_tokens: int
    cc_bandwidth_fraction: float
    batch_size: int
    cc_stage_latency_s: float
    mc_stage_latency_s: float

    @property
    def mc_bandwidth_fraction(self) -> float:
        return 1.0 - self.cc_bandwidth_fraction

    @property
    def request_latency_s(self) -> float:
        """Latency of one request through both stages."""
        return self.cc_stage_latency_s + self.mc_stage_latency_s

    @property
    def pipeline_interval_s(self) -> float:
        """Time between successive batch completions (the slower stage)."""
        return max(self.cc_stage_latency_s, self.mc_stage_latency_s)

    @property
    def tokens_per_second(self) -> float:
        interval = self.pipeline_interval_s
        if interval == 0:
            return 0.0
        return self.batch_size * self.output_tokens / interval

    @property
    def requests_per_second(self) -> float:
        interval = self.pipeline_interval_s
        if interval == 0:
            return 0.0
        return self.batch_size / interval

    @property
    def imbalance(self) -> float:
        """Ratio of the slower stage to the faster stage (1.0 = balanced)."""
        slow = self.pipeline_interval_s
        fast = min(self.cc_stage_latency_s, self.mc_stage_latency_s)
        if fast == 0:
            return float("inf")
        return slow / fast


class PipelineModel:
    """Evaluates the two-stage encode/prefill + decode pipeline."""

    def __init__(
        self,
        simulator: PerformanceSimulator,
        model: MLLMConfig,
        *,
        images: int = 1,
        prompt_text_tokens: int = 32,
    ) -> None:
        self.simulator = simulator
        self.model = model
        self.images = images
        self.prompt_text_tokens = prompt_text_tokens

    def _request(self, output_tokens: int) -> InferenceRequest:
        return InferenceRequest(
            images=self.images,
            prompt_text_tokens=self.prompt_text_tokens,
            output_tokens=output_tokens,
        )

    def cc_stage_latency_s(
        self, output_tokens: int, cc_bandwidth_fraction: float
    ) -> float:
        """Encode + projector + prefill latency on the CC-clusters."""
        return cc_stage_latency(
            self.simulator,
            self.model,
            self._request(output_tokens),
            pool="cc",
            bandwidth_fraction=cc_bandwidth_fraction,
        )

    def mc_stage_latency_s(
        self,
        output_tokens: int,
        mc_bandwidth_fraction: float,
        *,
        batch_size: int = 1,
        keep_fraction: Optional[float] = None,
    ) -> float:
        """Decode latency of ``output_tokens`` steps on the MC-clusters.

        Batch decoding processes ``batch_size`` streams against each weight
        read: weight traffic and weight-dependent compute are shared across
        the batch while per-stream activations, KV-cache traffic and
        non-weight compute scale with the batch size.
        """
        if not 0.0 < mc_bandwidth_fraction <= 1.0:
            raise ValueError("mc_bandwidth_fraction must be in (0, 1]")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        request = self._request(output_tokens)
        workload = self.model.build_workload(request)
        decode = workload.phase("llm_decode")
        single = self.simulator.execute_phase(
            decode,
            pool="mc",
            bandwidth_fraction=mc_bandwidth_fraction,
            keep_fraction=keep_fraction,
        )
        if batch_size == 1:
            return single.latency_s
        # Split the single-stream result into weight-shared and per-stream
        # portions.  Weight bytes dominate decode traffic; they are read once
        # for the whole batch.  Compute scales with the batch (every stream's
        # GEMV runs), but decode is memory-bound so this rarely dominates.
        keep = self.simulator.effective_keep_fraction(keep_fraction)
        pruned_weight_bytes = decode.pruned_weight_bytes(keep)
        per_stream_bytes = single.dram_bytes - pruned_weight_bytes
        batch_bytes = pruned_weight_bytes + batch_size * per_stream_bytes
        batch_memory_cycles = self.simulator.memory_cycles(
            int(batch_bytes), "mc", mc_bandwidth_fraction
        )
        batch_compute_cycles = single.compute_cycles * batch_size
        cycles = max(batch_memory_cycles, batch_compute_cycles)
        return self.simulator.chip.cycles_to_seconds(cycles)

    def evaluate(
        self,
        output_tokens: int,
        *,
        cc_bandwidth_fraction: float = 0.5,
        batch_size: int = 1,
        keep_fraction: Optional[float] = None,
    ) -> PipelinePoint:
        """Evaluate the pipeline at one operating point."""
        if output_tokens <= 0:
            raise ValueError("output_tokens must be positive")
        cc_latency = self.cc_stage_latency_s(output_tokens, cc_bandwidth_fraction)
        if batch_size > 1:
            cc_latency *= batch_size
        mc_latency = self.mc_stage_latency_s(
            output_tokens,
            1.0 - cc_bandwidth_fraction,
            batch_size=batch_size,
            keep_fraction=keep_fraction,
        )
        return PipelinePoint(
            output_tokens=output_tokens,
            cc_bandwidth_fraction=cc_bandwidth_fraction,
            batch_size=batch_size,
            cc_stage_latency_s=cc_latency,
            mc_stage_latency_s=mc_latency,
        )

    def balanced_token_length(
        self, *, cc_bandwidth_fraction: float = 0.5, max_tokens: int = 4096
    ) -> int:
        """The expected token length ``le`` that balances the two stages.

        This is the largest output length whose decode latency does not
        exceed the CC-stage latency under the given bandwidth split.
        """
        cc_latency = self.cc_stage_latency_s(1, cc_bandwidth_fraction)
        per_token = self.mc_stage_latency_s(1, 1.0 - cc_bandwidth_fraction)
        if per_token == 0:
            return max_tokens
        return max(min(int(cc_latency // per_token), max_tokens), 1)
