"""Homogeneous chip variants: homo-CC and homo-MC (Fig. 11 comparisons).

Both variants keep the total cluster count of the default EdgeMM chip but
use only one cluster type, so the comparison isolates the benefit of
heterogeneity.  They are thin wrappers around the shared performance
simulator with the corresponding chip configuration.
"""

from __future__ import annotations

from typing import Optional

from ..core.config import SystemConfig, homo_cc_system, homo_mc_system
from ..core.simulator import PerformanceSimulator


def homo_cc_simulator(system: Optional[SystemConfig] = None) -> PerformanceSimulator:
    """Simulator for the homogeneous compute-centric chip."""
    return PerformanceSimulator(system or homo_cc_system())


def homo_mc_simulator(system: Optional[SystemConfig] = None) -> PerformanceSimulator:
    """Simulator for the homogeneous memory-centric chip."""
    return PerformanceSimulator(system or homo_mc_system())
