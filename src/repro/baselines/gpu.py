"""Laptop-GPU baseline (RTX 3060) roofline + utilisation model.

The paper compares EdgeMM against a laptop RTX 3060: 13 TFLOP/s FP32 peak
and 336 GB/s GDDR6 (Table II), arguing that the GPU's SM cores "often remain
underutilised" for edge MLLM workloads.  This model captures the effects the
paper's argument relies on:

* a compute-utilisation factor for GEMM-heavy phases (kernel tails,
  occupancy limits on small batch dimensions),
* a much lower effective-bandwidth utilisation for the decode phase's GEMV
  kernels (small kernels, poor L2 reuse, launch gaps between the hundreds
  of per-layer kernels),
* a fixed per-kernel launch overhead and a per-request host->device
  offloading cost (the data-offloading bottleneck of Hetegen [8]).

The model exposes ``execute_phase`` with the same result type as the EdgeMM
simulator so the profiler and experiment harnesses treat both uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.metrics import PhaseResult, WorkloadResult
from ..models.mllm import InferenceRequest, MLLMConfig
from ..models.ops import Op, OpKind, Phase, Workload


@dataclass(frozen=True)
class GPUConfig:
    """Parameters of the mobile-GPU baseline."""

    name: str = "rtx3060-laptop"
    peak_flops: float = 13.0e12
    memory_bandwidth_bytes_per_s: float = 336.0e9
    #: Average fraction of peak FLOP/s achieved by GEMM-heavy kernels.
    gemm_utilization: float = 0.45
    #: Average fraction of peak bandwidth achieved by decode GEMV kernels.
    gemv_bandwidth_utilization: float = 0.18
    #: Average fraction of peak bandwidth achieved by GEMM-phase traffic.
    gemm_bandwidth_utilization: float = 0.65
    #: Fixed launch overhead per operator (kernel launch + scheduling gap).
    kernel_launch_overhead_s: float = 4.0e-6
    #: One-time host->device offload cost per request (input staging).
    host_offload_overhead_s: float = 1.5e-3
    #: Board power used for the energy comparison (laptop 3060 ~ 80 W).
    board_power_w: float = 80.0

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or self.memory_bandwidth_bytes_per_s <= 0:
            raise ValueError("peak_flops and memory bandwidth must be positive")
        for label, value in (
            ("gemm_utilization", self.gemm_utilization),
            ("gemv_bandwidth_utilization", self.gemv_bandwidth_utilization),
            ("gemm_bandwidth_utilization", self.gemm_bandwidth_utilization),
        ):
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{label} must be in (0, 1]")
        if self.kernel_launch_overhead_s < 0 or self.host_offload_overhead_s < 0:
            raise ValueError("overheads must be >= 0")
        if self.board_power_w <= 0:
            raise ValueError("board_power_w must be positive")


class GPUModel:
    """Roofline + overhead model of the laptop GPU baseline."""

    def __init__(self, config: Optional[GPUConfig] = None) -> None:
        self.config = config or GPUConfig()

    # ------------------------------------------------------------------
    # Operator / phase execution
    # ------------------------------------------------------------------
    def op_latency_s(self, op: Op) -> float:
        cfg = self.config
        if op.kind in (OpKind.GEMV, OpKind.EMBEDDING):
            bandwidth = cfg.memory_bandwidth_bytes_per_s * cfg.gemv_bandwidth_utilization
            memory_s = op.total_bytes / bandwidth
            compute_s = op.flops / (cfg.peak_flops * cfg.gemm_utilization)
        elif op.kind in (OpKind.GEMM, OpKind.CONV, OpKind.ATTENTION):
            bandwidth = cfg.memory_bandwidth_bytes_per_s * cfg.gemm_bandwidth_utilization
            memory_s = op.total_bytes / bandwidth
            compute_s = op.flops / (cfg.peak_flops * cfg.gemm_utilization)
        else:
            bandwidth = cfg.memory_bandwidth_bytes_per_s * cfg.gemm_bandwidth_utilization
            memory_s = op.total_bytes / bandwidth
            compute_s = op.flops / (cfg.peak_flops * cfg.gemm_utilization)
        return max(memory_s, compute_s) + cfg.kernel_launch_overhead_s

    def execute_phase(self, phase: Phase, **_: object) -> PhaseResult:
        """Execute one phase; extra keyword arguments are accepted and ignored
        so the GPU model is interface-compatible with the EdgeMM simulator."""
        total_s = 0.0
        total_bytes = 0
        total_flops = 0
        compute_s = 0.0
        memory_s = 0.0
        cfg = self.config
        for op in phase.ops:
            latency = self.op_latency_s(op)
            total_s += latency
            total_bytes += op.total_bytes
            total_flops += op.flops
            compute_s += op.flops / (cfg.peak_flops * cfg.gemm_utilization)
            memory_s += op.total_bytes / cfg.memory_bandwidth_bytes_per_s
        repeat = phase.repeat
        return PhaseResult(
            name=phase.name,
            cycles=total_s * repeat * 1e9,  # report in GPU "ns-cycles" for uniformity
            compute_cycles=compute_s * repeat * 1e9,
            memory_cycles=memory_s * repeat * 1e9,
            latency_s=total_s * repeat,
            dram_bytes=int(total_bytes * repeat),
            flops=int(total_flops * repeat),
            op_count=repeat * len(phase.ops),
            cluster_kind="gpu",
        )

    def execute_workload(
        self, workload: Workload, *, output_tokens: Optional[int] = None
    ) -> WorkloadResult:
        phases: Dict[str, PhaseResult] = {}
        for index, phase in enumerate(workload.phases):
            result = self.execute_phase(phase)
            if index == 0:
                # Charge the host->device offload to the first phase.
                result = PhaseResult(
                    name=result.name,
                    cycles=result.cycles,
                    compute_cycles=result.compute_cycles,
                    memory_cycles=result.memory_cycles,
                    latency_s=result.latency_s + self.config.host_offload_overhead_s,
                    dram_bytes=result.dram_bytes,
                    flops=result.flops,
                    op_count=result.op_count,
                    cluster_kind=result.cluster_kind,
                )
            phases[phase.name] = result
        if output_tokens is None:
            decode = next((p for p in workload.phases if p.name == "llm_decode"), None)
            output_tokens = decode.repeat if decode is not None else 1
        return WorkloadResult(
            workload_name=workload.name,
            hardware_name=self.config.name,
            phases=phases,
            output_tokens=output_tokens,
            power_w=self.config.board_power_w,
        )

    def run_request(self, model: MLLMConfig, request: InferenceRequest) -> WorkloadResult:
        workload = model.build_workload(request)
        return self.execute_workload(workload, output_tokens=request.output_tokens)


def rtx3060_laptop() -> GPUModel:
    """The Table II comparison GPU with default calibration."""
    return GPUModel(GPUConfig())
