"""Baselines: laptop GPU, original Snitch cluster and homogeneous chips."""

from .gpu import GPUConfig, GPUModel, rtx3060_laptop
from .snitch import SnitchBaseline, SnitchChipConfig
from .homogeneous import homo_cc_simulator, homo_mc_simulator

__all__ = [
    "GPUConfig",
    "GPUModel",
    "rtx3060_laptop",
    "SnitchBaseline",
    "SnitchChipConfig",
    "homo_cc_simulator",
    "homo_mc_simulator",
]
