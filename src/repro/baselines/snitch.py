"""The original Snitch-cluster baseline (SIMD cores, no AI extension).

Fig. 11 of the paper normalises all designs against "the original snitch
cluster [43] including SIMD cores".  This model executes the same operator
workloads on a chip made only of Snitch clusters: matmuls run on the cores'
SIMD FPUs, and DRAM traffic goes through the same bandwidth model as EdgeMM
so the comparison isolates the benefit of the AI extensions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..arch.cluster import SnitchCluster, SnitchClusterConfig
from ..arch.dram import DRAMConfig, DRAMModel
from ..core.metrics import PhaseResult, WorkloadResult
from ..models.mllm import InferenceRequest, MLLMConfig
from ..models.ops import Op, OpKind, Phase, Workload


@dataclass(frozen=True)
class SnitchChipConfig:
    """A chip built only of baseline Snitch clusters."""

    n_clusters: int = 16
    cluster: SnitchClusterConfig = field(default_factory=SnitchClusterConfig)
    frequency_hz: float = 1.0e9
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    name: str = "snitch_baseline"

    def __post_init__(self) -> None:
        if self.n_clusters <= 0:
            raise ValueError("n_clusters must be positive")
        if self.frequency_hz <= 0:
            raise ValueError("frequency_hz must be positive")


class SnitchBaseline:
    """Performance model of the unextended multi-cluster Snitch chip."""

    def __init__(self, config: Optional[SnitchChipConfig] = None) -> None:
        self.config = config or SnitchChipConfig()
        self.cluster = SnitchCluster(self.config.cluster)
        self.dram = DRAMModel(self.config.dram)

    @property
    def name(self) -> str:
        return self.config.name

    def _compute_cycles(self, op: Op) -> float:
        n_clusters = self.config.n_clusters
        if op.kind in (OpKind.GEMM, OpKind.CONV, OpKind.ATTENTION):
            n_share = max(math.ceil(op.n / n_clusters), 1)
            return self.cluster.gemm_cycles(op.m, op.k, n_share)
        if op.kind in (OpKind.GEMV, OpKind.EMBEDDING):
            n_share = max(math.ceil(op.n / n_clusters), 1)
            return self.cluster.gemv_cycles(op.k, n_share)
        if op.kind in (OpKind.ELEMENTWISE, OpKind.SOFTMAX, OpKind.NORM, OpKind.ACTIVATION):
            elements = max(math.ceil(op.m / n_clusters), 1)
            flops_per_element = op.flops / op.m if op.m else 1.0
            return self.cluster.elementwise_cycles(elements, max(flops_per_element, 1.0))
        return 0.0

    def _memory_cycles(self, traffic_bytes: int, bandwidth_fraction: float = 1.0) -> float:
        if traffic_bytes <= 0:
            return 0.0
        buffer_bytes = self.cluster.data_memory_bytes
        transfers = self.dram.transfers_for(traffic_bytes, buffer_bytes)
        bytes_per_cycle = (
            self.config.dram.peak_bandwidth_bytes_per_s
            / self.config.frequency_hz
            * bandwidth_fraction
        )
        return (
            transfers * self.config.dram.request_overhead_cycles
            + traffic_bytes / bytes_per_cycle
        )

    def execute_phase(self, phase: Phase, **_: object) -> PhaseResult:
        total_compute = 0.0
        total_memory = 0.0
        total_cycles = 0.0
        total_bytes = 0
        total_flops = 0
        for op in phase.ops:
            compute = self._compute_cycles(op)
            memory = self._memory_cycles(op.total_bytes)
            total_compute += compute
            total_memory += memory
            total_cycles += max(compute, memory)
            total_bytes += op.total_bytes
            total_flops += op.flops
        repeat = phase.repeat
        latency_s = total_cycles * repeat / self.config.frequency_hz
        return PhaseResult(
            name=phase.name,
            cycles=total_cycles * repeat,
            compute_cycles=total_compute * repeat,
            memory_cycles=total_memory * repeat,
            latency_s=latency_s,
            dram_bytes=int(total_bytes * repeat),
            flops=int(total_flops * repeat),
            op_count=repeat * len(phase.ops),
            cluster_kind="snitch",
        )

    def execute_workload(
        self, workload: Workload, *, output_tokens: Optional[int] = None
    ) -> WorkloadResult:
        phases: Dict[str, PhaseResult] = {
            phase.name: self.execute_phase(phase) for phase in workload.phases
        }
        if output_tokens is None:
            decode = next((p for p in workload.phases if p.name == "llm_decode"), None)
            output_tokens = decode.repeat if decode is not None else 1
        return WorkloadResult(
            workload_name=workload.name,
            hardware_name=self.name,
            phases=phases,
            output_tokens=output_tokens,
            power_w=None,
        )

    def run_request(self, model: MLLMConfig, request: InferenceRequest) -> WorkloadResult:
        workload = model.build_workload(request)
        return self.execute_workload(workload, output_tokens=request.output_tokens)
