"""Stream-based batch decoding (Section IV-B, Fig. 9(c) and Fig. 13).

When the output token length grows beyond what bandwidth reallocation can
balance (``l > lb``), the CC-clusters encode and prefill a *batch* of
streaming requests back-to-back while the MC-clusters decode the whole batch
concurrently.  Decoding a batch re-uses every weight read across the batch,
so throughput rises almost linearly in the batch size while the per-request
latency grows only by the extra CC-stage passes and the per-stream decode
traffic.

The :class:`BatchPlanner` picks the smallest batch size that re-balances the
pipeline (or maximises throughput under a latency constraint).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.pipeline import PipelineModel, PipelinePoint


@dataclass(frozen=True)
class BatchDecision:
    """The batch size chosen for one output token length."""

    output_tokens: int
    batch_size: int
    point: PipelinePoint
    unbatched_point: PipelinePoint

    @property
    def throughput_gain(self) -> float:
        baseline = self.unbatched_point.tokens_per_second
        if baseline == 0:
            return 1.0
        return self.point.tokens_per_second / baseline

    @property
    def latency_overhead(self) -> float:
        """Fractional per-request latency increase relative to no batching."""
        baseline = self.unbatched_point.request_latency_s
        if baseline == 0:
            return 0.0
        return self.point.request_latency_s / baseline - 1.0


class BatchPlanner:
    """Chooses stream-batch sizes for long output lengths."""

    def __init__(
        self,
        pipeline: PipelineModel,
        *,
        candidate_batch_sizes: Sequence[int] = (1, 2, 4, 8, 16, 32),
        cc_bandwidth_fraction: float = 0.125,
        keep_fraction: Optional[float] = None,
    ) -> None:
        if not candidate_batch_sizes:
            raise ValueError("candidate_batch_sizes must not be empty")
        if any(size < 1 for size in candidate_batch_sizes):
            raise ValueError("batch sizes must be >= 1")
        if not 0.0 < cc_bandwidth_fraction < 1.0:
            raise ValueError("cc_bandwidth_fraction must be in (0, 1)")
        self.pipeline = pipeline
        self.candidates = tuple(sorted(set(candidate_batch_sizes)))
        self.cc_bandwidth_fraction = cc_bandwidth_fraction
        self.keep_fraction = keep_fraction

    def _evaluate(self, output_tokens: int, batch_size: int) -> PipelinePoint:
        return self.pipeline.evaluate(
            output_tokens,
            cc_bandwidth_fraction=self.cc_bandwidth_fraction,
            batch_size=batch_size,
            keep_fraction=self.keep_fraction,
        )

    def decide(
        self,
        output_tokens: int,
        *,
        max_latency_overhead: float = 0.5,
    ) -> BatchDecision:
        """Largest-throughput batch whose latency overhead stays acceptable.

        ``max_latency_overhead`` bounds the per-request latency increase
        relative to unbatched execution (the paper accepts ~42 % at
        l = 1024 in exchange for a ~14x throughput boost).
        """
        if output_tokens <= 0:
            raise ValueError("output_tokens must be positive")
        if max_latency_overhead < 0:
            raise ValueError("max_latency_overhead must be >= 0")
        unbatched = self._evaluate(output_tokens, 1)
        best_size = 1
        best_point = unbatched
        for size in self.candidates:
            if size == 1:
                continue
            point = self._evaluate(output_tokens, size)
            overhead = point.request_latency_s / unbatched.request_latency_s - 1.0
            if overhead > max_latency_overhead:
                continue
            if point.tokens_per_second > best_point.tokens_per_second:
                best_point = point
                best_size = size
        return BatchDecision(
            output_tokens=output_tokens,
            batch_size=best_size,
            point=best_point,
            unbatched_point=unbatched,
        )

    def sweep(
        self,
        output_token_lengths: Sequence[int],
        *,
        max_latency_overhead: float = 0.5,
    ) -> List[BatchDecision]:
        if not output_token_lengths:
            raise ValueError("output_token_lengths must not be empty")
        return [
            self.decide(length, max_latency_overhead=max_latency_overhead)
            for length in output_token_lengths
        ]

    def balance_batch_size(self, output_tokens: int) -> int:
        """Smallest batch size whose CC stage is no shorter than the MC stage.

        Beyond this size the pipeline becomes CC-bound and further batching
        only adds latency without throughput benefit.
        """
        if output_tokens <= 0:
            raise ValueError("output_tokens must be positive")
        for size in self.candidates:
            point = self._evaluate(output_tokens, size)
            if point.cc_stage_latency_s >= point.mc_stage_latency_s:
                return size
        return self.candidates[-1]
