"""Phase-to-cluster scheduling and the combined runtime policy.

The scheduler ties the pieces together:

* it assigns MLLM phases to cluster pools (encoder/projector/prefill ->
  CC-clusters, decode -> MC-clusters), which the paper states is optimal
  for the heterogeneous chip;
* for a stream with a given output token length it consults the
  :class:`~repro.scheduling.bandwidth.BandwidthManager` and, past the
  reallocation limit, the :class:`~repro.scheduling.batching.BatchPlanner`,
  producing a single :class:`Schedule` describing how the stream should run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..core.pipeline import PipelineModel, PipelinePoint
from .bandwidth import BandwidthDecision, BandwidthManager
from .batching import BatchDecision, BatchPlanner


#: The static phase -> pool assignment of the heterogeneous chip.
DEFAULT_PHASE_ASSIGNMENT: Dict[str, str] = {
    "vision_encoder": "cc",
    "projector": "cc",
    "llm_prefill": "cc",
    "llm_decode": "mc",
}


def phase_pool(phase_name: str) -> str:
    """Pool assignment of a phase (defaults to CC for unknown phases)."""
    return DEFAULT_PHASE_ASSIGNMENT.get(phase_name, "cc")


@dataclass(frozen=True)
class Schedule:
    """The runtime decision for one stream."""

    output_tokens: int
    cc_bandwidth_fraction: float
    batch_size: int
    point: PipelinePoint
    used_batching: bool

    @property
    def tokens_per_second(self) -> float:
        return self.point.tokens_per_second

    @property
    def request_latency_s(self) -> float:
        return self.point.request_latency_s


class TokenLengthScheduler:
    """Combined bandwidth-reallocation + batch-decoding policy."""

    def __init__(
        self,
        pipeline: PipelineModel,
        *,
        keep_fraction: Optional[float] = None,
        candidate_cc_fractions: Optional[Sequence[float]] = None,
        candidate_batch_sizes: Optional[Sequence[int]] = None,
        max_latency_overhead: float = 0.5,
    ) -> None:
        bandwidth_kwargs = {}
        if candidate_cc_fractions is not None:
            bandwidth_kwargs["candidate_cc_fractions"] = candidate_cc_fractions
        self.bandwidth = BandwidthManager(
            pipeline, keep_fraction=keep_fraction, **bandwidth_kwargs
        )
        batch_kwargs = {}
        if candidate_batch_sizes is not None:
            batch_kwargs["candidate_batch_sizes"] = candidate_batch_sizes
        self.batching = BatchPlanner(
            pipeline,
            keep_fraction=keep_fraction,
            cc_bandwidth_fraction=min(self.bandwidth.candidates),
            **batch_kwargs,
        )
        self.pipeline = pipeline
        self.max_latency_overhead = max_latency_overhead

    def schedule(self, output_tokens: int) -> Schedule:
        """Decide how a stream with the given output length should run."""
        if output_tokens <= 0:
            raise ValueError("output_tokens must be positive")
        bandwidth_decision: BandwidthDecision = self.bandwidth.decide(output_tokens)
        limit = self.bandwidth.reallocation_limit_length()
        if output_tokens <= limit:
            return Schedule(
                output_tokens=output_tokens,
                cc_bandwidth_fraction=bandwidth_decision.cc_fraction,
                batch_size=1,
                point=bandwidth_decision.point,
                used_batching=False,
            )
        batch_decision: BatchDecision = self.batching.decide(
            output_tokens, max_latency_overhead=self.max_latency_overhead
        )
        if batch_decision.batch_size == 1:
            return Schedule(
                output_tokens=output_tokens,
                cc_bandwidth_fraction=bandwidth_decision.cc_fraction,
                batch_size=1,
                point=bandwidth_decision.point,
                used_batching=False,
            )
        return Schedule(
            output_tokens=output_tokens,
            cc_bandwidth_fraction=self.batching.cc_bandwidth_fraction,
            batch_size=batch_decision.batch_size,
            point=batch_decision.point,
            used_batching=True,
        )

    def sweep(self, output_token_lengths: Sequence[int]) -> Dict[int, Schedule]:
        """Schedules across a range of output lengths (Fig. 13 sweep)."""
        if not output_token_lengths:
            raise ValueError("output_token_lengths must not be empty")
        return {length: self.schedule(length) for length in output_token_lengths}
