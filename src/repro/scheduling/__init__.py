"""Token-length-driven bandwidth management, batching and scheduling."""

from .bandwidth import (
    BandwidthDecision,
    BandwidthManager,
    DEFAULT_CC_FRACTIONS,
)
from .batching import BatchDecision, BatchPlanner
from .stream import (
    RequestTiming,
    StreamReport,
    StreamRequest,
    StreamSimulator,
)
from .scheduler import (
    DEFAULT_PHASE_ASSIGNMENT,
    Schedule,
    TokenLengthScheduler,
    phase_pool,
)

__all__ = [
    "BandwidthDecision",
    "BandwidthManager",
    "DEFAULT_CC_FRACTIONS",
    "BatchDecision",
    "BatchPlanner",
    "RequestTiming",
    "StreamReport",
    "StreamRequest",
    "StreamSimulator",
    "DEFAULT_PHASE_ASSIGNMENT",
    "Schedule",
    "TokenLengthScheduler",
    "phase_pool",
]
