"""Token-length-driven bandwidth management (Section IV-B, Fig. 13).

The policy observes (or is told) the output token length ``l`` of the
current stream and picks the DMA budget ratio ``Bc : Bm`` between CC- and
MC-clusters so the two pipeline stages stay balanced:

* for ``l < le`` (the expected balanced length) the CC stage dominates and
  equal sharing is already fine;
* as ``l`` grows past ``le`` the decode stage lengthens, so bandwidth is
  progressively reallocated from the CC- to the MC-clusters (ratios of
  1:1 -> 1:3 -> 1:7 in the paper);
* past the reallocation limit ``lb`` batch decoding takes over (see
  ``repro.scheduling.batching``).

The policy searches the candidate ratios with the pipeline model and keeps
the one minimising request latency (equivalently, balancing the stages).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..arch.dma import BandwidthBudget, allocate_fair_shares
from ..core.pipeline import PipelineModel, PipelinePoint


#: Candidate Bc:Bm ratios, expressed as the CC fraction of total bandwidth.
#: 0.5 is equal sharing (1:1); 0.25 and 0.125 are the 1:3 and 1:7
#: reallocations the paper reports.
DEFAULT_CC_FRACTIONS: Tuple[float, ...] = (0.5, 0.25, 0.125)


@dataclass(frozen=True)
class BandwidthDecision:
    """The bandwidth allocation chosen for one output token length."""

    output_tokens: int
    cc_fraction: float
    point: PipelinePoint
    baseline_point: PipelinePoint

    @property
    def bc_to_bm_ratio(self) -> Tuple[int, int]:
        """The Bc:Bm ratio in smallest integer terms (e.g. (1, 3))."""
        cc = self.cc_fraction
        mc = 1.0 - cc
        if cc == 0:
            return (0, 1)
        ratio = mc / cc
        return (1, int(round(ratio)))

    @property
    def latency_reduction(self) -> float:
        """Fractional latency reduction vs equal bandwidth sharing."""
        baseline = self.baseline_point.request_latency_s
        if baseline == 0:
            return 0.0
        return 1.0 - self.point.request_latency_s / baseline

    @property
    def throughput_gain(self) -> float:
        """Throughput multiplier vs equal bandwidth sharing."""
        baseline = self.baseline_point.tokens_per_second
        if baseline == 0:
            return 1.0
        return self.point.tokens_per_second / baseline


class BandwidthManager:
    """Chooses the Bc:Bm split per output token length using the pipeline model."""

    def __init__(
        self,
        pipeline: PipelineModel,
        *,
        candidate_cc_fractions: Sequence[float] = DEFAULT_CC_FRACTIONS,
        keep_fraction: Optional[float] = None,
    ) -> None:
        if not candidate_cc_fractions:
            raise ValueError("candidate_cc_fractions must not be empty")
        for fraction in candidate_cc_fractions:
            if not 0.0 < fraction < 1.0:
                raise ValueError("cc fractions must be in (0, 1)")
        self.pipeline = pipeline
        self.candidates = tuple(sorted(set(candidate_cc_fractions), reverse=True))
        self.keep_fraction = keep_fraction

    def decide(self, output_tokens: int, *, batch_size: int = 1) -> BandwidthDecision:
        """Pick the allocation minimising request latency for one length."""
        if output_tokens <= 0:
            raise ValueError("output_tokens must be positive")
        baseline = self.pipeline.evaluate(
            output_tokens,
            cc_bandwidth_fraction=0.5,
            batch_size=batch_size,
            keep_fraction=self.keep_fraction,
        )
        best_fraction = 0.5
        best_point = baseline
        for fraction in self.candidates:
            point = self.pipeline.evaluate(
                output_tokens,
                cc_bandwidth_fraction=fraction,
                batch_size=batch_size,
                keep_fraction=self.keep_fraction,
            )
            if point.request_latency_s < best_point.request_latency_s:
                best_point = point
                best_fraction = fraction
        return BandwidthDecision(
            output_tokens=output_tokens,
            cc_fraction=best_fraction,
            point=best_point,
            baseline_point=baseline,
        )

    def sweep(
        self, output_token_lengths: Sequence[int], *, batch_size: int = 1
    ) -> List[BandwidthDecision]:
        """Decisions across a range of output token lengths (Fig. 13)."""
        if not output_token_lengths:
            raise ValueError("output_token_lengths must not be empty")
        return [self.decide(length, batch_size=batch_size) for length in output_token_lengths]

    def expected_balanced_length(self) -> int:
        """The paper's ``le``: the length balancing the stages at equal sharing."""
        return self.pipeline.balanced_token_length(cc_bandwidth_fraction=0.5)

    def reallocation_limit_length(self) -> int:
        """The paper's ``lb``: the length balancing the stages at the most
        aggressive reallocation the policy considers."""
        min_cc = min(self.candidates)
        return self.pipeline.balanced_token_length(cc_bandwidth_fraction=min_cc)

    def budgets_for(
        self,
        decision: BandwidthDecision,
        *,
        total_bytes_per_cycle: float,
        interval_cycles: int = 100_000,
    ) -> dict:
        """Concrete per-cluster DMA budgets implementing a decision.

        Returns ``{"cc": BandwidthBudget, "mc": BandwidthBudget}`` whose
        byte budgets realise the chosen Bc:Bm ratio over the PMC interval.
        """
        shares = allocate_fair_shares(
            total_bytes_per_cycle,
            {"cc": decision.cc_fraction, "mc": 1.0 - decision.cc_fraction},
        )
        return {
            name: BandwidthBudget(
                budget_bytes=int(share * interval_cycles),
                interval_cycles=interval_cycles,
            )
            for name, share in shares.items()
        }
