"""Stream-level simulation of the two-stage EdgeMM pipeline.

The pipeline model in :mod:`repro.core.pipeline` reports steady-state
latency and throughput.  Real-time deployments (the paper's AD / robot /
AR-VR scenarios) additionally care about queueing behaviour under a given
request arrival rate: does the pipeline keep up with the camera frame rate,
how much waiting time do requests accumulate, and how busy is each stage?

:class:`StreamSimulator` plays a trace of request arrivals through the
two-stage pipeline (CC stage: encode + projector + prefill; MC stage:
decode), respecting the chosen bandwidth split and batch size, and reports
per-request timing plus stage utilisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.pipeline import PipelineModel


@dataclass(frozen=True)
class StreamRequest:
    """One request in the input stream."""

    arrival_s: float
    output_tokens: int

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be >= 0")
        if self.output_tokens <= 0:
            raise ValueError("output_tokens must be positive")


@dataclass(frozen=True)
class RequestTiming:
    """Completion record of one request."""

    request: StreamRequest
    cc_start_s: float
    cc_end_s: float
    mc_start_s: float
    mc_end_s: float

    @property
    def latency_s(self) -> float:
        """Arrival-to-last-token latency, including queueing."""
        return self.mc_end_s - self.request.arrival_s

    @property
    def queueing_s(self) -> float:
        """Time spent waiting before the CC stage starts."""
        return self.cc_start_s - self.request.arrival_s

    @property
    def service_s(self) -> float:
        """Pure service time (CC stage + MC stage, excluding waits)."""
        return (self.cc_end_s - self.cc_start_s) + (self.mc_end_s - self.mc_start_s)


@dataclass(frozen=True)
class StreamReport:
    """Aggregate results of one stream simulation."""

    timings: List[RequestTiming]
    cc_busy_s: float
    mc_busy_s: float
    makespan_s: float

    @property
    def n_requests(self) -> int:
        return len(self.timings)

    @property
    def mean_latency_s(self) -> float:
        if not self.timings:
            return 0.0
        return sum(t.latency_s for t in self.timings) / len(self.timings)

    @property
    def p95_latency_s(self) -> float:
        if not self.timings:
            return 0.0
        ordered = sorted(t.latency_s for t in self.timings)
        index = min(int(round(0.95 * (len(ordered) - 1))), len(ordered) - 1)
        return ordered[index]

    @property
    def mean_queueing_s(self) -> float:
        if not self.timings:
            return 0.0
        return sum(t.queueing_s for t in self.timings) / len(self.timings)

    @property
    def cc_utilization(self) -> float:
        return self.cc_busy_s / self.makespan_s if self.makespan_s else 0.0

    @property
    def mc_utilization(self) -> float:
        return self.mc_busy_s / self.makespan_s if self.makespan_s else 0.0

    @property
    def tokens_per_second(self) -> float:
        if self.makespan_s == 0:
            return 0.0
        total_tokens = sum(t.request.output_tokens for t in self.timings)
        return total_tokens / self.makespan_s

    @property
    def requests_per_second(self) -> float:
        if self.makespan_s == 0:
            return 0.0
        return self.n_requests / self.makespan_s


class StreamSimulator:
    """Plays request arrivals through the two-stage pipeline."""

    def __init__(
        self,
        pipeline: PipelineModel,
        *,
        cc_bandwidth_fraction: float = 0.5,
        keep_fraction: Optional[float] = None,
    ) -> None:
        if not 0.0 < cc_bandwidth_fraction < 1.0:
            raise ValueError("cc_bandwidth_fraction must be in (0, 1)")
        self.pipeline = pipeline
        self.cc_bandwidth_fraction = cc_bandwidth_fraction
        self.keep_fraction = keep_fraction
        self._cc_latency_cache: dict = {}
        self._mc_latency_cache: dict = {}

    # ------------------------------------------------------------------
    # Stage service times (cached per output length)
    # ------------------------------------------------------------------
    def _cc_service_s(self, output_tokens: int) -> float:
        if output_tokens not in self._cc_latency_cache:
            self._cc_latency_cache[output_tokens] = self.pipeline.cc_stage_latency_s(
                output_tokens, self.cc_bandwidth_fraction
            )
        return self._cc_latency_cache[output_tokens]

    def _mc_service_s(self, output_tokens: int) -> float:
        if output_tokens not in self._mc_latency_cache:
            self._mc_latency_cache[output_tokens] = self.pipeline.mc_stage_latency_s(
                output_tokens,
                1.0 - self.cc_bandwidth_fraction,
                keep_fraction=self.keep_fraction,
            )
        return self._mc_latency_cache[output_tokens]

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(self, requests: Sequence[StreamRequest]) -> StreamReport:
        """Run a trace of requests through the pipeline (FIFO per stage)."""
        if not requests:
            raise ValueError("requests must not be empty")
        ordered = sorted(requests, key=lambda request: request.arrival_s)
        cc_free_at = 0.0
        mc_free_at = 0.0
        cc_busy = 0.0
        mc_busy = 0.0
        timings: List[RequestTiming] = []
        for request in ordered:
            cc_service = self._cc_service_s(request.output_tokens)
            mc_service = self._mc_service_s(request.output_tokens)
            cc_start = max(request.arrival_s, cc_free_at)
            cc_end = cc_start + cc_service
            mc_start = max(cc_end, mc_free_at)
            mc_end = mc_start + mc_service
            cc_free_at = cc_end
            mc_free_at = mc_end
            cc_busy += cc_service
            mc_busy += mc_service
            timings.append(
                RequestTiming(
                    request=request,
                    cc_start_s=cc_start,
                    cc_end_s=cc_end,
                    mc_start_s=mc_start,
                    mc_end_s=mc_end,
                )
            )
        makespan = timings[-1].mc_end_s - ordered[0].arrival_s
        return StreamReport(
            timings=timings,
            cc_busy_s=cc_busy,
            mc_busy_s=mc_busy,
            makespan_s=makespan,
        )

    def simulate_periodic(
        self, n_requests: int, period_s: float, output_tokens: int
    ) -> StreamReport:
        """Simulate a periodic stream (e.g. one request per camera frame)."""
        if n_requests <= 0:
            raise ValueError("n_requests must be positive")
        if period_s < 0:
            raise ValueError("period_s must be >= 0")
        requests = [
            StreamRequest(arrival_s=index * period_s, output_tokens=output_tokens)
            for index in range(n_requests)
        ]
        return self.simulate(requests)

    def sustainable_period_s(self, output_tokens: int) -> float:
        """Shortest arrival period the pipeline sustains without backlog.

        This is the slower of the two stage service times — the pipeline
        interval of the steady-state model.
        """
        return max(self._cc_service_s(output_tokens), self._mc_service_s(output_tokens))
