"""Branch-and-bound design pruning over nested subgrids of the chip axes.

The flat planner (:func:`repro.planner.prune.prune_designs`) prices the
analytic service-time floor of *every* chip design in the candidate space
— linear in the grid size, and the dominant cost once the space reaches
10^5 candidates.  This module prunes whole *subgrids* instead, using the
monotonicity of the analytic bounds along each chip axis:

* more groups never slow a chip down (``n_groups`` ↑ ⇒ bounds ↓),
* a faster DRAM tier never slows a chip down (``dram_gbps`` ↑ ⇒ bounds ↓),
* keeping fewer FFN channels never slows a chip down
  (``keep_fraction`` ↓ ⇒ bounds ↓),

while the CC:MC cluster *mix* is deliberately non-monotone (the paper's
central trade-off) and is enumerated, never bounded.  A subgrid's
best-case design is therefore its **corner** — maximum groups, maximum
DRAM tier, minimum keep fraction — and the corner's bound percentile is a
lower bound on every member's: if the corner already misses an SLO
objective, the whole subgrid (and every fleet option built on any of its
designs, because the bounds hold for fleets of any size and policy) is
provably infeasible after pricing *one* design.

The search keeps a worklist of subgrids, prices all pending corners of one
tree level in a single vectorized
:meth:`~repro.core.batch.ServiceTimeBoundsPricer.bounds` pass ("wave"),
prunes boxes whose corner misses, and splits the survivors along their
longest axis.  Boxes that narrow to a single design are priced exactly as
the flat path would price them, so the surviving design set — and with it
the simulated candidates, the Pareto frontier and the best plan — is
*identical* to flat search (property-tested in
``tests/planner/test_bnb.py``).  Corner bounds are cached by axis value,
so a child whose corner coincides with its parent's re-uses the parent's
evaluation.

Fleet options sit innermost and never enter the tree: analytic bounds are
fleet-independent, so pruning a design retires all its fleet options at
once, and enumerating options is deferred until a design survives.

Soundness of the corner rule (corner bound ≤ every member's bound, per
request shape) is asserted by the hypothesis suite over randomized
subgrids; the monotonicity argument per axis is documented in
``docs/capacity_planning.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.batch import ServiceTimeBoundsPricer
from ..scenarios.compile import CompiledScenario
from .prune import (
    BOUND_CHUNK_DESIGNS,
    DesignBounds,
    bound_percentiles,
    design_verdict,
    trace_pricer,
)
from .space import BASE_DRAM_GBPS, ChipDesign

#: A corner's cache identity: (mix, n_groups, dram GB/s, keep fraction).
CornerKey = Tuple[Tuple[int, int], int, float, float]

#: A design's axis values as a positional tuple — the same values as
#: :meth:`ChipDesign.axes` but allocation-light, since the search touches
#: every design of a 10^5-point grid once while boxing it.
AxisTuple = Tuple[Tuple[int, int], int, float, float]

#: Position of each splittable axis inside an :data:`AxisTuple`.
_AXIS_SLOT = {"n_groups": 1, "dram_gbps": 2, "keep_fraction": 3}


def axis_tuple(design: ChipDesign) -> AxisTuple:
    """``design``'s (mix, groups, dram, keep) values (defaults resolved).

    Equivalent to :meth:`ChipDesign.axes` but built from the attributes
    directly — no per-design dict.
    """
    return (
        (design.cc_per_group, design.mc_per_group),
        design.n_groups,
        BASE_DRAM_GBPS if design.dram_gbps is None else design.dram_gbps,
        1.0 if design.keep_fraction is None else design.keep_fraction,
    )


@dataclass(frozen=True)
class Subgrid:
    """One box of the nested-grid search: axis value ranges plus members.

    ``groups`` / ``dram`` / ``keep`` are the sorted unique axis values the
    box spans; ``members`` indexes the planning run's design list.  The
    mix axis is fixed per box (enumerated at the root, never split).
    Boxes over ragged grids are supported: members are tracked explicitly,
    so a box may cover axis-value combinations no design occupies.
    """

    mix: Tuple[int, int]
    groups: Tuple[int, ...]
    dram: Tuple[float, ...]
    keep: Tuple[float, ...]
    members: Tuple[int, ...]

    @property
    def n_designs(self) -> int:
        """Number of candidate designs inside the box."""
        return len(self.members)

    @property
    def is_pointlike(self) -> bool:
        """True when every axis is a single value (no further splits)."""
        return len(self.groups) == 1 and len(self.dram) == 1 and len(self.keep) == 1

    def corner_key(self) -> CornerKey:
        """The best-case corner's axis values (cache identity)."""
        return (self.mix, max(self.groups), max(self.dram), min(self.keep))

    def corner_design(self) -> ChipDesign:
        """The best-case member of the box: fastest value on every axis.

        Synthesized from axis values, so it is a valid probe even when the
        grid is ragged and no member occupies the corner — monotonicity
        makes its bound a floor for the box either way.
        """
        return ChipDesign(
            n_groups=max(self.groups),
            cc_per_group=self.mix[0],
            mc_per_group=self.mix[1],
            dram_gbps=max(self.dram),
            keep_fraction=min(self.keep),
        )

    def split(self, axes_of: Sequence[AxisTuple]) -> List["Subgrid"]:
        """Halve the longest axis and partition the members.

        ``axes_of`` maps design index -> :data:`AxisTuple`.  Children
        without members are dropped, so ragged grids narrow quickly.
        Geometry splits first on ties — the outermost axis of the nesting.
        """
        sizes = {
            "n_groups": len(self.groups),
            "dram_gbps": len(self.dram),
            "keep_fraction": len(self.keep),
        }
        axis = max(sizes, key=lambda name: (sizes[name], name == "n_groups"))
        values = {
            "n_groups": self.groups,
            "dram_gbps": self.dram,
            "keep_fraction": self.keep,
        }[axis]
        if len(values) < 2:
            raise ValueError("cannot split a point-like subgrid")
        slot = _AXIS_SLOT[axis]
        mid = len(values) // 2
        halves = (values[:mid], values[mid:])
        children: List[Subgrid] = []
        for half in halves:
            allowed = set(half)
            members = tuple(
                index for index in self.members if axes_of[index][slot] in allowed
            )
            if not members:
                continue
            children.append(
                Subgrid(
                    mix=self.mix,
                    groups=half if axis == "n_groups" else self.groups,
                    dram=half if axis == "dram_gbps" else self.dram,
                    keep=half if axis == "keep_fraction" else self.keep,
                    members=members,
                )
            )
        return children


@dataclass(frozen=True)
class BnbResult:
    """Outcome of one branch-and-bound pruning pass.

    ``verdicts`` holds individually-priced designs only (boxes that
    narrowed to one point), in design-list order — unlike flat search,
    designs retired inside a pruned subgrid never receive per-design
    bounds, which is exactly where the speedup comes from.
    """

    verdicts: Tuple[DesignBounds, ...]
    survivors: Tuple[ChipDesign, ...]
    n_pruned_designs: int
    n_pruned_subgrids: int
    n_bound_evals: int


def initial_subgrids(
    designs: Sequence[ChipDesign],
    axes_of: Optional[Sequence[AxisTuple]] = None,
) -> List[Subgrid]:
    """One root box per CC:MC mix, spanning the mix's full axis ranges.

    ``designs`` is the planning run's design list; ``axes_of`` optionally
    supplies the precomputed :data:`AxisTuple` per design (derived from
    ``designs`` when omitted).
    """
    if axes_of is None:
        axes_of = [axis_tuple(design) for design in designs]
    by_mix: Dict[Tuple[int, int], List[int]] = {}
    for index, axes in enumerate(axes_of):
        by_mix.setdefault(axes[0], []).append(index)
    boxes: List[Subgrid] = []
    for mix in sorted(by_mix):
        members = by_mix[mix]
        boxes.append(
            Subgrid(
                mix=mix,
                groups=tuple(sorted({axes_of[i][1] for i in members})),
                dram=tuple(sorted({axes_of[i][2] for i in members})),
                keep=tuple(sorted({axes_of[i][3] for i in members})),
                members=tuple(members),
            )
        )
    return boxes


def _corner_misses(
    lb_ttft_p99: float, lb_latency_p95: float, targets: Mapping[str, float]
) -> bool:
    """True when the corner's bound percentiles already miss an objective."""
    ttft_target = targets.get("ttft_p99_s")
    if ttft_target is not None and lb_ttft_p99 > ttft_target:
        return True
    latency_target = targets.get("latency_p95_s")
    return latency_target is not None and lb_latency_p95 > latency_target


def bnb_prune_designs(
    compiled: CompiledScenario,
    designs: Sequence[ChipDesign],
    targets: Mapping[str, float],
    *,
    pricer: Optional[ServiceTimeBoundsPricer] = None,
) -> BnbResult:
    """Branch-and-bound the design grid down to the flat survivor set.

    ``compiled`` is the scenario the ``designs`` are judged on (its trace
    prices the bounds), ``targets`` the SLO objectives, and ``pricer`` an
    optional pre-built :class:`ServiceTimeBoundsPricer` to reuse across
    calls (built from ``compiled`` when omitted).

    Returns the same surviving designs (and, for each individually-priced
    design, the same :class:`DesignBounds` floats) that
    :func:`~repro.planner.prune.prune_designs` would return, pricing only
    subgrid corners plus point-like leaves.  With no prunable objective in
    ``targets`` the search degenerates to pricing every design — flat
    search with extra bookkeeping — so callers should prefer flat search
    for unconstrained plans.
    """
    if pricer is None:
        pricer = trace_pricer(compiled)
    columns = pricer.trace_columns(compiled.trace)
    axes_of = [axis_tuple(design) for design in designs]

    boxes = initial_subgrids(designs, axes_of)
    bound_cache: Dict[CornerKey, Tuple[float, float]] = {}
    verdicts: Dict[int, DesignBounds] = {}
    n_pruned_subgrids = 0
    n_bound_evals = 0

    while boxes:
        # One wave: price every uncached corner of the current level in a
        # single vectorized pass (chunked only to bound matrix memory).
        pending: Dict[CornerKey, ChipDesign] = {}
        for box in boxes:
            key = box.corner_key()
            if key not in bound_cache and key not in pending:
                # Point-like boxes price their actual member (identical
                # axis values, and the verdict must carry the member).
                if box.is_pointlike and box.members:
                    pending[key] = designs[box.members[0]]
                else:
                    pending[key] = box.corner_design()
        if pending:
            keys = list(pending)
            probes = [pending[key] for key in keys]
            for start in range(0, len(probes), BOUND_CHUNK_DESIGNS):
                chunk_keys = keys[start : start + BOUND_CHUNK_DESIGNS]
                chunk = probes[start : start + BOUND_CHUNK_DESIGNS]
                lb_ttft, lb_latency = bound_percentiles(pricer, columns, chunk)
                for row, key in enumerate(chunk_keys):
                    bound_cache[key] = (
                        float(lb_ttft[row]),
                        float(lb_latency[row]),
                    )
            n_bound_evals += len(probes)

        next_boxes: List[Subgrid] = []
        for box in boxes:
            lb_ttft_p99, lb_latency_p95 = bound_cache[box.corner_key()]
            if box.is_pointlike:
                # The corner IS the design: its bound is exact per-design
                # pricing, so the verdict matches flat search bit for bit.
                for index in box.members:
                    verdicts[index] = design_verdict(
                        designs[index], lb_ttft_p99, lb_latency_p95, targets
                    )
                continue
            if _corner_misses(lb_ttft_p99, lb_latency_p95, targets):
                # The whole subgrid is provably infeasible: every member's
                # floor dominates the corner's, which already misses.
                n_pruned_subgrids += 1
                continue
            next_boxes.extend(box.split(axes_of))
        boxes = next_boxes

    ordered = tuple(verdicts[index] for index in sorted(verdicts))
    survivors = tuple(
        verdict.design for verdict in ordered if verdict.feasible
    )
    return BnbResult(
        verdicts=ordered,
        survivors=survivors,
        n_pruned_designs=len(designs) - len(survivors),
        n_pruned_subgrids=n_pruned_subgrids,
        n_bound_evals=n_bound_evals,
    )
