"""Structured plan reports with a canonical JSON form.

:class:`PlanReport` is the artifact a planning run emits: the scenario and
planner-config identity (hashed into ``plan_hash``), the SLO targets the
search was judged against, the candidate-space accounting (how many designs
the analytic bounds pruned, how many candidates were exactly simulated),
the per-design bound verdicts, the Pareto frontier over the simulated
candidates and the cheapest fully-SLO-meeting plan.  Its
:meth:`~PlanReport.to_json` rendering is canonical — key-sorted, 2-space
indented, trailing newline — and fully determined by the scenario spec and
planner config, so golden plan reports assert byte identity the same way
scenario reports do.  :meth:`PlanReport.from_json` round-trips the
canonical form byte-identically (regression-tested).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..arch.area_power import AreaPowerModel
from ..scenarios.report import SLOCheck
from .evaluate import CandidateOutcome
from .prune import DesignBounds
from .space import ChipDesign, FleetOption, PlannerConfig


def chip_cost(design: ChipDesign) -> Tuple[float, float]:
    """Analytic per-chip (area mm², peak-power W) of a design point."""
    model = AreaPowerModel(design.system().chip)
    return model.chip_area_mm2(), model.power_report(1.0).total_mw / 1e3


@dataclass(frozen=True)
class PlanEntry:
    """One exactly-simulated candidate with its cost and SLO verdicts.

    ``chips_provisioned`` (peak chips for autoscaled fleets) scales the
    per-chip silicon cost into ``fleet_area_mm2`` and ``fleet_power_w``;
    ``slo`` holds one verdict per stated objective and ``slo_attainment``
    the met fraction (1.0 when no objectives are stated).
    """

    design: ChipDesign
    option: FleetOption
    chips_provisioned: int
    chip_area_mm2: float
    fleet_area_mm2: float
    fleet_power_w: float
    ttft_p99_s: float
    latency_p95_s: float
    queue_wait_p99_s: float
    n_completed: int
    makespan_s: float
    slo: Tuple[SLOCheck, ...]
    slo_attainment: float
    n_scale_events: int = 0
    #: Verdict of the one-chip-loss chaos probe; ``None`` (the default,
    #: omitted from the serialized form) when the planning run did not
    #: require chip-loss survival, so historical goldens stay byte-stable.
    survives_chip_loss: Optional[bool] = None

    @property
    def slo_met(self) -> bool:
        """True when every stated objective is met (vacuously if none)."""
        return all(check.met for check in self.slo)

    def objectives(self) -> Tuple[float, float, float, float]:
        """The maximization vector Pareto dominance ranks entries by.

        (SLO attainment, −chip count, −fleet area, −fleet power): a plan
        dominates another when it attains at least as much of the SLO with
        no more chips, silicon or power, and improves at least one axis.
        """
        return (
            self.slo_attainment,
            -float(self.chips_provisioned),
            -self.fleet_area_mm2,
            -self.fleet_power_w,
        )

    @classmethod
    def from_outcome(
        cls, outcome: CandidateOutcome, targets: Mapping[str, float]
    ) -> "PlanEntry":
        """Fold a simulation outcome and the SLO targets into an entry."""
        attained = {
            "ttft_p99_s": outcome.ttft_p99_s,
            "latency_p95_s": outcome.latency_p95_s,
            "queue_wait_p99_s": outcome.queue_wait_p99_s,
        }
        checks = tuple(
            SLOCheck(metric=metric, target_s=target, attained_s=attained[metric])
            for metric, target in sorted(targets.items())
        )
        attainment = (
            sum(1 for check in checks if check.met) / len(checks) if checks else 1.0
        )
        area, power = chip_cost(outcome.design)
        return cls(
            design=outcome.design,
            option=outcome.option,
            chips_provisioned=outcome.chips_provisioned,
            chip_area_mm2=area,
            fleet_area_mm2=area * outcome.chips_provisioned,
            fleet_power_w=power * outcome.chips_provisioned,
            ttft_p99_s=outcome.ttft_p99_s,
            latency_p95_s=outcome.latency_p95_s,
            queue_wait_p99_s=outcome.queue_wait_p99_s,
            n_completed=outcome.n_completed,
            makespan_s=outcome.makespan_s,
            slo=checks,
            slo_attainment=attainment,
            n_scale_events=outcome.n_scale_events,
        )

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the entry (survival verdict only when probed)."""
        data: Dict[str, Any] = {
            "design": self.design.to_dict(),
            "fleet": self.option.to_dict(),
            "chips_provisioned": self.chips_provisioned,
            "chip_area_mm2": self.chip_area_mm2,
            "fleet_area_mm2": self.fleet_area_mm2,
            "fleet_power_w": self.fleet_power_w,
            "ttft_p99_s": self.ttft_p99_s,
            "latency_p95_s": self.latency_p95_s,
            "queue_wait_p99_s": self.queue_wait_p99_s,
            "n_completed": self.n_completed,
            "makespan_s": self.makespan_s,
            "slo": [check.to_dict() for check in self.slo],
            "slo_met": self.slo_met,
            "slo_attainment": self.slo_attainment,
            "n_scale_events": self.n_scale_events,
        }
        if self.survives_chip_loss is not None:
            data["survives_chip_loss"] = self.survives_chip_loss
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlanEntry":
        """Rebuild an entry from :meth:`to_dict` data."""
        return cls(
            design=ChipDesign.from_dict(data["design"]),
            option=FleetOption.from_dict(data["fleet"]),
            chips_provisioned=int(data["chips_provisioned"]),
            chip_area_mm2=float(data["chip_area_mm2"]),
            fleet_area_mm2=float(data["fleet_area_mm2"]),
            fleet_power_w=float(data["fleet_power_w"]),
            ttft_p99_s=float(data["ttft_p99_s"]),
            latency_p95_s=float(data["latency_p95_s"]),
            queue_wait_p99_s=float(data["queue_wait_p99_s"]),
            n_completed=int(data["n_completed"]),
            makespan_s=float(data["makespan_s"]),
            slo=tuple(
                SLOCheck(
                    metric=str(check["metric"]),
                    target_s=float(check["target_s"]),
                    attained_s=float(check["attained_s"]),
                )
                for check in data.get("slo", ())
            ),
            slo_attainment=float(data["slo_attainment"]),
            n_scale_events=int(data.get("n_scale_events", 0)),
            survives_chip_loss=(
                None
                if data.get("survives_chip_loss") is None
                else bool(data["survives_chip_loss"])
            ),
        )


@dataclass(frozen=True)
class PlanReport:
    """The structured outcome of one capacity-planning run."""

    scenario: str
    description: str
    spec_hash: str
    plan_hash: str
    planner: PlannerConfig
    slo_targets: Tuple[Tuple[str, float], ...]
    n_requests: int
    n_chip_designs: int
    n_candidates: int
    n_pruned_designs: int
    n_pruned_candidates: int
    n_simulated: int
    design_bounds: Tuple[DesignBounds, ...]
    frontier: Tuple[PlanEntry, ...]
    best: Optional[PlanEntry]
    #: Search mode that produced the report: ``"flat"`` (every design
    #: bounded individually — the oracle) or ``"bnb"`` (branch-and-bound
    #: over subgrids).  Both modes yield the identical frontier and best
    #: plan; ``"bnb"`` reports bounds only for individually-priced designs.
    search: str = "flat"
    #: Subgrids retired by one corner comparison (bnb search only).
    n_pruned_subgrids: Optional[int] = None
    #: Analytic bound evaluations performed (bnb search only; flat search
    #: always prices exactly ``n_chip_designs``).
    n_bound_evals: Optional[int] = None
    #: Plan-store accounting (populated only when a store was attached):
    #: hits skipped exact simulation, misses were simulated then stored.
    store_hits: Optional[int] = None
    store_misses: Optional[int] = None
    #: True when the run additionally required the best plan to survive a
    #: one-chip loss (SLO-meeting candidates were chaos-probed; emitted
    #: only when set, so historical goldens stay byte-stable).
    require_chip_loss: bool = False

    @property
    def feasible(self) -> bool:
        """True when some simulated candidate met every stated objective."""
        return self.best is not None

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the report to plain JSON data (canonical field set)."""
        data: Dict[str, Any] = {
            "scenario": self.scenario,
            "description": self.description,
            "spec_hash": self.spec_hash,
            "plan_hash": self.plan_hash,
            "planner": self.planner.to_dict(),
            "slo_targets": {metric: target for metric, target in self.slo_targets},
            "n_requests": self.n_requests,
            "n_chip_designs": self.n_chip_designs,
            "n_candidates": self.n_candidates,
            "n_pruned_designs": self.n_pruned_designs,
            "n_pruned_candidates": self.n_pruned_candidates,
            "n_simulated": self.n_simulated,
            "design_bounds": [bounds.to_dict() for bounds in self.design_bounds],
            "frontier": [entry.to_dict() for entry in self.frontier],
            "best": None if self.best is None else self.best.to_dict(),
            "feasible": self.feasible,
        }
        # Search/store accounting is emitted only when non-default, so
        # flat-search reports (and the committed goldens) stay byte-stable.
        if self.search != "flat":
            data["search"] = self.search
        if self.n_pruned_subgrids is not None:
            data["n_pruned_subgrids"] = self.n_pruned_subgrids
        if self.n_bound_evals is not None:
            data["n_bound_evals"] = self.n_bound_evals
        if self.store_hits is not None:
            data["store_hits"] = self.store_hits
        if self.store_misses is not None:
            data["store_misses"] = self.store_misses
        if self.require_chip_loss:
            data["require_chip_loss"] = True
        return data

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, 2-space indent, trailing newline."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlanReport":
        """Rebuild a report from :meth:`to_dict` data."""
        best = data.get("best")
        return cls(
            scenario=str(data["scenario"]),
            description=str(data.get("description", "")),
            spec_hash=str(data["spec_hash"]),
            plan_hash=str(data["plan_hash"]),
            planner=PlannerConfig.from_dict(data["planner"]),
            slo_targets=tuple(sorted(
                (str(metric), float(target))
                for metric, target in data.get("slo_targets", {}).items()
            )),
            n_requests=int(data["n_requests"]),
            n_chip_designs=int(data["n_chip_designs"]),
            n_candidates=int(data["n_candidates"]),
            n_pruned_designs=int(data["n_pruned_designs"]),
            n_pruned_candidates=int(data["n_pruned_candidates"]),
            n_simulated=int(data["n_simulated"]),
            design_bounds=tuple(
                DesignBounds.from_dict(entry)
                for entry in data.get("design_bounds", ())
            ),
            frontier=tuple(
                PlanEntry.from_dict(entry) for entry in data.get("frontier", ())
            ),
            best=None if best is None else PlanEntry.from_dict(best),
            search=str(data.get("search", "flat")),
            n_pruned_subgrids=(
                None
                if data.get("n_pruned_subgrids") is None
                else int(data["n_pruned_subgrids"])
            ),
            n_bound_evals=(
                None
                if data.get("n_bound_evals") is None
                else int(data["n_bound_evals"])
            ),
            store_hits=(
                None if data.get("store_hits") is None else int(data["store_hits"])
            ),
            store_misses=(
                None
                if data.get("store_misses") is None
                else int(data["store_misses"])
            ),
            require_chip_loss=bool(data.get("require_chip_loss", False)),
        )

    @classmethod
    def from_json(cls, text: str) -> "PlanReport":
        """Parse a report back from its (canonical) JSON form."""
        return cls.from_dict(json.loads(text))


def plan_hash(
    spec_hash: str, config: PlannerConfig, targets: Mapping[str, float]
) -> str:
    """The plan identity: SHA-256 over ``spec_hash``, ``config`` and ``targets``.

    Seeded from the scenario's spec hash (itself the root of every compiled
    trace's RNG seed), so equal inputs always reproduce the byte-identical
    report and any input change moves the hash.
    """
    material = json.dumps(
        {
            "spec_hash": spec_hash,
            "planner": config.to_dict(),
            "slo_targets": dict(sorted(targets.items())),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def format_plan_report(report: PlanReport) -> str:
    """Human-readable rendering of ``report`` for the CLI."""
    title = f"Capacity plan: {report.scenario}"
    lines = [title, "=" * len(title)]
    if report.description:
        lines.append(report.description)
    lines.append(f"plan hash          : {report.plan_hash[:16]}…")
    targets = ", ".join(
        f"{metric} <= {target:g}s" for metric, target in report.slo_targets
    )
    lines.append(f"objectives         : {targets or 'none stated'}")
    if report.require_chip_loss:
        lines.append(
            "resilience         : best plan must survive one chip loss"
        )
    lines.append(
        f"candidate space    : {report.n_candidates} "
        f"({report.n_chip_designs} chip designs), "
        f"{report.n_pruned_candidates} pruned analytically, "
        f"{report.n_simulated} simulated exactly"
    )
    if report.search != "flat":
        evals = report.n_bound_evals
        subgrids = report.n_pruned_subgrids
        lines.append(
            f"search             : {report.search} — "
            f"{evals} bound evals, {subgrids} subgrids pruned whole"
        )
    if report.store_hits is not None or report.store_misses is not None:
        lines.append(
            f"plan store         : {report.store_hits or 0} hits "
            f"(simulation skipped), {report.store_misses or 0} misses"
        )
    pruned = [bounds for bounds in report.design_bounds if not bounds.feasible]
    for bounds in pruned:
        lines.append(f"  pruned {bounds.design.name:<12}: {bounds.reasons[0]}")
    lines.append(f"Pareto frontier    : {len(report.frontier)} plans")
    for entry in report.frontier:
        verdict = "MET " if entry.slo_met else "MISS"
        survival = ""
        if entry.survives_chip_loss is not None:
            survival = (
                "  [survives chip loss]"
                if entry.survives_chip_loss
                else "  [dies with a chip]"
            )
        lines.append(
            f"  {verdict} {entry.design.name:<12} {entry.option.label:<22} "
            f"chips {entry.chips_provisioned}  area {entry.fleet_area_mm2:8.1f} mm^2  "
            f"power {entry.fleet_power_w:6.2f} W  p99 TTFT {entry.ttft_p99_s * 1e3:9.2f} ms"
            f"{survival}"
        )
    if report.best is None:
        lines.append("best plan          : none meets every objective")
    else:
        best = report.best
        lines.append(
            f"best plan          : {best.design.name} {best.option.label} — "
            f"{best.chips_provisioned} chips, {best.fleet_area_mm2:.1f} mm^2, "
            f"{best.fleet_power_w:.2f} W"
        )
    return "\n".join(lines)
