"""Content-addressed on-disk store of exact candidate outcomes.

Re-planning after a config or scenario tweak re-simulates every surviving
candidate from scratch, even though most (spec, design, fleet) triples are
unchanged.  Exact simulation is deterministic — the outcome of a candidate
is a pure function of the scenario spec (which seeds trace compilation),
the chip design and the fleet option (plus, for autoscaled fleets, the
TTFT set point the controller targets) — so outcomes can be cached
*content-addressed*: the key is a SHA-256 over the canonical JSON of
exactly the inputs the simulation depends on, and a hit is byte-identical
to a fresh run by construction.  The decode ``engine`` is deliberately
excluded from the key: all engines replay the same schedule and produce
identical records (the macro/step/wave equivalence contract).

On-disk layout (git-friendly, one object per file)::

    STORE_ROOT/
      objects/
        ab/
          ab3f…e2.json      # payload: version, key, spec hash, outcome

Payloads carry their own key and spec hash so ``validate`` can detect
renamed/corrupted objects without re-deriving inputs, and ``gc`` can
retire objects belonging to dead scenario specs.  Writes are atomic
(temp file + rename), so a crashed planning run never leaves a torn
object behind.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from .evaluate import CandidateOutcome
from .space import ChipDesign, FleetOption

#: Payload schema version; bump on incompatible layout changes (old
#: objects then fail validation and are collected by ``gc``).
STORE_VERSION = 1


def candidate_key(
    spec_hash: str,
    design: ChipDesign,
    option: FleetOption,
    *,
    ttft_target_s: Optional[float] = None,
) -> str:
    """The content address of one candidate's exact outcome.

    SHA-256 over the canonical (minified, key-sorted) JSON of the inputs
    the simulation is a pure function of: the scenario's ``spec_hash``,
    the chip ``design`` and the fleet ``option``.  ``ttft_target_s``
    enters the key only for autoscaled options — it is the controller's
    set point there, but static fleets ignore it, and keying it
    unconditionally would miss on every SLO tweak for no reason.
    """
    material: Dict[str, Any] = {
        "version": STORE_VERSION,
        "spec": spec_hash,
        "design": design.to_dict(),
        "fleet": option.to_dict(),
    }
    if option.autoscaled:
        material["ttft_target_s"] = ttft_target_s
    canonical = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class StoreCounters:
    """Hit/miss accounting of one planning run against a store."""

    hits: int = 0
    misses: int = 0


@dataclass(frozen=True)
class StoreProblem:
    """One defect ``validate`` found: the object's path and what is wrong."""

    path: Path
    reason: str


@dataclass
class PlanStore:
    """A content-addressed directory of :class:`CandidateOutcome` objects."""

    root: Path
    counters: StoreCounters = field(default_factory=StoreCounters)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self.objects_dir.mkdir(parents=True, exist_ok=True)

    @property
    def objects_dir(self) -> Path:
        """The directory holding the fanned-out object files."""
        return self.root / "objects"

    def _object_path(self, key: str) -> Path:
        return self.objects_dir / key[:2] / f"{key}.json"

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_paths())

    def iter_paths(self) -> Iterator[Path]:
        """Every object file currently in the store, in sorted order."""
        if not self.objects_dir.is_dir():
            return
        for fan in sorted(self.objects_dir.iterdir()):
            if not fan.is_dir():
                continue
            yield from sorted(fan.glob("*.json"))

    def get(self, key: str) -> Optional[CandidateOutcome]:
        """The stored outcome under ``key``, or ``None`` on a miss.

        Unreadable or schema-mismatched objects count as misses (the
        planner then re-simulates and overwrites them); every call updates
        the hit/miss counters the plan report surfaces.
        """
        path = self._object_path(key)
        try:
            payload = json.loads(path.read_text())
            if payload.get("version") != STORE_VERSION:
                raise ValueError("store version mismatch")
            outcome = CandidateOutcome.from_dict(payload["outcome"])
        except (OSError, ValueError, KeyError, TypeError):
            self.counters.misses += 1
            return None
        self.counters.hits += 1
        return outcome

    def put(self, key: str, spec_hash: str, outcome: CandidateOutcome) -> None:
        """Store ``outcome`` under ``key`` (atomic write, idempotent)."""
        path = self._object_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": STORE_VERSION,
            "key": key,
            "spec": spec_hash,
            "outcome": outcome.to_dict(),
        }
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        handle, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(handle, "w") as tmp:
                tmp.write(text)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def _check_object(self, path: Path) -> Optional[str]:
        """The defect of one object file, or ``None`` when it is sound."""
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return "unreadable or invalid JSON"
        if not isinstance(payload, dict):
            return "payload is not an object"
        if payload.get("version") != STORE_VERSION:
            return f"schema version {payload.get('version')!r} != {STORE_VERSION}"
        if payload.get("key") != path.stem:
            return "embedded key does not match file name"
        if path.parent.name != path.stem[:2]:
            return "object filed under the wrong fan-out directory"
        if not isinstance(payload.get("spec"), str):
            return "missing spec hash"
        try:
            CandidateOutcome.from_dict(payload["outcome"])
        except (KeyError, TypeError, ValueError):
            return "outcome payload does not round-trip"
        return None

    def validate(self) -> List[StoreProblem]:
        """Audit every object; returns the defects found (empty = healthy)."""
        problems: List[StoreProblem] = []
        for path in self.iter_paths():
            reason = self._check_object(path)
            if reason is not None:
                problems.append(StoreProblem(path=path, reason=reason))
        return problems

    def gc(self, *, keep_specs: Optional[Set[str]] = None) -> List[Path]:
        """Remove defective objects — and, with ``keep_specs``, stale ones.

        Always collects objects that fail validation.  When ``keep_specs``
        is given, additionally collects healthy objects whose spec hash is
        not in the set (outcomes of retired scenarios).  Returns the paths
        removed.
        """
        removed: List[Path] = []
        for path in self.iter_paths():
            reason = self._check_object(path)
            if reason is None and keep_specs is not None:
                spec = json.loads(path.read_text())["spec"]
                if spec not in keep_specs:
                    reason = "spec not in keep set"
            if reason is not None:
                path.unlink()
                removed.append(path)
        for fan in list(self.objects_dir.iterdir()):
            if fan.is_dir() and not any(fan.iterdir()):
                fan.rmdir()
        return removed

    def stats(self) -> Dict[str, Any]:
        """Object count, total bytes and per-spec breakdown of the store."""
        n_objects = 0
        total_bytes = 0
        by_spec: Dict[str, int] = {}
        for path in self.iter_paths():
            n_objects += 1
            total_bytes += path.stat().st_size
            try:
                spec = json.loads(path.read_text()).get("spec")
            except (OSError, ValueError):
                spec = None
            if isinstance(spec, str):
                by_spec[spec] = by_spec.get(spec, 0) + 1
        return {
            "root": str(self.root),
            "n_objects": n_objects,
            "total_bytes": total_bytes,
            "by_spec": by_spec,
        }
