"""SLO-aware capacity planning over the batched design grid.

``repro.planner`` answers the deployment question the cost model exists
for: *what hardware does this workload need?*  Given a declarative
:class:`~repro.scenarios.spec.ScenarioSpec` and SLO targets, the planner
enumerates fleet topologies × chip design points, rejects provably
SLO-infeasible chip designs with one array pass of analytic lower bounds
(:func:`repro.core.batch.batch_service_time_bounds` — no simulation), then
exactly simulates the surviving frontier through the event-driven serving
engines and returns a Pareto frontier over (SLO attainment, chip count,
silicon area, power) as a deterministic, canonically-JSON
:class:`~repro.planner.report.PlanReport`.

Run it from the command line::

    python -m repro.planner plan chat-poisson
    python -m repro.planner plan mixed-rush-hour --slo-p99-ttft 5.0 --json

See ``docs/capacity_planning.md`` for the pruning math and a full
walkthrough.
"""

from .evaluate import (
    CandidateOutcome,
    DesignWarmCache,
    candidate_fleet,
    evaluate_candidate,
    simulate_candidate,
)
from .pareto import dominates, pareto_frontier
from .plan import GOLDEN_PLAN_SCENARIOS, plan_scenario, resolve_slo
from .prune import DesignBounds, prune_designs
from .report import PlanEntry, PlanReport, chip_cost, format_plan_report, plan_hash
from .space import (
    ChipDesign,
    FleetOption,
    PlannerConfig,
    default_chip_grid,
)

__all__ = [
    "CandidateOutcome",
    "ChipDesign",
    "DesignBounds",
    "DesignWarmCache",
    "FleetOption",
    "GOLDEN_PLAN_SCENARIOS",
    "PlanEntry",
    "PlanReport",
    "PlannerConfig",
    "candidate_fleet",
    "chip_cost",
    "default_chip_grid",
    "dominates",
    "evaluate_candidate",
    "format_plan_report",
    "pareto_frontier",
    "plan_hash",
    "plan_scenario",
    "prune_designs",
    "resolve_slo",
    "simulate_candidate",
]
