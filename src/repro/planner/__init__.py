"""SLO-aware capacity planning over the batched design grid.

``repro.planner`` answers the deployment question the cost model exists
for: *what hardware does this workload need?*  Given a declarative
:class:`~repro.scenarios.spec.ScenarioSpec` and SLO targets, the planner
enumerates fleet topologies × chip design points, rejects provably
SLO-infeasible chip designs with one array pass of analytic lower bounds
(:func:`repro.core.batch.batch_service_time_bounds` — no simulation), then
exactly simulates the surviving frontier through the event-driven serving
engines and returns a Pareto frontier over (SLO attainment, chip count,
silicon area, power) as a deterministic, canonically-JSON
:class:`~repro.planner.report.PlanReport`.

Run it from the command line::

    python -m repro.planner plan chat-poisson
    python -m repro.planner plan mixed-rush-hour --slo-p99-ttft 5.0 --json

See ``docs/capacity_planning.md`` for the pruning math and a full
walkthrough.
"""

from .bnb import BnbResult, Subgrid, bnb_prune_designs, initial_subgrids
from .evaluate import (
    CandidateOutcome,
    DesignWarmCache,
    axis_delta,
    candidate_fleet,
    evaluate_candidate,
    simulate_candidate,
)
from .pareto import dominates, pareto_frontier
from .plan import (
    GOLDEN_PLAN_SCENARIOS,
    SEARCH_MODES,
    plan_scenario,
    resolve_slo,
)
from .prune import DesignBounds, prune_designs, trace_pricer
from .report import PlanEntry, PlanReport, chip_cost, format_plan_report, plan_hash
from .space import (
    ChipDesign,
    FleetOption,
    PlannerConfig,
    build_chip_grid,
    default_chip_grid,
    parse_mixes,
)
from .store import PlanStore, candidate_key

__all__ = [
    "BnbResult",
    "CandidateOutcome",
    "ChipDesign",
    "DesignBounds",
    "DesignWarmCache",
    "FleetOption",
    "GOLDEN_PLAN_SCENARIOS",
    "PlanEntry",
    "PlanReport",
    "PlanStore",
    "PlannerConfig",
    "SEARCH_MODES",
    "Subgrid",
    "axis_delta",
    "bnb_prune_designs",
    "build_chip_grid",
    "candidate_fleet",
    "candidate_key",
    "chip_cost",
    "default_chip_grid",
    "dominates",
    "evaluate_candidate",
    "format_plan_report",
    "initial_subgrids",
    "pareto_frontier",
    "parse_mixes",
    "plan_hash",
    "plan_scenario",
    "prune_designs",
    "resolve_slo",
    "simulate_candidate",
    "trace_pricer",
]
