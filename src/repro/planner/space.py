"""The capacity planner's candidate space: chip designs × fleet options.

A planning run searches a cross product of two axes:

* :class:`ChipDesign` — one point of the parameterized EdgeMM design
  family (group count and CC:MC cluster mix, lowered through
  :func:`repro.core.config.scaled_system`);
* :class:`FleetOption` — how many of that chip to deploy behind the
  dispatcher, under which dispatch policy, and whether the SLO-aware
  autoscaler manages the fleet size.

:class:`PlannerConfig` bundles the axes with their bounds; its canonical
JSON form is hashed into the plan identity, so two runs with the same
scenario and the same config produce byte-identical reports.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.config import SystemConfig, default_system, scaled_system
from ..serving.fleet import POLICIES

#: The default design family swept by ``python -m repro.planner plan``:
#: two chip scales, four CC:MC cluster mixes each.
DEFAULT_CHIP_MIXES: Tuple[Tuple[int, int], ...] = ((1, 1), (2, 2), (3, 1), (1, 3))
DEFAULT_GROUP_COUNTS: Tuple[int, ...] = (2, 4)

#: The base system's DRAM tier in GB/s — the effective ``dram_gbps`` of a
#: design that leaves the axis unset (resolved once at import; the base
#: system is a module constant).
BASE_DRAM_GBPS: float = (
    default_system().chip.dram.peak_bandwidth_bytes_per_s / 1e9
)


@dataclass(frozen=True)
class ChipDesign:
    """One chip design point: geometry plus optional DRAM/pruning axes.

    ``n_groups`` scales the whole chip; ``cc_per_group`` and
    ``mc_per_group`` set the per-group count of compute-centric and
    memory-centric clusters (at least one cluster overall).

    Two optional axes extend the geometry into the full design space the
    branch-and-bound planner searches:

    * ``dram_gbps`` — the DRAM tier, as peak pin bandwidth in GB/s
      (``None`` keeps the base system's LPDDR5X default);
    * ``keep_fraction`` — the activation-pruning operating point, the
      average fraction of FFN input channels kept per decode step
      (``None`` leaves runtime pruning off).

    Both are ``None`` by default and omitted from :meth:`to_dict` when
    unset, so pre-existing serialized designs (golden plan reports, plan
    hashes) are byte-stable.
    """

    n_groups: int
    cc_per_group: int
    mc_per_group: int
    dram_gbps: Optional[float] = None
    keep_fraction: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n_groups < 1:
            raise ValueError("n_groups must be >= 1")
        if self.cc_per_group < 0 or self.mc_per_group < 0:
            raise ValueError("cluster counts must be >= 0")
        if self.cc_per_group == 0 and self.mc_per_group == 0:
            raise ValueError("a chip needs at least one cluster per group")
        if self.dram_gbps is not None and not self.dram_gbps > 0:
            raise ValueError("dram_gbps must be positive")
        if self.keep_fraction is not None and not 0.0 < self.keep_fraction <= 1.0:
            raise ValueError("keep_fraction must be in (0, 1]")

    @property
    def name(self) -> str:
        """Stable display name, e.g. ``4x2cc2mc`` or ``8x2cc2mc-d204.8-k0.5``.

        The DRAM and pruning suffixes appear only when the axis is set, so
        geometry-only designs keep their historical names (which key the
        planner's warm caches and the golden reports).
        """
        label = f"{self.n_groups}x{self.cc_per_group}cc{self.mc_per_group}mc"
        if self.dram_gbps is not None:
            label += f"-d{self.dram_gbps:g}"
        if self.keep_fraction is not None:
            label += f"-k{self.keep_fraction:g}"
        return label

    def axes(self) -> Dict[str, Any]:
        """The design's value along every candidate axis, by axis name.

        The branch-and-bound search and the delta-warm cache both diff
        designs axis-by-axis; this is the single definition of what "an
        axis" is.  Unset optional axes resolve to their effective default
        (the base DRAM tier, keep fraction 1.0) so designs that state the
        default explicitly compare equal along the axis.
        """
        return {
            "mix": (self.cc_per_group, self.mc_per_group),
            "n_groups": self.n_groups,
            "dram_gbps": (
                self.dram_gbps if self.dram_gbps is not None else BASE_DRAM_GBPS
            ),
            "keep_fraction": (
                self.keep_fraction if self.keep_fraction is not None else 1.0
            ),
        }

    def system(self) -> SystemConfig:
        """Lower the design point to a full :class:`SystemConfig`."""
        base = default_system()
        if self.dram_gbps is not None:
            dram = replace(
                base.chip.dram,
                peak_bandwidth_bytes_per_s=self.dram_gbps * 1e9,
            )
            base = replace(base, chip=replace(base.chip, dram=dram))
        system = scaled_system(
            n_groups=self.n_groups,
            cc_clusters_per_group=self.cc_per_group,
            mc_clusters_per_group=self.mc_per_group,
            base=base,
        )
        if self.keep_fraction is not None:
            system = system.with_pruning(self.keep_fraction)
        return system

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the design point to plain JSON data.

        The optional DRAM/pruning axes are emitted only when set, keeping
        geometry-only payloads (and everything hashed over them) identical
        to the pre-axis format.
        """
        data: Dict[str, Any] = {
            "n_groups": self.n_groups,
            "cc_per_group": self.cc_per_group,
            "mc_per_group": self.mc_per_group,
        }
        if self.dram_gbps is not None:
            data["dram_gbps"] = self.dram_gbps
        if self.keep_fraction is not None:
            data["keep_fraction"] = self.keep_fraction
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChipDesign":
        """Rebuild a design point from :meth:`to_dict` data."""
        dram_gbps = data.get("dram_gbps")
        keep_fraction = data.get("keep_fraction")
        return cls(
            n_groups=int(data["n_groups"]),
            cc_per_group=int(data["cc_per_group"]),
            mc_per_group=int(data["mc_per_group"]),
            dram_gbps=None if dram_gbps is None else float(dram_gbps),
            keep_fraction=None if keep_fraction is None else float(keep_fraction),
        )


@dataclass(frozen=True)
class FleetOption:
    """One fleet topology candidate for a chip design.

    A *static* option (``autoscaled=False``) deploys exactly ``n_chips``
    chips under ``policy``.  An *autoscaled* option treats ``n_chips`` as
    the provisioning cap: the SLO-aware controller grows the fleet between
    ``min_chips`` and ``n_chips`` and always admits with the front-door
    queue (the planner never sheds traffic — a plan must serve the whole
    trace, which is also what keeps analytic pruning sound).
    """

    n_chips: int
    policy: str = "least_loaded"
    autoscaled: bool = False
    min_chips: int = 1

    def __post_init__(self) -> None:
        if self.n_chips < 1:
            raise ValueError("n_chips must be >= 1")
        if self.policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {self.policy!r}")
        if not 1 <= self.min_chips <= self.n_chips:
            raise ValueError("min_chips must be in [1, n_chips]")
        if self.autoscaled and self.policy != "least_loaded":
            raise ValueError("autoscaled fleets always dispatch least_loaded")

    @property
    def label(self) -> str:
        """Stable display name, e.g. ``static3/least_loaded`` or ``auto1-4``."""
        if self.autoscaled:
            return f"auto{self.min_chips}-{self.n_chips}"
        return f"static{self.n_chips}/{self.policy}"

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the fleet option to plain JSON data."""
        return {
            "n_chips": self.n_chips,
            "policy": self.policy,
            "autoscaled": self.autoscaled,
            "min_chips": self.min_chips,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FleetOption":
        """Rebuild a fleet option from :meth:`to_dict` data."""
        return cls(
            n_chips=int(data["n_chips"]),
            policy=str(data.get("policy", "least_loaded")),
            autoscaled=bool(data.get("autoscaled", False)),
            min_chips=int(data.get("min_chips", 1)),
        )


def default_chip_grid() -> Tuple[ChipDesign, ...]:
    """The default design family: group counts × CC:MC mixes."""
    return tuple(
        ChipDesign(n_groups=n_groups, cc_per_group=cc, mc_per_group=mc)
        for n_groups in DEFAULT_GROUP_COUNTS
        for cc, mc in DEFAULT_CHIP_MIXES
    )


def build_chip_grid(
    *,
    groups: Sequence[int] = DEFAULT_GROUP_COUNTS,
    mixes: Sequence[Tuple[int, int]] = DEFAULT_CHIP_MIXES,
    dram_gbps: Sequence[Optional[float]] = (None,),
    keep_fractions: Sequence[Optional[float]] = (None,),
) -> Tuple[ChipDesign, ...]:
    """The full cross product of the four chip axes, in canonical order.

    ``groups``, ``mixes``, ``dram_gbps`` and ``keep_fractions`` each list
    the values of one axis.  Axis order in the product is (groups, mixes,
    dram, keep) — outermost first — which matches the nesting the
    branch-and-bound search splits on.  ``None`` entries in the optional
    axes mean "the base tier" / "pruning off" and serialize axis-free;
    the defaults reproduce
    :func:`default_chip_grid` exactly.  With explicit values on every
    axis, a 10^5-candidate space is one call (``8 groups × 7 mixes × 16
    DRAM tiers × 16 keep fractions`` is already 14k designs before fleet
    options multiply in).
    """
    return tuple(
        ChipDesign(
            n_groups=n_groups,
            cc_per_group=cc,
            mc_per_group=mc,
            dram_gbps=dram,
            keep_fraction=keep,
        )
        for n_groups in groups
        for cc, mc in mixes
        for dram in dram_gbps
        for keep in keep_fractions
    )


def parse_mixes(text: str) -> Tuple[Tuple[int, int], ...]:
    """Parse a CLI mix list ``text`` like ``"2:2,3:1"`` into (cc, mc) tuples."""
    mixes: List[Tuple[int, int]] = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            cc_text, mc_text = token.split(":")
            mixes.append((int(cc_text), int(mc_text)))
        except ValueError:
            raise ValueError(
                f"mix {token!r} is not of the form CC:MC (e.g. 2:2)"
            ) from None
    if not mixes:
        raise ValueError("at least one CC:MC mix is required")
    return tuple(mixes)


@dataclass(frozen=True)
class PlannerConfig:
    """The candidate space of one planning run (pure data).

    ``chip_grid`` lists the design points considered; fleet sizes span
    ``min_chips`` to ``max_chips`` under each policy of ``policies``, and
    ``include_autoscaled`` adds one autoscaled option per design (capped at
    ``max_chips``) whenever the scenario states a TTFT objective for the
    controller to steer toward.
    """

    chip_grid: Tuple[ChipDesign, ...] = ()
    min_chips: int = 1
    max_chips: int = 4
    policies: Tuple[str, ...] = ("least_loaded",)
    include_autoscaled: bool = True

    def __post_init__(self) -> None:
        if not self.chip_grid:
            object.__setattr__(self, "chip_grid", default_chip_grid())
        names = [design.name for design in self.chip_grid]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate chip designs in grid: {names}")
        if self.min_chips < 1:
            raise ValueError("min_chips must be >= 1")
        if self.max_chips < self.min_chips:
            raise ValueError("max_chips must be >= min_chips")
        if not self.policies:
            raise ValueError("at least one dispatch policy is required")
        for policy in self.policies:
            if policy not in POLICIES:
                raise ValueError(
                    f"policy must be one of {POLICIES}, got {policy!r}"
                )

    @classmethod
    def from_axes(
        cls,
        *,
        groups: Sequence[int] = DEFAULT_GROUP_COUNTS,
        mixes: Sequence[Tuple[int, int]] = DEFAULT_CHIP_MIXES,
        dram_gbps: Sequence[Optional[float]] = (None,),
        keep_fractions: Sequence[Optional[float]] = (None,),
        min_chips: int = 1,
        max_chips: int = 4,
        policies: Tuple[str, ...] = ("least_loaded",),
        include_autoscaled: bool = True,
    ) -> "PlannerConfig":
        """Build a config from per-axis value lists (see :func:`build_chip_grid`).

        This is how a large candidate space is expressed without code
        edits: every chip axis (group counts, CC:MC mixes, DRAM bandwidth
        tiers, pruning keep fractions) and both fleet axes (chip counts,
        dispatch policies) take explicit value lists, and the candidate
        count is their product.
        """
        return cls(
            chip_grid=build_chip_grid(
                groups=groups,
                mixes=mixes,
                dram_gbps=dram_gbps,
                keep_fractions=keep_fractions,
            ),
            min_chips=min_chips,
            max_chips=max_chips,
            policies=policies,
            include_autoscaled=include_autoscaled,
        )

    def fleet_options(self, *, with_autoscaled: bool) -> Tuple[FleetOption, ...]:
        """Enumerate the fleet options of the run, in deterministic order.

        ``with_autoscaled`` gates the autoscaled option on the scenario
        actually stating a TTFT objective (the controller's set point).
        """
        options: List[FleetOption] = [
            FleetOption(n_chips=n_chips, policy=policy)
            for n_chips in range(self.min_chips, self.max_chips + 1)
            for policy in self.policies
        ]
        if self.include_autoscaled and with_autoscaled and self.max_chips > 1:
            options.append(
                FleetOption(
                    n_chips=self.max_chips,
                    policy="least_loaded",
                    autoscaled=True,
                    min_chips=self.min_chips,
                )
            )
        return tuple(options)

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the config to plain JSON data."""
        return {
            "chip_grid": [design.to_dict() for design in self.chip_grid],
            "min_chips": self.min_chips,
            "max_chips": self.max_chips,
            "policies": list(self.policies),
            "include_autoscaled": self.include_autoscaled,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlannerConfig":
        """Rebuild a config from :meth:`to_dict` data."""
        return cls(
            chip_grid=tuple(
                ChipDesign.from_dict(entry) for entry in data.get("chip_grid", ())
            ),
            min_chips=int(data.get("min_chips", 1)),
            max_chips=int(data.get("max_chips", 4)),
            policies=tuple(str(p) for p in data.get("policies", ("least_loaded",))),
            include_autoscaled=bool(data.get("include_autoscaled", True)),
        )

    def canonical_json(self) -> str:
        """The canonical (minified, key-sorted) JSON identity of the config."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def config_hash(self) -> str:
        """SHA-256 of the canonical JSON — the config's stable identity."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()
