"""The capacity planner's candidate space: chip designs × fleet options.

A planning run searches a cross product of two axes:

* :class:`ChipDesign` — one point of the parameterized EdgeMM design
  family (group count and CC:MC cluster mix, lowered through
  :func:`repro.core.config.scaled_system`);
* :class:`FleetOption` — how many of that chip to deploy behind the
  dispatcher, under which dispatch policy, and whether the SLO-aware
  autoscaler manages the fleet size.

:class:`PlannerConfig` bundles the axes with their bounds; its canonical
JSON form is hashed into the plan identity, so two runs with the same
scenario and the same config produce byte-identical reports.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Tuple

from ..core.config import SystemConfig, scaled_system
from ..serving.fleet import POLICIES

#: The default design family swept by ``python -m repro.planner plan``:
#: two chip scales, four CC:MC cluster mixes each.
DEFAULT_CHIP_MIXES: Tuple[Tuple[int, int], ...] = ((1, 1), (2, 2), (3, 1), (1, 3))
DEFAULT_GROUP_COUNTS: Tuple[int, ...] = (2, 4)


@dataclass(frozen=True)
class ChipDesign:
    """One chip design point: group count plus the per-group cluster mix.

    ``n_groups`` scales the whole chip; ``cc_per_group`` and
    ``mc_per_group`` set the per-group count of compute-centric and
    memory-centric clusters (at least one cluster overall).
    """

    n_groups: int
    cc_per_group: int
    mc_per_group: int

    def __post_init__(self) -> None:
        if self.n_groups < 1:
            raise ValueError("n_groups must be >= 1")
        if self.cc_per_group < 0 or self.mc_per_group < 0:
            raise ValueError("cluster counts must be >= 0")
        if self.cc_per_group == 0 and self.mc_per_group == 0:
            raise ValueError("a chip needs at least one cluster per group")

    @property
    def name(self) -> str:
        """Stable display name, e.g. ``4x2cc2mc``."""
        return f"{self.n_groups}x{self.cc_per_group}cc{self.mc_per_group}mc"

    def system(self) -> SystemConfig:
        """Lower the design point to a full :class:`SystemConfig`."""
        return scaled_system(
            n_groups=self.n_groups,
            cc_clusters_per_group=self.cc_per_group,
            mc_clusters_per_group=self.mc_per_group,
        )

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the design point to plain JSON data."""
        return {
            "n_groups": self.n_groups,
            "cc_per_group": self.cc_per_group,
            "mc_per_group": self.mc_per_group,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChipDesign":
        """Rebuild a design point from :meth:`to_dict` data."""
        return cls(
            n_groups=int(data["n_groups"]),
            cc_per_group=int(data["cc_per_group"]),
            mc_per_group=int(data["mc_per_group"]),
        )


@dataclass(frozen=True)
class FleetOption:
    """One fleet topology candidate for a chip design.

    A *static* option (``autoscaled=False``) deploys exactly ``n_chips``
    chips under ``policy``.  An *autoscaled* option treats ``n_chips`` as
    the provisioning cap: the SLO-aware controller grows the fleet between
    ``min_chips`` and ``n_chips`` and always admits with the front-door
    queue (the planner never sheds traffic — a plan must serve the whole
    trace, which is also what keeps analytic pruning sound).
    """

    n_chips: int
    policy: str = "least_loaded"
    autoscaled: bool = False
    min_chips: int = 1

    def __post_init__(self) -> None:
        if self.n_chips < 1:
            raise ValueError("n_chips must be >= 1")
        if self.policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {self.policy!r}")
        if not 1 <= self.min_chips <= self.n_chips:
            raise ValueError("min_chips must be in [1, n_chips]")
        if self.autoscaled and self.policy != "least_loaded":
            raise ValueError("autoscaled fleets always dispatch least_loaded")

    @property
    def label(self) -> str:
        """Stable display name, e.g. ``static3/least_loaded`` or ``auto1-4``."""
        if self.autoscaled:
            return f"auto{self.min_chips}-{self.n_chips}"
        return f"static{self.n_chips}/{self.policy}"

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the fleet option to plain JSON data."""
        return {
            "n_chips": self.n_chips,
            "policy": self.policy,
            "autoscaled": self.autoscaled,
            "min_chips": self.min_chips,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FleetOption":
        """Rebuild a fleet option from :meth:`to_dict` data."""
        return cls(
            n_chips=int(data["n_chips"]),
            policy=str(data.get("policy", "least_loaded")),
            autoscaled=bool(data.get("autoscaled", False)),
            min_chips=int(data.get("min_chips", 1)),
        )


def default_chip_grid() -> Tuple[ChipDesign, ...]:
    """The default design family: group counts × CC:MC mixes."""
    return tuple(
        ChipDesign(n_groups=n_groups, cc_per_group=cc, mc_per_group=mc)
        for n_groups in DEFAULT_GROUP_COUNTS
        for cc, mc in DEFAULT_CHIP_MIXES
    )


@dataclass(frozen=True)
class PlannerConfig:
    """The candidate space of one planning run (pure data).

    ``chip_grid`` lists the design points considered; fleet sizes span
    ``min_chips`` to ``max_chips`` under each policy of ``policies``, and
    ``include_autoscaled`` adds one autoscaled option per design (capped at
    ``max_chips``) whenever the scenario states a TTFT objective for the
    controller to steer toward.
    """

    chip_grid: Tuple[ChipDesign, ...] = ()
    min_chips: int = 1
    max_chips: int = 4
    policies: Tuple[str, ...] = ("least_loaded",)
    include_autoscaled: bool = True

    def __post_init__(self) -> None:
        if not self.chip_grid:
            object.__setattr__(self, "chip_grid", default_chip_grid())
        names = [design.name for design in self.chip_grid]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate chip designs in grid: {names}")
        if self.min_chips < 1:
            raise ValueError("min_chips must be >= 1")
        if self.max_chips < self.min_chips:
            raise ValueError("max_chips must be >= min_chips")
        if not self.policies:
            raise ValueError("at least one dispatch policy is required")
        for policy in self.policies:
            if policy not in POLICIES:
                raise ValueError(
                    f"policy must be one of {POLICIES}, got {policy!r}"
                )

    def fleet_options(self, *, with_autoscaled: bool) -> Tuple[FleetOption, ...]:
        """Enumerate the fleet options of the run, in deterministic order.

        ``with_autoscaled`` gates the autoscaled option on the scenario
        actually stating a TTFT objective (the controller's set point).
        """
        options: List[FleetOption] = [
            FleetOption(n_chips=n_chips, policy=policy)
            for n_chips in range(self.min_chips, self.max_chips + 1)
            for policy in self.policies
        ]
        if self.include_autoscaled and with_autoscaled and self.max_chips > 1:
            options.append(
                FleetOption(
                    n_chips=self.max_chips,
                    policy="least_loaded",
                    autoscaled=True,
                    min_chips=self.min_chips,
                )
            )
        return tuple(options)

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the config to plain JSON data."""
        return {
            "chip_grid": [design.to_dict() for design in self.chip_grid],
            "min_chips": self.min_chips,
            "max_chips": self.max_chips,
            "policies": list(self.policies),
            "include_autoscaled": self.include_autoscaled,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlannerConfig":
        """Rebuild a config from :meth:`to_dict` data."""
        return cls(
            chip_grid=tuple(
                ChipDesign.from_dict(entry) for entry in data.get("chip_grid", ())
            ),
            min_chips=int(data.get("min_chips", 1)),
            max_chips=int(data.get("max_chips", 4)),
            policies=tuple(str(p) for p in data.get("policies", ("least_loaded",))),
            include_autoscaled=bool(data.get("include_autoscaled", True)),
        )

    def canonical_json(self) -> str:
        """The canonical (minified, key-sorted) JSON identity of the config."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def config_hash(self) -> str:
        """SHA-256 of the canonical JSON — the config's stable identity."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()
