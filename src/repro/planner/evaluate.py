"""Exact evaluation of surviving plan candidates.

Candidates that survive analytic pruning are replayed through the real
event-driven serving engines — :class:`~repro.serving.fleet.FleetSimulator`
for static fleets, :class:`~repro.serving.autoscale.
AutoscalingFleetSimulator` for autoscaled ones — on the scenario's compiled
trace, on fresh per-design chips.  The module-level
:func:`simulate_candidate` worker takes only picklable data (the spec's
JSON, dicts for design/option, the resolved SLO targets), so the same code
runs serially or fanned out through
:class:`repro.experiments.parallel.ParallelSweepRunner`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    AbstractSet,
    Any,
    Dict,
    Mapping,
    MutableMapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.simulator import PerformanceSimulator
from ..models.mllm import MLLMConfig, get_mllm
from ..scenarios.compile import compile_scenario
from ..scenarios.spec import AutoscalerSpec, ScenarioSpec
from ..serving.autoscale import AutoscalerConfig, AutoscalingFleetSimulator
from ..serving.fleet import FleetSimulator
from ..serving.queue import ServingRequest
from .space import ChipDesign, FleetOption


@dataclass
class DesignWarmCache:
    """Memoized per-design serving costs, shared across a design's candidates.

    Every candidate built on the same chip design replays the same trace
    against the same cost model, so the expensive memoizations — the
    performance simulator's op cache, CC-stage latencies, decode bucket
    triples and whole-step latencies — are design properties, not candidate
    properties.  The planner harvests them from each finished fleet and
    seeds the next fleet of the same design; every seeded value is a
    deterministic function of the design, so warmed runs are bit-identical
    to cold ones (regression-tested).
    """

    simulator: PerformanceSimulator
    cc_latencies: Dict[Tuple[int, int], float] = field(default_factory=dict)
    bucket_costs: Dict[int, Tuple[int, int, float]] = field(default_factory=dict)
    step_cache: Dict[Tuple[int, ...], float] = field(default_factory=dict)

    def seed_fleet(self, fleet: FleetSimulator) -> None:
        """Warm every chip of a fresh fleet from the harvested caches."""
        for chip in fleet.chips:
            chip.seed_cc_latencies(self.cc_latencies)
            chip.cost_model.seed_bucket_costs(self.bucket_costs)
            chip.cost_model.seed_step_cache(self.step_cache)

    def harvest_fleet(self, fleet: FleetSimulator) -> None:
        """Fold a finished fleet's per-chip memoizations back into the cache."""
        for chip in fleet.chips:
            self.cc_latencies.update(chip.cc_latencies())
            self.bucket_costs.update(chip.cost_model.bucket_costs())
            self.step_cache.update(chip.cost_model.step_cache())

    def delta_seed_from(
        self, neighbor: "DesignWarmCache", changed: AbstractSet[str]
    ) -> None:
        """Transfer axis-invariant memos from a neighboring design's cache.

        ``changed`` names the chip axes (see :meth:`ChipDesign.axes`) on
        which this cache's design differs from ``neighbor``'s.  Only memos
        provably untouched by every changed axis transfer:

        * a ``keep_fraction``-only delta transfers CC-stage latencies —
          prefill/prompt ops are compiled non-prunable, so the CC pipeline
          is identical across pruning thresholds;
        * a ``dram_gbps``-only delta transfers decode bucket triples —
          they are (weight bytes, per-stream bytes, compute cycles),
          byte/cycle-level quantities with no bandwidth term (memory time
          is applied per step from the chip's own DRAM tier).

        Whole-step latencies and the op cache depend on every axis and
        never transfer.  Transferred values are float-identical to what a
        cold run would recompute (asserted in the property suite), so
        delta-warmed simulation stays bit-identical to cold simulation.
        """
        if changed == {"keep_fraction"}:
            for key, value in neighbor.cc_latencies.items():
                self.cc_latencies.setdefault(key, value)
        elif changed == {"dram_gbps"}:
            for key, value in neighbor.bucket_costs.items():
                self.bucket_costs.setdefault(key, value)


def axis_delta(a: ChipDesign, b: ChipDesign) -> frozenset:
    """The set of chip-axis names on which designs ``a`` and ``b`` differ.

    Unset optional axes compare at their effective defaults (see
    :meth:`ChipDesign.axes`), so a design stating the default explicitly
    has no delta against one leaving the axis unset.
    """
    axes_a, axes_b = a.axes(), b.axes()
    return frozenset(name for name in axes_a if axes_a[name] != axes_b[name])


@dataclass(frozen=True)
class CandidateOutcome:
    """Exact-simulation metrics of one (chip design, fleet option) candidate.

    ``chips_provisioned`` is the fleet size the plan must stand up: the
    static chip count, or the autoscaled run's peak concurrent chips.
    ``n_scale_events`` counts controller decisions (zero for static
    fleets).
    """

    design: ChipDesign
    option: FleetOption
    n_completed: int
    makespan_s: float
    ttft_p99_s: float
    latency_p95_s: float
    queue_wait_p99_s: float
    chips_provisioned: int
    n_scale_events: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the outcome to plain JSON data (plan-store payload)."""
        return {
            "design": self.design.to_dict(),
            "option": self.option.to_dict(),
            "n_completed": self.n_completed,
            "makespan_s": self.makespan_s,
            "ttft_p99_s": self.ttft_p99_s,
            "latency_p95_s": self.latency_p95_s,
            "queue_wait_p99_s": self.queue_wait_p99_s,
            "chips_provisioned": self.chips_provisioned,
            "n_scale_events": self.n_scale_events,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CandidateOutcome":
        """Rebuild an outcome from :meth:`to_dict` data."""
        return cls(
            design=ChipDesign.from_dict(data["design"]),
            option=FleetOption.from_dict(data["option"]),
            n_completed=int(data["n_completed"]),
            makespan_s=float(data["makespan_s"]),
            ttft_p99_s=float(data["ttft_p99_s"]),
            latency_p95_s=float(data["latency_p95_s"]),
            queue_wait_p99_s=float(data["queue_wait_p99_s"]),
            chips_provisioned=int(data["chips_provisioned"]),
            n_scale_events=int(data.get("n_scale_events", 0)),
        )


def candidate_fleet(
    model: MLLMConfig,
    spec: ScenarioSpec,
    design: ChipDesign,
    option: FleetOption,
    ttft_target: Optional[float],
    *,
    simulator: Optional[PerformanceSimulator] = None,
    engine: str = "macro",
):
    """Instantiate the serving fleet a (``design``, ``option``) candidate describes.

    ``spec`` contributes the serving knobs (``model``, batch size,
    bandwidth split, context bucket); only the chips, the fleet size/policy
    and the autoscaler block vary with the candidate.  Autoscaled options reuse
    the scenario's controller tuning when the spec carries an autoscaler
    block, always with queue admission (plans serve the whole trace), and
    require a ``ttft_target`` for the controller's set point.  ``simulator``
    optionally shares one (memoized, design-matched) performance simulator
    across all chips instead of building one per chip; ``engine`` selects
    the chips' decode-loop implementation (macro by default — survivors
    replay through the macro-stepping engine, records unchanged).
    """
    system = design.system()

    def factory() -> PerformanceSimulator:
        if simulator is not None:
            return simulator
        return PerformanceSimulator(system)

    serving_kwargs = dict(
        simulator_factory=factory,
        max_batch_size=spec.fleet.max_batch_size,
        cc_bandwidth_fraction=spec.fleet.cc_bandwidth_fraction,
        context_bucket=spec.fleet.context_bucket,
        engine=engine,
    )
    if not option.autoscaled:
        return FleetSimulator(
            model, n_chips=option.n_chips, policy=option.policy, **serving_kwargs
        )
    if ttft_target is None:
        raise ValueError(
            "an autoscaled candidate needs a ttft_p99_s objective for the "
            "controller to target"
        )
    tuning = spec.fleet.autoscaler or AutoscalerSpec(
        min_chips=option.min_chips, max_chips=option.n_chips
    )
    controller = AutoscalerConfig(
        target_p99_ttft_s=ttft_target,
        min_chips=option.min_chips,
        max_chips=option.n_chips,
        window=tuning.window,
        min_observations=tuning.min_observations,
        cooldown_s=tuning.cooldown_s,
        scale_up_ratio=tuning.scale_up_ratio,
        scale_down_ratio=tuning.scale_down_ratio,
        max_queue_depth=tuning.max_queue_depth,
        admission="queue",
    )
    return AutoscalingFleetSimulator(model, autoscaler=controller, **serving_kwargs)


def evaluate_candidate(
    spec: ScenarioSpec,
    trace: Sequence[ServingRequest],
    design: ChipDesign,
    option: FleetOption,
    targets: Mapping[str, float],
    *,
    warm: Optional[MutableMapping[str, DesignWarmCache]] = None,
    engine: str = "macro",
) -> CandidateOutcome:
    """Exactly simulate one (``design``, ``option``) candidate.

    ``spec`` supplies the serving knobs, ``trace`` the pre-compiled
    traffic and ``targets`` the resolved SLO objectives (the autoscaled
    path needs the TTFT target as its set point).
    ``warm`` optionally carries per-design memoizations (keyed by design
    name) across candidates of one planning run; warmed evaluations are
    bit-identical to cold ones because every cached value is a
    deterministic function of the design.  The harvested CC-latency,
    bucket-cost and composition/run-length (step) memos feed both decode
    engines, so the default macro ``engine`` replays warm exactly like the
    per-step oracle would.
    """
    model = get_mllm(spec.fleet.model)
    cache = None
    if warm is not None:
        cache = warm.get(design.name)
        if cache is None:
            cache = DesignWarmCache(simulator=PerformanceSimulator(design.system()))
            warm[design.name] = cache
    fleet = candidate_fleet(
        model,
        spec,
        design,
        option,
        targets.get("ttft_p99_s"),
        simulator=None if cache is None else cache.simulator,
        engine=engine,
    )
    if cache is not None:
        cache.seed_fleet(fleet)
    result = fleet.run(list(trace))
    if cache is not None:
        cache.harvest_fleet(fleet)
    report = result.report
    if option.autoscaled:
        chips = result.peak_chips
        events = len(result.events)
    else:
        chips = option.n_chips
        events = 0
    return CandidateOutcome(
        design=design,
        option=option,
        n_completed=report.n_requests,
        makespan_s=report.makespan_s,
        ttft_p99_s=report.ttft.p99,
        latency_p95_s=report.latency.p95,
        queue_wait_p99_s=report.queue_wait.p99,
        chips_provisioned=chips,
        n_scale_events=events,
    )


def candidate_survives_chip_loss(
    spec: ScenarioSpec,
    trace: Sequence[ServingRequest],
    design: ChipDesign,
    option: FleetOption,
    targets: Mapping[str, float],
    *,
    engine: str = "macro",
) -> bool:
    """Whether a candidate still meets every objective after losing a chip.

    The chaos probe of the planner: the candidate's fleet replays the
    trace with chip 0 permanently failed at a quarter of the arrival span
    (the fault-injection machinery of :mod:`repro.serving.faults`, drain
    policy, no recovery, decode loop per ``engine``), and survival means
    the degraded run still completes every request and meets every
    objective in ``targets``.  The probe
    is deterministic — same spec, design and option always return the
    same verdict.  Single-chip fleets cannot survive by construction and
    return ``False`` without simulation.
    """
    if option.n_chips < 2:
        return False
    # Imported lazily: the serving fault layer is optional for planning.
    from ..serving.faults import FaultEvent, FaultSchedule

    model = get_mllm(spec.fleet.model)
    fleet = candidate_fleet(
        model, spec, design, option, targets.get("ttft_p99_s"), engine=engine
    )
    span = max(request.arrival_s for request in trace)
    schedule = FaultSchedule(
        events=(
            FaultEvent(time_s=0.25 * span, kind="chip_down", chip_id=0),
        ),
        drain_policy="drain",
    )
    result = fleet.run(list(trace), faults=schedule)
    report = result.report
    if report.n_requests < len(trace):
        return False
    attained = {
        "ttft_p99_s": report.ttft.p99,
        "latency_p95_s": report.latency.p95,
        "queue_wait_p99_s": report.queue_wait.p99,
    }
    return all(
        attained[metric] <= target for metric, target in targets.items()
    )


def simulate_candidate(
    spec_json: str,
    design: Dict[str, Any],
    option: Dict[str, Any],
    targets: Dict[str, float],
    engine: str = "macro",
) -> CandidateOutcome:
    """Picklable worker: rebuild the candidate from data and simulate it.

    ``spec_json`` is the scenario spec's JSON form, ``design`` and
    ``option`` are :meth:`~repro.planner.space.ChipDesign.to_dict` /
    :meth:`~repro.planner.space.FleetOption.to_dict` payloads, ``targets``
    the resolved SLO objectives and ``engine`` the chips' decode-loop
    implementation.  The trace recompiles inside
    the worker — scenario compilation is spec-hash-seeded, so every process
    derives the bit-identical trace and the parallel path returns exactly
    what the serial path would.
    """
    spec = ScenarioSpec.from_json(spec_json)
    trace = compile_scenario(spec).trace
    return evaluate_candidate(
        spec,
        trace,
        ChipDesign.from_dict(design),
        FleetOption.from_dict(option),
        targets,
        warm={},
        engine=engine,
    )
