"""Command-line capacity planner.

::

    python -m repro.planner plan <scenario> [--slo-p99-ttft 5.0] [--json]
    python -m repro.planner plan <scenario> --min-chips 1 --max-chips 6 --jobs 4
    python -m repro.planner plan <scenario> --groups 1,2,4,8 --mixes 2:2,3:1 \\
        --dram-gbps 51.2,102.4,204.8 --keep-fractions 0.5,0.75,1.0 \\
        --search bnb --store .plan-store
    python -m repro.planner write-golden [--dir tests/golden/planner] [names ...]
    python -m repro.planner store-validate .plan-store
    python -m repro.planner store-gc .plan-store [--keep-spec HASH ...]

``plan`` searches fleet topologies × chip design points for the cheapest
configuration meeting the scenario's SLOs (optionally overridden on the
command line) and prints the Pareto frontier; ``--json`` emits the
canonical :class:`~repro.planner.report.PlanReport` instead.  The axis
flags (``--groups``, ``--mixes``, ``--dram-gbps``, ``--keep-fractions``,
``--policies``) expand the candidate space without code edits;
``--search bnb`` prunes it by branch-and-bound (identical plan, far fewer
bound evaluations) and ``--store PATH`` re-uses exact outcomes across runs
through the content-addressed plan store.

``write-golden`` regenerates the canonical plan reports the golden-plan
regression suite asserts byte identity against; run it only when a change
*intends* to move planner numbers, and commit the diff.

``store-validate`` audits every object of a plan store; ``store-gc``
removes defective objects and, with ``--keep-spec``, outcomes of retired
scenario specs.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Tuple

from ..scenarios.registry import get_scenario
from ..serving.queue import ENGINES
from .plan import GOLDEN_PLAN_SCENARIOS, SEARCH_MODES, plan_scenario, resolve_slo
from .report import format_plan_report
from .space import PlannerConfig, parse_mixes
from .store import PlanStore


def _parse_floats(text: str) -> Tuple[float, ...]:
    """Parse a comma-separated float list CLI value."""
    return tuple(float(token) for token in text.split(",") if token.strip())


def _parse_ints(text: str) -> Tuple[int, ...]:
    """Parse a comma-separated int list CLI value."""
    return tuple(int(token) for token in text.split(",") if token.strip())


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.planner",
        description="SLO-aware capacity planning over the EdgeMM design grid.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    plan = commands.add_parser(
        "plan", help="find the cheapest SLO-meeting fleet for a scenario"
    )
    plan.add_argument("scenario", help="registered scenario name")
    plan.add_argument(
        "--slo-p99-ttft", type=float, default=None, metavar="S",
        help="override the p99 TTFT objective (seconds)",
    )
    plan.add_argument(
        "--slo-p95-latency", type=float, default=None, metavar="S",
        help="override the p95 end-to-end latency objective (seconds)",
    )
    plan.add_argument(
        "--slo-p99-queue-wait", type=float, default=None, metavar="S",
        help="override the p99 queue-wait objective (seconds)",
    )
    plan.add_argument(
        "--min-chips", type=int, default=1, help="smallest fleet size considered"
    )
    plan.add_argument(
        "--max-chips", type=int, default=4, help="largest fleet size considered"
    )
    plan.add_argument(
        "--groups", type=_parse_ints, default=None, metavar="N,N,…",
        help="cluster-group counts of the chip grid (e.g. 1,2,4,8)",
    )
    plan.add_argument(
        "--mixes", type=parse_mixes, default=None, metavar="CC:MC,…",
        help="CC:MC cluster mixes of the chip grid (e.g. 2:2,3:1)",
    )
    plan.add_argument(
        "--dram-gbps", type=_parse_floats, default=None, metavar="G,G,…",
        help="DRAM bandwidth tiers in GB/s (default: the base tier only)",
    )
    plan.add_argument(
        "--keep-fractions", type=_parse_floats, default=None, metavar="F,F,…",
        help="FFN channel-pruning keep fractions (default: pruning off)",
    )
    plan.add_argument(
        "--policies", default=None, metavar="P,P,…",
        help="dispatch policies of the static fleet options "
        "(comma-separated; default: least_loaded)",
    )
    plan.add_argument(
        "--static-only", action="store_true",
        help="skip the autoscaled fleet candidates",
    )
    plan.add_argument(
        "--no-prune", action="store_true",
        help="skip analytic pruning and simulate the whole space (slow)",
    )
    plan.add_argument(
        "--search", choices=SEARCH_MODES, default="flat",
        help="pruning strategy: flat bounds every design, bnb "
        "branch-and-bounds subgrids (identical plan, far fewer bound evals)",
    )
    plan.add_argument(
        "--store", default=None, metavar="PATH",
        help="content-addressed plan store: stored candidate outcomes skip "
        "exact simulation, fresh ones are written back",
    )
    plan.add_argument(
        "--require-chip-loss", action="store_true",
        help="require the best plan to survive one chip permanently "
        "failing mid-trace (SLO-meeting candidates are chaos-probed)",
    )
    plan.add_argument(
        "--jobs", "-j", type=int, default=None, metavar="N",
        help="simulate surviving candidates across N processes",
    )
    plan.add_argument(
        "--engine", choices=ENGINES, default="macro",
        help="decode-loop implementation survivors replay through "
        "(reports are engine-independent; 'step' is the slow oracle)",
    )
    plan.add_argument(
        "--json", action="store_true", help="emit the canonical JSON report"
    )

    golden = commands.add_parser(
        "write-golden",
        help="(re)write golden plan reports for the regression suite",
    )
    golden.add_argument(
        "names", nargs="*",
        help=f"scenarios to plan (default: {', '.join(GOLDEN_PLAN_SCENARIOS)})",
    )
    golden.add_argument(
        "--dir", default="tests/golden/planner",
        help="directory the <name>.json files are written to",
    )

    validate = commands.add_parser(
        "store-validate", help="audit every object of a plan store"
    )
    validate.add_argument("store", help="plan-store directory")

    gc = commands.add_parser(
        "store-gc",
        help="remove defective (and, with --keep-spec, stale) store objects",
    )
    gc.add_argument("store", help="plan-store directory")
    gc.add_argument(
        "--keep-spec", action="append", default=None, metavar="HASH",
        help="spec hash to keep (repeatable); healthy objects of other "
        "specs are collected too",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro.planner`` (``argv`` overrides)."""
    args = _build_parser().parse_args(argv)

    if args.command == "plan":
        spec = get_scenario(args.scenario)
        axis_flags = (args.groups, args.mixes, args.dram_gbps, args.keep_fractions)
        policies = (
            tuple(p.strip() for p in args.policies.split(",") if p.strip())
            if args.policies is not None
            else ("least_loaded",)
        )
        if any(flag is not None for flag in axis_flags) or args.policies:
            from .space import DEFAULT_CHIP_MIXES, DEFAULT_GROUP_COUNTS

            config = PlannerConfig.from_axes(
                groups=args.groups or DEFAULT_GROUP_COUNTS,
                mixes=args.mixes or DEFAULT_CHIP_MIXES,
                dram_gbps=args.dram_gbps or (None,),
                keep_fractions=args.keep_fractions or (None,),
                min_chips=args.min_chips,
                max_chips=args.max_chips,
                policies=policies,
                include_autoscaled=not args.static_only,
            )
        else:
            config = PlannerConfig(
                min_chips=args.min_chips,
                max_chips=args.max_chips,
                include_autoscaled=not args.static_only,
            )
        report = plan_scenario(
            spec,
            config,
            slo=resolve_slo(
                spec,
                ttft_p99_s=args.slo_p99_ttft,
                latency_p95_s=args.slo_p95_latency,
                queue_wait_p99_s=args.slo_p99_queue_wait,
            ),
            prune=not args.no_prune,
            processes=args.jobs,
            engine=args.engine,
            search=args.search,
            store=None if args.store is None else PlanStore(Path(args.store)),
            require_chip_loss=args.require_chip_loss,
        )
        if args.json:
            sys.stdout.write(report.to_json())
        else:
            print(format_plan_report(report))
        return 0 if report.feasible else 1

    if args.command == "store-validate":
        store = PlanStore(Path(args.store))
        problems = store.validate()
        stats = store.stats()
        print(
            f"{stats['n_objects']} objects, {stats['total_bytes']} bytes, "
            f"{len(stats['by_spec'])} scenario specs"
        )
        for problem in problems:
            print(f"  BAD {problem.path}: {problem.reason}")
        print(f"{len(problems)} problems")
        return 0 if not problems else 1

    if args.command == "store-gc":
        store = PlanStore(Path(args.store))
        keep = None if args.keep_spec is None else set(args.keep_spec)
        removed = store.gc(keep_specs=keep)
        for path in removed:
            print(f"removed {path}")
        print(f"{len(removed)} objects collected, {len(store)} kept")
        return 0

    # write-golden
    directory = Path(args.dir)
    directory.mkdir(parents=True, exist_ok=True)
    names = args.names or list(GOLDEN_PLAN_SCENARIOS)
    for name in names:
        spec = get_scenario(name)
        report = plan_scenario(spec)
        path = directory / f"{spec.name}.json"
        path.write_text(report.to_json(), encoding="utf-8")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
