"""Command-line capacity planner.

::

    python -m repro.planner plan <scenario> [--slo-p99-ttft 5.0] [--json]
    python -m repro.planner plan <scenario> --min-chips 1 --max-chips 6 --jobs 4
    python -m repro.planner write-golden [--dir tests/golden/planner] [names ...]

``plan`` searches fleet topologies × chip design points for the cheapest
configuration meeting the scenario's SLOs (optionally overridden on the
command line) and prints the Pareto frontier; ``--json`` emits the
canonical :class:`~repro.planner.report.PlanReport` instead.

``write-golden`` regenerates the canonical plan reports the golden-plan
regression suite asserts byte identity against; run it only when a change
*intends* to move planner numbers, and commit the diff.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from ..scenarios.registry import get_scenario
from ..serving.queue import ENGINES
from .plan import GOLDEN_PLAN_SCENARIOS, plan_scenario, resolve_slo
from .report import format_plan_report
from .space import PlannerConfig


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.planner",
        description="SLO-aware capacity planning over the EdgeMM design grid.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    plan = commands.add_parser(
        "plan", help="find the cheapest SLO-meeting fleet for a scenario"
    )
    plan.add_argument("scenario", help="registered scenario name")
    plan.add_argument(
        "--slo-p99-ttft", type=float, default=None, metavar="S",
        help="override the p99 TTFT objective (seconds)",
    )
    plan.add_argument(
        "--slo-p95-latency", type=float, default=None, metavar="S",
        help="override the p95 end-to-end latency objective (seconds)",
    )
    plan.add_argument(
        "--slo-p99-queue-wait", type=float, default=None, metavar="S",
        help="override the p99 queue-wait objective (seconds)",
    )
    plan.add_argument(
        "--min-chips", type=int, default=1, help="smallest fleet size considered"
    )
    plan.add_argument(
        "--max-chips", type=int, default=4, help="largest fleet size considered"
    )
    plan.add_argument(
        "--static-only", action="store_true",
        help="skip the autoscaled fleet candidates",
    )
    plan.add_argument(
        "--no-prune", action="store_true",
        help="skip analytic pruning and simulate the whole space (slow)",
    )
    plan.add_argument(
        "--jobs", "-j", type=int, default=None, metavar="N",
        help="simulate surviving candidates across N processes",
    )
    plan.add_argument(
        "--engine", choices=ENGINES, default="macro",
        help="decode-loop implementation survivors replay through "
        "(reports are engine-independent; 'step' is the slow oracle)",
    )
    plan.add_argument(
        "--json", action="store_true", help="emit the canonical JSON report"
    )

    golden = commands.add_parser(
        "write-golden",
        help="(re)write golden plan reports for the regression suite",
    )
    golden.add_argument(
        "names", nargs="*",
        help=f"scenarios to plan (default: {', '.join(GOLDEN_PLAN_SCENARIOS)})",
    )
    golden.add_argument(
        "--dir", default="tests/golden/planner",
        help="directory the <name>.json files are written to",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro.planner`` (``argv`` overrides)."""
    args = _build_parser().parse_args(argv)

    if args.command == "plan":
        spec = get_scenario(args.scenario)
        config = PlannerConfig(
            min_chips=args.min_chips,
            max_chips=args.max_chips,
            include_autoscaled=not args.static_only,
        )
        report = plan_scenario(
            spec,
            config,
            slo=resolve_slo(
                spec,
                ttft_p99_s=args.slo_p99_ttft,
                latency_p95_s=args.slo_p95_latency,
                queue_wait_p99_s=args.slo_p99_queue_wait,
            ),
            prune=not args.no_prune,
            processes=args.jobs,
            engine=args.engine,
        )
        if args.json:
            sys.stdout.write(report.to_json())
        else:
            print(format_plan_report(report))
        return 0 if report.feasible else 1

    # write-golden
    directory = Path(args.dir)
    directory.mkdir(parents=True, exist_ok=True)
    names = args.names or list(GOLDEN_PLAN_SCENARIOS)
    for name in names:
        spec = get_scenario(name)
        report = plan_scenario(spec)
        path = directory / f"{spec.name}.json"
        path.write_text(report.to_json(), encoding="utf-8")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
