"""The planning engine: prune analytically, simulate the survivors exactly.

:func:`plan_scenario` is the planner's one entry point.  Given a scenario
spec (traffic, serving knobs, SLOs) and a :class:`~repro.planner.space.
PlannerConfig` (chip designs × fleet options), it

1. compiles the scenario once — the trace is identical for every
   candidate, because candidates replace the *fleet*, never the traffic;
2. floors every chip design's achievable TTFT/latency percentiles with one
   array pass (:mod:`repro.planner.prune`) and drops designs that provably
   miss an objective, together with all their fleet options;
3. exactly simulates every surviving candidate through the event-driven
   serving engines, serially or through the multiprocessing sweep runner;
4. returns the Pareto frontier over (SLO attainment, chip count, fleet
   area, fleet power) plus the cheapest fully-SLO-meeting plan, wrapped in
   a deterministic, canonically-JSON :class:`~repro.planner.report.
   PlanReport`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..scenarios.compile import compile_scenario
from ..scenarios.spec import ScenarioSpec, SLOSpec
from .evaluate import CandidateOutcome, evaluate_candidate, simulate_candidate
from .pareto import pareto_frontier
from .prune import DesignBounds, prune_designs
from .report import PlanEntry, PlanReport, plan_hash
from .space import ChipDesign, FleetOption, PlannerConfig

#: Scenarios with committed golden plan reports under
#: ``tests/golden/planner/`` (kept small: planning simulates dozens of
#: fleets per scenario).  The CLI's ``write-golden``, the golden-plan
#: regression suite and the ``planner`` experiment all read this tuple.
GOLDEN_PLAN_SCENARIOS: Tuple[str, ...] = (
    "chat-poisson",
    "trace-spike",
    "video-stream",
)


def resolve_slo(
    spec: ScenarioSpec,
    *,
    ttft_p99_s: Optional[float] = None,
    latency_p95_s: Optional[float] = None,
    queue_wait_p99_s: Optional[float] = None,
) -> SLOSpec:
    """``spec``'s SLOs with per-metric overrides applied.

    Explicit ``ttft_p99_s`` / ``latency_p95_s`` / ``queue_wait_p99_s``
    values win over the spec's stated objectives; ``None`` keeps the
    spec's value.  Overrides change the *judging* targets only — the
    compiled trace stays the original scenario's.
    """
    base = spec.slo
    return SLOSpec(
        ttft_p99_s=ttft_p99_s if ttft_p99_s is not None else base.ttft_p99_s,
        latency_p95_s=(
            latency_p95_s if latency_p95_s is not None else base.latency_p95_s
        ),
        queue_wait_p99_s=(
            queue_wait_p99_s
            if queue_wait_p99_s is not None
            else base.queue_wait_p99_s
        ),
    )


def _best_entry(entries: Sequence[PlanEntry]) -> Optional[PlanEntry]:
    """The cheapest plan meeting every objective (deterministic tiebreak)."""
    meeting = [entry for entry in entries if entry.slo_met]
    if not meeting:
        return None
    return min(
        meeting,
        key=lambda entry: (
            entry.chips_provisioned,
            entry.fleet_area_mm2,
            entry.fleet_power_w,
            entry.design.name,
            entry.option.label,
        ),
    )


def plan_scenario(
    spec: ScenarioSpec,
    config: Optional[PlannerConfig] = None,
    *,
    slo: Optional[SLOSpec] = None,
    prune: bool = True,
    processes: Optional[int] = None,
    engine: str = "macro",
) -> PlanReport:
    """Search ``config``'s candidate space for the cheapest SLO-meeting fleet.

    ``spec`` is the scenario planned for; ``slo`` overrides its stated objectives (see
    :func:`resolve_slo`); ``prune=False`` skips the analytic bound pass and
    exactly simulates the whole space (the brute-force baseline the
    benchmark and the soundness suite compare against); ``processes`` fans
    candidate simulations out through the multiprocessing sweep runner —
    results are identical to the serial path because every worker derives
    the bit-identical trace from the spec hash; ``engine`` selects the
    decode-loop implementation survivors replay through (reports are
    engine-independent — the macro default just gets there faster).
    """
    config = config or PlannerConfig()
    resolved = slo if slo is not None else spec.slo
    targets = resolved.targets()
    compiled = compile_scenario(spec)
    designs: Tuple[ChipDesign, ...] = config.chip_grid

    options = config.fleet_options(with_autoscaled="ttft_p99_s" in targets)
    n_candidates = len(designs) * len(options)

    if prune:
        bounds = prune_designs(compiled, designs, targets)
    else:
        bounds = [
            DesignBounds(design, lb_ttft_p99_s=None, lb_latency_p95_s=None)
            for design in designs
        ]
    survivors = [verdict.design for verdict in bounds if verdict.feasible]
    candidates: List[Tuple[ChipDesign, FleetOption]] = [
        (design, option) for design in survivors for option in options
    ]

    if processes is not None and processes > 1 and len(candidates) > 1:
        # Imported lazily: repro.experiments registers the planner suite and
        # would recurse into this package at import time.
        from ..experiments.parallel import ParallelSweepRunner

        runner = ParallelSweepRunner(processes=processes)
        spec_json = spec.to_json()
        outcomes: List[CandidateOutcome] = list(
            runner.map(
                simulate_candidate,
                [
                    {
                        "spec_json": spec_json,
                        "design": design.to_dict(),
                        "option": option.to_dict(),
                        "targets": targets,
                        "engine": engine,
                    }
                    for design, option in candidates
                ],
            )
        )
    else:
        # Candidates sharing a chip design share one warm cost cache: the
        # memoized values are design properties, so warmed runs are
        # bit-identical to cold ones and ~5x faster across a full space.
        warm: dict = {}
        outcomes = [
            evaluate_candidate(
                spec, compiled.trace, design, option, targets, warm=warm,
                engine=engine,
            )
            for design, option in candidates
        ]

    entries = [PlanEntry.from_outcome(outcome, targets) for outcome in outcomes]
    frontier = tuple(pareto_frontier(entries, PlanEntry.objectives))
    best = _best_entry(entries)
    return PlanReport(
        scenario=spec.name,
        description=spec.description,
        spec_hash=spec.spec_hash(),
        plan_hash=plan_hash(spec.spec_hash(), config, targets),
        planner=config,
        slo_targets=tuple(sorted(targets.items())),
        n_requests=spec.n_requests,
        n_chip_designs=len(designs),
        n_candidates=n_candidates,
        n_pruned_designs=len(designs) - len(survivors),
        n_pruned_candidates=n_candidates - len(candidates),
        n_simulated=len(candidates),
        design_bounds=tuple(bounds),
        frontier=frontier,
        best=best,
    )
