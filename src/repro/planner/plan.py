"""The planning engine: prune analytically, simulate the survivors exactly.

:func:`plan_scenario` is the planner's one entry point.  Given a scenario
spec (traffic, serving knobs, SLOs) and a :class:`~repro.planner.space.
PlannerConfig` (chip designs × fleet options), it

1. compiles the scenario once — the trace is identical for every
   candidate, because candidates replace the *fleet*, never the traffic;
2. floors every chip design's achievable TTFT/latency percentiles with one
   array pass (:mod:`repro.planner.prune`) and drops designs that provably
   miss an objective, together with all their fleet options;
3. exactly simulates every surviving candidate through the event-driven
   serving engines, serially or through the multiprocessing sweep runner;
4. returns the Pareto frontier over (SLO attainment, chip count, fleet
   area, fleet power) plus the cheapest fully-SLO-meeting plan, wrapped in
   a deterministic, canonically-JSON :class:`~repro.planner.report.
   PlanReport`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.simulator import PerformanceSimulator
from ..scenarios.compile import compile_scenario
from ..scenarios.spec import ScenarioSpec, SLOSpec
from ..serving.queue import ServingRequest
from .bnb import bnb_prune_designs
from .evaluate import (
    CandidateOutcome,
    DesignWarmCache,
    axis_delta,
    candidate_survives_chip_loss,
    evaluate_candidate,
    simulate_candidate,
)
from .pareto import pareto_frontier
from .prune import DesignBounds, prune_designs
from .report import PlanEntry, PlanReport, plan_hash
from .space import ChipDesign, FleetOption, PlannerConfig
from .store import PlanStore, candidate_key

#: Search modes :func:`plan_scenario` accepts: ``"flat"`` bounds every
#: design individually (the oracle), ``"bnb"`` branch-and-bounds subgrids.
SEARCH_MODES: Tuple[str, ...] = ("flat", "bnb")

#: Axis deltas the warm cache can transfer memos across (see
#: :meth:`~repro.planner.evaluate.DesignWarmCache.delta_seed_from`).
_TRANSFERABLE_DELTAS = (frozenset({"keep_fraction"}), frozenset({"dram_gbps"}))

#: Scenarios with committed golden plan reports under
#: ``tests/golden/planner/`` (kept small: planning simulates dozens of
#: fleets per scenario).  The CLI's ``write-golden``, the golden-plan
#: regression suite and the ``planner`` experiment all read this tuple.
GOLDEN_PLAN_SCENARIOS: Tuple[str, ...] = (
    "chat-poisson",
    "trace-spike",
    "video-stream",
)


def resolve_slo(
    spec: ScenarioSpec,
    *,
    ttft_p99_s: Optional[float] = None,
    latency_p95_s: Optional[float] = None,
    queue_wait_p99_s: Optional[float] = None,
) -> SLOSpec:
    """``spec``'s SLOs with per-metric overrides applied.

    Explicit ``ttft_p99_s`` / ``latency_p95_s`` / ``queue_wait_p99_s``
    values win over the spec's stated objectives; ``None`` keeps the
    spec's value.  Overrides change the *judging* targets only — the
    compiled trace stays the original scenario's.
    """
    base = spec.slo
    return SLOSpec(
        ttft_p99_s=ttft_p99_s if ttft_p99_s is not None else base.ttft_p99_s,
        latency_p95_s=(
            latency_p95_s if latency_p95_s is not None else base.latency_p95_s
        ),
        queue_wait_p99_s=(
            queue_wait_p99_s
            if queue_wait_p99_s is not None
            else base.queue_wait_p99_s
        ),
    )


def _best_entry(
    entries: Sequence[PlanEntry], *, require_chip_loss: bool = False
) -> Optional[PlanEntry]:
    """The cheapest plan meeting every objective (deterministic tiebreak).

    With ``require_chip_loss`` only entries whose chaos probe confirmed
    one-chip-loss survival qualify.
    """
    meeting = [entry for entry in entries if entry.slo_met]
    if require_chip_loss:
        meeting = [entry for entry in meeting if entry.survives_chip_loss]
    if not meeting:
        return None
    return min(
        meeting,
        key=lambda entry: (
            entry.chips_provisioned,
            entry.fleet_area_mm2,
            entry.fleet_power_w,
            entry.design.name,
            entry.option.label,
        ),
    )


def _serial_outcomes(
    spec: ScenarioSpec,
    trace: Sequence[ServingRequest],
    candidates: Sequence[Tuple[ChipDesign, FleetOption]],
    targets: Dict[str, float],
    engine: str,
) -> List[CandidateOutcome]:
    """Simulate candidates serially with warm + delta-warm cost caches.

    Candidates sharing a chip design share one warm cost cache (the
    memoized values are design properties), and a *fresh* design's cache is
    delta-seeded from every already-simulated design it differs from on a
    single transferable axis: a ``keep_fraction`` neighbor donates its
    CC-stage latencies, a ``dram_gbps`` neighbor its decode bucket triples.
    All transferred memos are float-identical to what a cold run would
    recompute, so warmed and delta-warmed runs are bit-identical to cold
    ones (property-tested) — just faster.
    """
    warm: Dict[str, DesignWarmCache] = {}
    seen: Dict[str, ChipDesign] = {}
    outcomes: List[CandidateOutcome] = []
    for design, option in candidates:
        if design.name not in warm:
            cache = DesignWarmCache(
                simulator=PerformanceSimulator(design.system())
            )
            for other in seen.values():
                changed = axis_delta(design, other)
                if changed in _TRANSFERABLE_DELTAS:
                    cache.delta_seed_from(warm[other.name], changed)
            warm[design.name] = cache
            seen[design.name] = design
        outcomes.append(
            evaluate_candidate(
                spec, trace, design, option, targets, warm=warm, engine=engine
            )
        )
    return outcomes


def plan_scenario(
    spec: ScenarioSpec,
    config: Optional[PlannerConfig] = None,
    *,
    slo: Optional[SLOSpec] = None,
    prune: bool = True,
    processes: Optional[int] = None,
    engine: str = "macro",
    search: str = "flat",
    store: Optional[PlanStore] = None,
    require_chip_loss: bool = False,
) -> PlanReport:
    """Search ``config``'s candidate space for the cheapest SLO-meeting fleet.

    ``spec`` is the scenario planned for; ``slo`` overrides its stated objectives (see
    :func:`resolve_slo`); ``prune=False`` skips the analytic bound pass and
    exactly simulates the whole space (the brute-force baseline the
    benchmark and the soundness suite compare against); ``processes`` fans
    candidate simulations out through the multiprocessing sweep runner —
    results are identical to the serial path because every worker derives
    the bit-identical trace from the spec hash; ``engine`` selects the
    decode-loop implementation survivors replay through (reports are
    engine-independent — the macro default just gets there faster).

    ``search`` picks the pruning strategy: ``"flat"`` bounds every design
    individually, ``"bnb"`` branch-and-bounds nested subgrids and prices
    only corners plus surviving points (same survivors, frontier and best
    plan — orders of magnitude fewer bound evaluations on 10^5-candidate
    spaces).  ``store`` attaches a content-addressed
    :class:`~repro.planner.store.PlanStore`: candidates whose exact
    outcome is already stored skip simulation entirely (byte-identical by
    construction), and freshly simulated outcomes are written back.

    ``require_chip_loss`` additionally chaos-probes every SLO-meeting
    candidate (one chip permanently lost a quarter into the trace, see
    :func:`~repro.planner.evaluate.candidate_survives_chip_loss`) and
    restricts the best plan to candidates that survive; entries then
    carry their ``survives_chip_loss`` verdict.  Default off — the
    fault-free search and its goldens are unchanged.
    """
    if search not in SEARCH_MODES:
        raise ValueError(f"unknown search mode {search!r}; expected {SEARCH_MODES}")
    if search == "bnb" and not prune:
        raise ValueError(
            "bnb search *is* the pruning strategy; use search='flat' with "
            "prune=False for the brute-force baseline"
        )
    config = config or PlannerConfig()
    resolved = slo if slo is not None else spec.slo
    targets = resolved.targets()
    compiled = compile_scenario(spec)
    designs: Tuple[ChipDesign, ...] = config.chip_grid

    options = config.fleet_options(with_autoscaled="ttft_p99_s" in targets)
    n_candidates = len(designs) * len(options)

    n_pruned_subgrids: Optional[int] = None
    n_bound_evals: Optional[int] = None
    if not prune:
        bounds: Sequence[DesignBounds] = [
            DesignBounds(design, lb_ttft_p99_s=None, lb_latency_p95_s=None)
            for design in designs
        ]
        survivors = list(designs)
    elif search == "bnb":
        result = bnb_prune_designs(compiled, designs, targets)
        bounds = result.verdicts
        survivors = list(result.survivors)
        n_pruned_subgrids = result.n_pruned_subgrids
        n_bound_evals = result.n_bound_evals
    else:
        bounds = prune_designs(compiled, designs, targets)
        survivors = [verdict.design for verdict in bounds if verdict.feasible]
    candidates: List[Tuple[ChipDesign, FleetOption]] = [
        (design, option) for design in survivors for option in options
    ]

    # Consult the plan store first: a hit is the byte-identical outcome a
    # fresh simulation would produce (simulation is a pure function of the
    # keyed inputs), so hits drop out of the simulation set entirely.
    spec_hash = spec.spec_hash()
    stored: Dict[int, CandidateOutcome] = {}
    keys: Dict[int, str] = {}
    if store is not None:
        ttft_target = targets.get("ttft_p99_s")
        for index, (design, option) in enumerate(candidates):
            key = candidate_key(
                spec_hash, design, option, ttft_target_s=ttft_target
            )
            keys[index] = key
            hit = store.get(key)
            if hit is not None:
                stored[index] = hit
    to_simulate = [
        (index, candidate)
        for index, candidate in enumerate(candidates)
        if index not in stored
    ]

    fresh: List[CandidateOutcome]
    if processes is not None and processes > 1 and len(to_simulate) > 1:
        # Imported lazily: repro.experiments registers the planner suite and
        # would recurse into this package at import time.
        from ..experiments.parallel import ParallelSweepRunner

        runner = ParallelSweepRunner(processes=processes)
        spec_json = spec.to_json()
        fresh = list(
            runner.map(
                simulate_candidate,
                [
                    {
                        "spec_json": spec_json,
                        "design": design.to_dict(),
                        "option": option.to_dict(),
                        "targets": targets,
                        "engine": engine,
                    }
                    for _, (design, option) in to_simulate
                ],
            )
        )
    else:
        fresh = _serial_outcomes(
            spec,
            compiled.trace,
            [candidate for _, candidate in to_simulate],
            targets,
            engine,
        )

    by_index = dict(stored)
    for (index, _), outcome in zip(to_simulate, fresh):
        by_index[index] = outcome
        if store is not None:
            store.put(keys[index], spec_hash, outcome)
    outcomes = [by_index[index] for index in range(len(candidates))]

    entries = [PlanEntry.from_outcome(outcome, targets) for outcome in outcomes]
    if require_chip_loss:
        # Probe only SLO-meeting entries: the survival requirement can
        # only demote plans that would otherwise qualify as best.
        entries = [
            replace(
                entry,
                survives_chip_loss=candidate_survives_chip_loss(
                    spec, compiled.trace, design, option, targets, engine=engine
                ),
            )
            if entry.slo_met
            else entry
            for entry, (design, option) in zip(entries, candidates)
        ]
    frontier = tuple(pareto_frontier(entries, PlanEntry.objectives))
    best = _best_entry(entries, require_chip_loss=require_chip_loss)
    return PlanReport(
        scenario=spec.name,
        description=spec.description,
        spec_hash=spec_hash,
        plan_hash=plan_hash(spec_hash, config, targets),
        planner=config,
        slo_targets=tuple(sorted(targets.items())),
        n_requests=spec.n_requests,
        n_chip_designs=len(designs),
        n_candidates=n_candidates,
        n_pruned_designs=len(designs) - len(survivors),
        n_pruned_candidates=n_candidates - len(candidates),
        n_simulated=len(to_simulate),
        design_bounds=tuple(bounds),
        frontier=frontier,
        best=best,
        search=search,
        n_pruned_subgrids=n_pruned_subgrids,
        n_bound_evals=n_bound_evals,
        store_hits=None if store is None else len(stored),
        store_misses=None if store is None else len(to_simulate),
        require_chip_loss=require_chip_loss,
    )
