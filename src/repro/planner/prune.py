"""Analytic SLO-infeasibility pruning of chip designs.

The planner's expensive step is exact fleet simulation; the cheap step is
the array-native bound pass of
:func:`repro.core.batch.batch_service_time_bounds`, which floors every
request's TTFT and end-to-end latency on every chip design in one
broadcasted evaluation.  Because the bounds hold for *any* fleet size,
dispatch policy, batch composition and admission decision, a design whose
bound percentile already misses an objective can be rejected — together
with every fleet option built on it — without simulating anything.

Soundness (a pruned design can never be one the exact simulator would
accept) follows from pointwise dominance: every served request's recorded
TTFT/latency is at least its analytic floor, and the linear-interpolated
percentile the SLO checks use is monotone under pointwise dominance.  The
planner's fleet candidates always admit with the front-door queue, so every
request of the trace is served and the percentile runs over the same
population the bounds cover.  The property suite re-proves this against
brute-force exact search on randomized small spaces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.batch import ServiceTimeBoundsPricer
from ..models.mllm import get_mllm
from ..scenarios.compile import CompiledScenario
from .space import ChipDesign

#: Designs priced per :meth:`ServiceTimeBoundsPricer.bounds` call when the
#: flat planner bounds a huge grid: the broadcast matrices are
#: ``(chunk, unique ops)`` — chunking caps their footprint (a 10^5-design
#: grid against a rich trace would otherwise materialize gigabytes) while
#: the hoisted shape tables keep the per-chunk fixed cost negligible.
BOUND_CHUNK_DESIGNS = 2048


@dataclass(frozen=True)
class DesignBounds:
    """One chip design's analytic bound percentiles and feasibility verdict.

    ``lb_ttft_p99_s`` / ``lb_latency_p95_s`` are the trace percentiles of
    the per-request lower bounds (``None`` when the bound pass was
    skipped); ``reasons`` names each objective the bound already misses —
    empty for designs that survive to exact simulation.
    """

    design: ChipDesign
    lb_ttft_p99_s: Optional[float]
    lb_latency_p95_s: Optional[float]
    reasons: Tuple[str, ...] = ()

    @property
    def feasible(self) -> bool:
        """True when no objective is provably missed by the bounds."""
        return not self.reasons

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the verdict to plain JSON data."""
        return {
            "design": self.design.to_dict(),
            "lb_ttft_p99_s": self.lb_ttft_p99_s,
            "lb_latency_p95_s": self.lb_latency_p95_s,
            "feasible": self.feasible,
            "reasons": list(self.reasons),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DesignBounds":
        """Rebuild a verdict from :meth:`to_dict` data."""
        return cls(
            design=ChipDesign.from_dict(data["design"]),
            lb_ttft_p99_s=data.get("lb_ttft_p99_s"),
            lb_latency_p95_s=data.get("lb_latency_p95_s"),
            reasons=tuple(str(reason) for reason in data.get("reasons", ())),
        )


def trace_pricer(compiled: CompiledScenario) -> ServiceTimeBoundsPricer:
    """The service-time-bound pricer of a compiled scenario's trace.

    Compiles the trace's unique shapes once with the scenario's serving
    knobs; the result prices any batch of chip designs via
    :meth:`~repro.core.batch.ServiceTimeBoundsPricer.bounds`.  Both
    planner search modes derive every analytic bound through one such
    pricer per planning run.
    """
    spec = compiled.spec
    return ServiceTimeBoundsPricer(
        get_mllm(spec.fleet.model),
        list(compiled.unique_shapes),
        cc_bandwidth_fraction=spec.fleet.cc_bandwidth_fraction,
        context_bucket=spec.fleet.context_bucket,
    )


def bound_percentiles(
    pricer: ServiceTimeBoundsPricer,
    columns: np.ndarray,
    designs: Sequence[ChipDesign],
) -> Tuple[np.ndarray, np.ndarray]:
    """(p99 TTFT floors, p95 latency floors) of ``designs`` over a trace.

    ``columns`` maps every trace request to its pricer shape column (see
    :meth:`~repro.core.batch.ServiceTimeBoundsPricer.trace_columns`).
    np.percentile's default linear interpolation matches
    ``repro.serving.metrics.percentile``, so pointwise dominance of the
    per-request floors carries over to the SLO-check percentiles.
    """
    bounds = pricer.bounds([design.system() for design in designs])
    lb_ttft_p99 = np.percentile(bounds.min_ttft_s[:, columns], 99, axis=1)
    lb_latency_p95 = np.percentile(bounds.min_latency_s[:, columns], 95, axis=1)
    return lb_ttft_p99, lb_latency_p95


def design_verdict(
    design: ChipDesign,
    lb_ttft_p99: float,
    lb_latency_p95: float,
    targets: Mapping[str, float],
) -> DesignBounds:
    """Fold one ``design``'s bound percentiles into its feasibility verdict.

    ``lb_ttft_p99`` and ``lb_latency_p95`` are the design's floor
    percentiles over the trace, judged against the objectives in
    ``targets``.  Strict comparisons: a bound exactly on target never
    prunes.  Queue-wait objectives never prune — their analytic floor is
    zero.
    """
    reasons: List[str] = []
    ttft_target = targets.get("ttft_p99_s")
    latency_target = targets.get("latency_p95_s")
    if ttft_target is not None and lb_ttft_p99 > ttft_target:
        reasons.append(
            f"analytic p99 TTFT floor {lb_ttft_p99:.6g}s exceeds "
            f"target {ttft_target:.6g}s"
        )
    if latency_target is not None and lb_latency_p95 > latency_target:
        reasons.append(
            f"analytic p95 latency floor {lb_latency_p95:.6g}s "
            f"exceeds target {latency_target:.6g}s"
        )
    return DesignBounds(
        design=design,
        lb_ttft_p99_s=float(lb_ttft_p99),
        lb_latency_p95_s=float(lb_latency_p95),
        reasons=tuple(reasons),
    )


def prune_designs(
    compiled: CompiledScenario,
    designs: Sequence[ChipDesign],
    targets: Mapping[str, float],
    *,
    pricer: Optional[ServiceTimeBoundsPricer] = None,
    chunk_designs: int = BOUND_CHUNK_DESIGNS,
) -> List[DesignBounds]:
    """Bound every design of ``designs`` against ``compiled``'s trace and ``targets``.

    Returns one :class:`DesignBounds` per design, in input order; see
    :func:`design_verdict` for the per-design feasibility rule.  Designs
    are priced in ``chunk_designs``-sized batches so the broadcast
    matrices stay bounded on 10^5-design grids; ``pricer`` optionally
    reuses an already-compiled :func:`trace_pricer` (the planner shares
    one across the whole run).
    """
    if pricer is None:
        pricer = trace_pricer(compiled)
    columns = pricer.trace_columns(compiled.trace)
    verdicts: List[DesignBounds] = []
    for start in range(0, len(designs), max(chunk_designs, 1)):
        chunk = designs[start : start + max(chunk_designs, 1)]
        lb_ttft_p99, lb_latency_p95 = bound_percentiles(pricer, columns, chunk)
        verdicts.extend(
            design_verdict(design, lb_ttft_p99[row], lb_latency_p95[row], targets)
            for row, design in enumerate(chunk)
        )
    return verdicts
