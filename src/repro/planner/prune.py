"""Analytic SLO-infeasibility pruning of chip designs.

The planner's expensive step is exact fleet simulation; the cheap step is
the array-native bound pass of
:func:`repro.core.batch.batch_service_time_bounds`, which floors every
request's TTFT and end-to-end latency on every chip design in one
broadcasted evaluation.  Because the bounds hold for *any* fleet size,
dispatch policy, batch composition and admission decision, a design whose
bound percentile already misses an objective can be rejected — together
with every fleet option built on it — without simulating anything.

Soundness (a pruned design can never be one the exact simulator would
accept) follows from pointwise dominance: every served request's recorded
TTFT/latency is at least its analytic floor, and the linear-interpolated
percentile the SLO checks use is monotone under pointwise dominance.  The
planner's fleet candidates always admit with the front-door queue, so every
request of the trace is served and the percentile runs over the same
population the bounds cover.  The property suite re-proves this against
brute-force exact search on randomized small spaces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.batch import batch_service_time_bounds
from ..models.mllm import get_mllm
from ..scenarios.compile import CompiledScenario
from .space import ChipDesign


@dataclass(frozen=True)
class DesignBounds:
    """One chip design's analytic bound percentiles and feasibility verdict.

    ``lb_ttft_p99_s`` / ``lb_latency_p95_s`` are the trace percentiles of
    the per-request lower bounds (``None`` when the bound pass was
    skipped); ``reasons`` names each objective the bound already misses —
    empty for designs that survive to exact simulation.
    """

    design: ChipDesign
    lb_ttft_p99_s: Optional[float]
    lb_latency_p95_s: Optional[float]
    reasons: Tuple[str, ...] = ()

    @property
    def feasible(self) -> bool:
        """True when no objective is provably missed by the bounds."""
        return not self.reasons

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the verdict to plain JSON data."""
        return {
            "design": self.design.to_dict(),
            "lb_ttft_p99_s": self.lb_ttft_p99_s,
            "lb_latency_p95_s": self.lb_latency_p95_s,
            "feasible": self.feasible,
            "reasons": list(self.reasons),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DesignBounds":
        """Rebuild a verdict from :meth:`to_dict` data."""
        return cls(
            design=ChipDesign.from_dict(data["design"]),
            lb_ttft_p99_s=data.get("lb_ttft_p99_s"),
            lb_latency_p95_s=data.get("lb_latency_p95_s"),
            reasons=tuple(str(reason) for reason in data.get("reasons", ())),
        )


def prune_designs(
    compiled: CompiledScenario,
    designs: Sequence[ChipDesign],
    targets: Mapping[str, float],
) -> List[DesignBounds]:
    """Bound every design of ``designs`` against ``compiled``'s trace and ``targets``.

    Returns one :class:`DesignBounds` per design, in input order.  A design
    is marked infeasible when the p99 of its per-request TTFT floors
    exceeds a stated ``ttft_p99_s`` target, or the p95 of its latency
    floors exceeds a stated ``latency_p95_s`` target (strict comparisons:
    a bound exactly on target never prunes).  Queue-wait objectives never
    prune — their analytic floor is zero.
    """
    spec = compiled.spec
    bounds = batch_service_time_bounds(
        get_mllm(spec.fleet.model),
        list(compiled.unique_shapes),
        [design.system() for design in designs],
        cc_bandwidth_fraction=spec.fleet.cc_bandwidth_fraction,
        context_bucket=spec.fleet.context_bucket,
    )
    columns = np.asarray(
        [bounds.shape_index(request.request) for request in compiled.trace],
        dtype=np.int64,
    )
    # Per-design trace percentiles of the per-request floors; np.percentile's
    # default linear interpolation matches repro.serving.metrics.percentile,
    # so pointwise dominance carries over to the SLO-check percentiles.
    lb_ttft_p99 = np.percentile(bounds.min_ttft_s[:, columns], 99, axis=1)
    lb_latency_p95 = np.percentile(bounds.min_latency_s[:, columns], 95, axis=1)

    verdicts: List[DesignBounds] = []
    ttft_target = targets.get("ttft_p99_s")
    latency_target = targets.get("latency_p95_s")
    for row, design in enumerate(designs):
        reasons: List[str] = []
        if ttft_target is not None and lb_ttft_p99[row] > ttft_target:
            reasons.append(
                f"analytic p99 TTFT floor {lb_ttft_p99[row]:.6g}s exceeds "
                f"target {ttft_target:.6g}s"
            )
        if latency_target is not None and lb_latency_p95[row] > latency_target:
            reasons.append(
                f"analytic p95 latency floor {lb_latency_p95[row]:.6g}s "
                f"exceeds target {latency_target:.6g}s"
            )
        verdicts.append(
            DesignBounds(
                design=design,
                lb_ttft_p99_s=float(lb_ttft_p99[row]),
                lb_latency_p95_s=float(lb_latency_p95[row]),
                reasons=tuple(reasons),
            )
        )
    return verdicts
