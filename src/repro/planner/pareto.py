"""Pareto-dominance utilities over maximization objective vectors.

The planner ranks candidate plans on several axes at once — SLO
attainment, chip count, silicon area, power envelope — and returns the
non-dominated set instead of collapsing the axes into one score.  All
functions here treat objective vectors as *maximization* tuples; callers
negate cost-like axes (see :meth:`repro.planner.report.PlanEntry.
objectives`).
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple, TypeVar

Item = TypeVar("Item")
Objectives = Tuple[float, ...]


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when vector ``a`` Pareto-dominates vector ``b``.

    ``a`` dominates ``b`` when it is at least as good on every objective
    and strictly better on at least one (both vectors maximize, and must
    have equal length).
    """
    if len(a) != len(b):
        raise ValueError("objective vectors must have equal length")
    return all(x >= y for x, y in zip(a, b)) and any(x > y for x, y in zip(a, b))


def pareto_frontier(
    items: Sequence[Item], objectives: Callable[[Item], Sequence[float]]
) -> List[Item]:
    """The non-dominated subset of ``items``, preserving input order.

    ``objectives`` maps an item to its maximization vector.  Items whose
    vectors tie exactly are all kept (neither dominates), so the frontier
    is deterministic for a deterministic input order.
    """
    vectors = [tuple(objectives(item)) for item in items]
    frontier: List[Item] = []
    for index, item in enumerate(items):
        if not any(
            dominates(vectors[other], vectors[index])
            for other in range(len(items))
            if other != index
        ):
            frontier.append(item)
    return frontier
