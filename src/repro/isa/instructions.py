"""Instruction definitions of the EdgeMM AI extension.

Each instruction is a small frozen dataclass carrying its operands plus the
``FUNC``/``UOP`` selectors used in the binary encoding.  Instructions know
how to encode themselves into a 32-bit word (:meth:`BaseInstruction.encode`)
and how to render themselves as assembly text (:meth:`BaseInstruction.text`).

Matrix (M-M) instructions — CC-core systolic array:

=============  =======================================================
``mm.ld``      load a tile from data memory into a matrix register
``mm.st``      store a matrix register to data memory
``mm.mul``     md += ms1 @ ms2 (weight-stationary systolic GEMM tile)
``mm.zero``    clear a matrix register
=============  =======================================================

Matrix-vector (M-V) instructions — MC-core CIM macro:

=============  =======================================================
``mv.wld``     fill the CIM macro's weight block from data memory
``mv.mul``     vd = vs1 @ W against the resident weight block
``mv.prune``   invoke the hardware Act-Aware pruner on vs1 -> vd
``v.ld``       load a vector register from data memory
``v.st``       store a vector register to data memory
=============  =======================================================

Vector (V-V) instructions: ``v.add``, ``v.mul``, ``v.max``, ``v.relu``,
``v.silu``, ``v.cvt`` (precision conversion placeholder).

Config instructions: ``cfg.csrw`` writes a CSR from a scalar register.

``li`` (load-immediate into a scalar register) is provided as a pseudo
instruction for writing kernels; it belongs to the base RISC-V ISA and is
not encodable in the extension formats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Dict, Optional, Tuple, Type

from .encoding import InstructionFormat, encode_fields


class BaseInstruction:
    """Common interface of all extension instructions."""

    #: Instruction mnemonic, e.g. ``"mm.mul"``.
    MNEMONIC: ClassVar[str] = ""
    #: Encoding format; ``None`` marks non-encodable pseudo instructions.
    FORMAT: ClassVar[Optional[InstructionFormat]] = None
    #: func/uop selector values within the format.
    FUNC: ClassVar[int] = 0
    UOP: ClassVar[int] = 0

    def encode(self) -> int:
        """Encode into a 32-bit instruction word."""
        if self.FORMAT is None:
            raise NotImplementedError(
                f"{self.MNEMONIC!r} is a pseudo instruction and has no binary encoding"
            )
        return encode_fields(self.FORMAT, func=self.FUNC, uop=self.UOP, **self._fields())

    def _fields(self) -> Dict[str, int]:
        """Format-specific operand fields (overridden by subclasses)."""
        return {}

    def text(self) -> str:
        """Assembly text of the instruction."""
        operands = self._operand_text()
        if operands:
            return f"{self.MNEMONIC} {operands}"
        return self.MNEMONIC

    def _operand_text(self) -> str:
        return ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.text()}>"


# ----------------------------------------------------------------------
# M-M instructions (CC-core)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MMLoad(BaseInstruction):
    """``mm.ld md, (xs)`` — load a tile from memory at address in ``xs``."""

    md: int
    rs: int

    MNEMONIC: ClassVar[str] = "mm.ld"
    FORMAT: ClassVar[InstructionFormat] = InstructionFormat.MM
    FUNC: ClassVar[int] = 0

    def _fields(self) -> Dict[str, int]:
        return {"md": self.md, "ms1": self.rs & 0x7, "uimm": (self.rs >> 3) & 0x3}

    def _operand_text(self) -> str:
        return f"m{self.md}, (x{self.rs})"


@dataclass(frozen=True)
class MMStore(BaseInstruction):
    """``mm.st ms, (xs)`` — store a matrix register to memory."""

    ms: int
    rs: int

    MNEMONIC: ClassVar[str] = "mm.st"
    FORMAT: ClassVar[InstructionFormat] = InstructionFormat.MM
    FUNC: ClassVar[int] = 1

    def _fields(self) -> Dict[str, int]:
        return {"md": self.ms, "ms1": self.rs & 0x7, "uimm": (self.rs >> 3) & 0x3}

    def _operand_text(self) -> str:
        return f"m{self.ms}, (x{self.rs})"


@dataclass(frozen=True)
class MMMul(BaseInstruction):
    """``mm.mul md, ms1, ms2`` — md += ms1 @ ms2 on the systolic array."""

    md: int
    ms1: int
    ms2: int

    MNEMONIC: ClassVar[str] = "mm.mul"
    FORMAT: ClassVar[InstructionFormat] = InstructionFormat.MM
    FUNC: ClassVar[int] = 2

    def _fields(self) -> Dict[str, int]:
        return {"md": self.md, "ms1": self.ms1, "ms2": self.ms2}

    def _operand_text(self) -> str:
        return f"m{self.md}, m{self.ms1}, m{self.ms2}"


@dataclass(frozen=True)
class MMZero(BaseInstruction):
    """``mm.zero md`` — clear a matrix register."""

    md: int

    MNEMONIC: ClassVar[str] = "mm.zero"
    FORMAT: ClassVar[InstructionFormat] = InstructionFormat.MM
    FUNC: ClassVar[int] = 3

    def _fields(self) -> Dict[str, int]:
        return {"md": self.md}

    def _operand_text(self) -> str:
        return f"m{self.md}"


# ----------------------------------------------------------------------
# M-V instructions (MC-core) and vector load/store
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MVWeightLoad(BaseInstruction):
    """``mv.wld (xs)`` — fill the CIM macro weight block from memory."""

    rs: int

    MNEMONIC: ClassVar[str] = "mv.wld"
    FORMAT: ClassVar[InstructionFormat] = InstructionFormat.MV
    FUNC: ClassVar[int] = 0

    def _fields(self) -> Dict[str, int]:
        return {"rs1": self.rs}

    def _operand_text(self) -> str:
        return f"(x{self.rs})"


@dataclass(frozen=True)
class MVMul(BaseInstruction):
    """``mv.mul vd, vs1`` — vd = vs1 @ W against the resident CIM weights."""

    vd: int
    vs1: int

    MNEMONIC: ClassVar[str] = "mv.mul"
    FORMAT: ClassVar[InstructionFormat] = InstructionFormat.MV
    FUNC: ClassVar[int] = 1

    def _fields(self) -> Dict[str, int]:
        return {"vd": self.vd, "vs1": self.vs1}

    def _operand_text(self) -> str:
        return f"v{self.vd}, v{self.vs1}"


@dataclass(frozen=True)
class MVPrune(BaseInstruction):
    """``mv.prune vd, vs1`` — run the hardware Act-Aware pruner on vs1."""

    vd: int
    vs1: int

    MNEMONIC: ClassVar[str] = "mv.prune"
    FORMAT: ClassVar[InstructionFormat] = InstructionFormat.MV
    FUNC: ClassVar[int] = 2

    def _fields(self) -> Dict[str, int]:
        return {"vd": self.vd, "vs1": self.vs1}

    def _operand_text(self) -> str:
        return f"v{self.vd}, v{self.vs1}"


@dataclass(frozen=True)
class VLoad(BaseInstruction):
    """``v.ld vd, (xs)`` — load a vector register from memory."""

    vd: int
    rs: int

    MNEMONIC: ClassVar[str] = "v.ld"
    FORMAT: ClassVar[InstructionFormat] = InstructionFormat.MV
    FUNC: ClassVar[int] = 3

    def _fields(self) -> Dict[str, int]:
        return {"vd": self.vd, "rs1": self.rs}

    def _operand_text(self) -> str:
        return f"v{self.vd}, (x{self.rs})"


@dataclass(frozen=True)
class VStore(BaseInstruction):
    """``v.st vs, (xs)`` — store a vector register to memory."""

    vs: int
    rs: int

    MNEMONIC: ClassVar[str] = "v.st"
    FORMAT: ClassVar[InstructionFormat] = InstructionFormat.MV
    FUNC: ClassVar[int] = 4

    def _fields(self) -> Dict[str, int]:
        return {"vd": self.vs, "rs1": self.rs}

    def _operand_text(self) -> str:
        return f"v{self.vs}, (x{self.rs})"


# ----------------------------------------------------------------------
# V-V instructions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class VVBinary(BaseInstruction):
    """Base class of the two-source vector arithmetic instructions."""

    vd: int
    vs1: int
    vs2: int

    FORMAT: ClassVar[InstructionFormat] = InstructionFormat.VV

    def _fields(self) -> Dict[str, int]:
        return {"vd": self.vd, "vs1": self.vs1, "vs2": self.vs2}

    def _operand_text(self) -> str:
        return f"v{self.vd}, v{self.vs1}, v{self.vs2}"


@dataclass(frozen=True)
class VAdd(VVBinary):
    MNEMONIC: ClassVar[str] = "v.add"
    FUNC: ClassVar[int] = 0


@dataclass(frozen=True)
class VMul(VVBinary):
    MNEMONIC: ClassVar[str] = "v.mul"
    FUNC: ClassVar[int] = 1


@dataclass(frozen=True)
class VMax(VVBinary):
    MNEMONIC: ClassVar[str] = "v.max"
    FUNC: ClassVar[int] = 2


@dataclass(frozen=True)
class VVUnary(BaseInstruction):
    """Base class of the single-source vector instructions."""

    vd: int
    vs1: int

    FORMAT: ClassVar[InstructionFormat] = InstructionFormat.VV

    def _fields(self) -> Dict[str, int]:
        return {"vd": self.vd, "vs1": self.vs1}

    def _operand_text(self) -> str:
        return f"v{self.vd}, v{self.vs1}"


@dataclass(frozen=True)
class VRelu(VVUnary):
    MNEMONIC: ClassVar[str] = "v.relu"
    FUNC: ClassVar[int] = 3


@dataclass(frozen=True)
class VSilu(VVUnary):
    MNEMONIC: ClassVar[str] = "v.silu"
    FUNC: ClassVar[int] = 4


@dataclass(frozen=True)
class VConvert(VVUnary):
    """``v.cvt`` — data precision conversion (modelled as a copy)."""

    MNEMONIC: ClassVar[str] = "v.cvt"
    FUNC: ClassVar[int] = 5


# ----------------------------------------------------------------------
# Config and pseudo instructions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CsrWrite(BaseInstruction):
    """``cfg.csrw csr, xs`` — write a CSR from a scalar register."""

    csr: int
    rs: int

    MNEMONIC: ClassVar[str] = "cfg.csrw"
    FORMAT: ClassVar[InstructionFormat] = InstructionFormat.CONFIG
    FUNC: ClassVar[int] = 0

    def _fields(self) -> Dict[str, int]:
        return {"csr": self.csr, "rs1": self.rs}

    def _operand_text(self) -> str:
        return f"0x{self.csr:02x}, x{self.rs}"


@dataclass(frozen=True)
class LoadImmediate(BaseInstruction):
    """``li xd, imm`` — base-ISA pseudo instruction for kernel setup."""

    rd: int
    value: int

    MNEMONIC: ClassVar[str] = "li"
    FORMAT: ClassVar[Optional[InstructionFormat]] = None

    def _operand_text(self) -> str:
        return f"x{self.rd}, {self.value}"


@dataclass(frozen=True)
class Sync(BaseInstruction):
    """``sync`` — core synchronisation barrier within a cluster."""

    MNEMONIC: ClassVar[str] = "sync"
    FORMAT: ClassVar[InstructionFormat] = InstructionFormat.CONFIG
    FUNC: ClassVar[int] = 1


#: All encodable instruction classes, keyed by (format, func) for decoding.
INSTRUCTION_CLASSES: Tuple[Type[BaseInstruction], ...] = (
    MMLoad,
    MMStore,
    MMMul,
    MMZero,
    MVWeightLoad,
    MVMul,
    MVPrune,
    VLoad,
    VStore,
    VAdd,
    VMul,
    VMax,
    VRelu,
    VSilu,
    VConvert,
    CsrWrite,
    Sync,
)

DECODE_TABLE: Dict[Tuple[InstructionFormat, int], Type[BaseInstruction]] = {
    (cls.FORMAT, cls.FUNC): cls
    for cls in INSTRUCTION_CLASSES
    if cls.FORMAT is not None
}

MNEMONIC_TABLE: Dict[str, Type[BaseInstruction]] = {
    cls.MNEMONIC: cls for cls in INSTRUCTION_CLASSES
}
MNEMONIC_TABLE["li"] = LoadImmediate
