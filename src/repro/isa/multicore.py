"""Cluster-level execution of extension kernels across multiple cores.

Section III-C describes EdgeMM's programming model: computing tasks are
allocated across cores with tensor partitioning; every core reads its index
and type from read-only CSRs, computes the address offsets of its tensor
shard, runs the same kernel on that shard and synchronises with its
neighbours at the end.

:class:`ClusterExecutor` reproduces that model functionally: it instantiates
one :class:`~repro.isa.executor.CoreExecutor` per core, partitions the output
dimension of a GEMM/GEMV/FFN job across them, builds the per-core kernels
with the existing kernel builders, runs them, gathers the shards and reports
the parallel cycle count (the slowest core, plus a synchronisation cost).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..arch.cim import CIMMacroConfig
from ..arch.systolic import SystolicArrayConfig
from .executor import CoreExecutor, ExecutionResult
from .kernels import (
    build_ffn_kernel,
    build_gemv_kernel,
    pack_tiles,
    simple_gemm_kernel,
    unpack_tiles,
)


@dataclass(frozen=True)
class ShardResult:
    """Execution record of one core's shard."""

    core_index: int
    columns: Tuple[int, int]
    cycles: float
    instructions: int


@dataclass(frozen=True)
class ClusterResult:
    """Result of a cluster-level kernel execution."""

    output: np.ndarray
    shards: Tuple[ShardResult, ...]
    sync_cycles: float

    @property
    def parallel_cycles(self) -> float:
        """Wall-clock cycles: the slowest core plus the final barrier."""
        if not self.shards:
            return self.sync_cycles
        return max(shard.cycles for shard in self.shards) + self.sync_cycles

    @property
    def total_core_cycles(self) -> float:
        """Sum of per-core cycles (the work metric, not wall-clock)."""
        return sum(shard.cycles for shard in self.shards)

    @property
    def load_balance(self) -> float:
        """Slowest over mean core cycles (1.0 = perfectly balanced)."""
        if not self.shards:
            return 1.0
        cycles = [shard.cycles for shard in self.shards]
        mean = sum(cycles) / len(cycles)
        if mean == 0:
            return 1.0
        return max(cycles) / mean


def _column_shards(n: int, n_cores: int, multiple_of: int = 1) -> List[Tuple[int, int]]:
    """Split ``n`` output columns into contiguous per-core ranges.

    When ``multiple_of`` is given, shard boundaries are aligned to it (the
    systolic-array kernels need tile-aligned shards); the last core absorbs
    the remainder.
    """
    if n <= 0 or n_cores <= 0:
        raise ValueError("n and n_cores must be positive")
    base = math.ceil(n / n_cores)
    if multiple_of > 1:
        base = math.ceil(base / multiple_of) * multiple_of
    shards: List[Tuple[int, int]] = []
    start = 0
    for _ in range(n_cores):
        if start >= n:
            break
        stop = min(start + base, n)
        shards.append((start, stop))
        start = stop
    return shards


class ClusterExecutor:
    """Runs extension kernels across the cores of one cluster."""

    def __init__(
        self,
        core_type: str = "mc",
        n_cores: int = 2,
        *,
        systolic: Optional[SystolicArrayConfig] = None,
        cim: Optional[CIMMacroConfig] = None,
        memory_size: int = 1 << 20,
        vector_length: int = 8192,
        sync_cycles: float = 16.0,
    ) -> None:
        if core_type not in ("cc", "mc"):
            raise ValueError("core_type must be 'cc' or 'mc'")
        if n_cores <= 0:
            raise ValueError("n_cores must be positive")
        if sync_cycles < 0:
            raise ValueError("sync_cycles must be >= 0")
        self.core_type = core_type
        self.n_cores = n_cores
        self.sync_cycles = sync_cycles
        self.cores = [
            CoreExecutor(
                core_type,
                systolic=systolic,
                cim=cim,
                memory_size=memory_size,
                vector_length=vector_length,
            )
            for _ in range(n_cores)
        ]
        for index, core in enumerate(self.cores):
            core.state.csr.write("core_index", index, hardware=True)

    # ------------------------------------------------------------------
    # GEMV across MC-cores (output channels sharded)
    # ------------------------------------------------------------------
    def gemv(self, x: np.ndarray, w: np.ndarray) -> ClusterResult:
        """Compute ``x @ w`` with the output columns sharded across cores."""
        self._require_type("mc")
        x = np.asarray(x, dtype=np.float64).ravel()
        w = np.asarray(w, dtype=np.float64)
        if w.ndim != 2 or w.shape[0] != x.size:
            raise ValueError("w must have shape (len(x), n)")
        n = w.shape[1]
        shards = _column_shards(n, self.n_cores)
        output = np.zeros(n, dtype=np.float64)
        shard_results: List[ShardResult] = []
        for (start, stop), core in zip(shards, self.cores):
            plan = build_gemv_kernel(x.size, stop - start)
            plan.place(core, {"x": x, "w": w[:, start:stop]})
            result = core.run(plan.program)
            output[start:stop] = plan.fetch(core, "y")
            shard_results.append(
                self._shard(core, (start, stop), result)
            )
        return ClusterResult(
            output=output, shards=tuple(shard_results), sync_cycles=self.sync_cycles
        )

    # ------------------------------------------------------------------
    # GEMM across CC-cores (output columns sharded, tile aligned)
    # ------------------------------------------------------------------
    def gemm(self, a: np.ndarray, b: np.ndarray, *, tile: int = 16) -> ClusterResult:
        """Compute ``a @ b`` with the output columns sharded across cores.

        ``a`` must be (m x k) and ``b`` (k x n) with m, k, n multiples of the
        tile size (the ISA kernel's alignment requirement).
        """
        self._require_type("cc")
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ValueError("a and b must be conformable matrices")
        m, k = a.shape
        n = b.shape[1]
        if m % tile or k % tile or n % tile:
            raise ValueError("m, k and n must be multiples of the tile size")
        shards = _column_shards(n, self.n_cores, multiple_of=tile)
        output = np.zeros((m, n), dtype=np.float64)
        shard_results: List[ShardResult] = []
        packed_a = pack_tiles(a, tile, tile)
        for (start, stop), core in zip(shards, self.cores):
            cols = stop - start
            plan = simple_gemm_kernel(m, k, cols, tile=tile)
            plan.place(
                core,
                {"a": packed_a, "b": pack_tiles(b[:, start:stop], tile, tile)},
            )
            result = core.run(plan.program)
            packed_c = plan.fetch(core, "c")
            output[:, start:stop] = unpack_tiles(packed_c.ravel(), m, cols, tile, tile)
            shard_results.append(self._shard(core, (start, stop), result))
        return ClusterResult(
            output=output, shards=tuple(shard_results), sync_cycles=self.sync_cycles
        )

    # ------------------------------------------------------------------
    # Gated FFN across MC-cores (FFN channels sharded)
    # ------------------------------------------------------------------
    def gated_ffn(
        self,
        x: np.ndarray,
        w_gate: np.ndarray,
        w_up: np.ndarray,
        w_down: np.ndarray,
    ) -> ClusterResult:
        """Compute the gated-MLP FFN (Eq. 1) sharded over the d_ffn dimension.

        Each core evaluates its slice of the FFN channels (gate/up columns and
        the matching down rows); the partial outputs are summed at the end,
        which is what the cluster's shared buffer is for.
        """
        self._require_type("mc")
        x = np.asarray(x, dtype=np.float64).ravel()
        w_gate = np.asarray(w_gate, dtype=np.float64)
        w_up = np.asarray(w_up, dtype=np.float64)
        w_down = np.asarray(w_down, dtype=np.float64)
        d_model = x.size
        if w_gate.shape != w_up.shape or w_gate.shape[0] != d_model:
            raise ValueError("w_gate/w_up must have shape (d_model, d_ffn)")
        d_ffn = w_gate.shape[1]
        if w_down.shape != (d_ffn, d_model):
            raise ValueError("w_down must have shape (d_ffn, d_model)")
        shards = _column_shards(d_ffn, self.n_cores)
        output = np.zeros(d_model, dtype=np.float64)
        shard_results: List[ShardResult] = []
        for (start, stop), core in zip(shards, self.cores):
            plan = build_ffn_kernel(d_model, stop - start)
            plan.place(
                core,
                {
                    "x": x,
                    "w_gate": w_gate[:, start:stop],
                    "w_up": w_up[:, start:stop],
                    "w_down": w_down[start:stop, :],
                },
            )
            result = core.run(plan.program)
            output += plan.fetch(core, "y")
            shard_results.append(self._shard(core, (start, stop), result))
        return ClusterResult(
            output=output, shards=tuple(shard_results), sync_cycles=self.sync_cycles
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _require_type(self, expected: str) -> None:
        if self.core_type != expected:
            raise ValueError(
                f"this operation requires {expected.upper()}-cores, but the "
                f"cluster was built with {self.core_type.upper()}-cores"
            )

    def _shard(
        self, core: CoreExecutor, columns: Tuple[int, int], result: ExecutionResult
    ) -> ShardResult:
        return ShardResult(
            core_index=core.state.csr.read("core_index"),
            columns=columns,
            cycles=result.cycles,
            instructions=result.instructions_executed,
        )

    def core_indices(self) -> Dict[int, int]:
        """The core-index CSR value of every core (programming-model check)."""
        return {
            index: core.state.csr.read("core_index")
            for index, core in enumerate(self.cores)
        }
