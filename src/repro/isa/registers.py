"""Architectural register state of an AI-extended core.

A core's extension state comprises:

* a **matrix register file** (CC-cores): four R x C matrix registers shared
  between the systolic array and the vector unit,
* a **vector register file** (all cores): 32 vector registers of element
  width C used by the V-V subset and as the M-V source/destination,
* a **scalar register file**: the 32 RISC-V integer registers (x0 wired to
  zero) used for addresses,
* a **CSR file** storing runtime parameters — tile sizes, the core/cluster
  index and type (read-only), and the pruning parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np


class MatrixRegisterFile:
    """The R x C matrix registers of a CC-core."""

    def __init__(self, n_registers: int = 4, rows: int = 16, cols: int = 16) -> None:
        if n_registers <= 0 or rows <= 0 or cols <= 0:
            raise ValueError("register file dimensions must be positive")
        self.n_registers = n_registers
        self.rows = rows
        self.cols = cols
        self._data = np.zeros((n_registers, rows, cols), dtype=np.float64)

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.n_registers:
            raise IndexError(
                f"matrix register m{index} out of range (0..{self.n_registers - 1})"
            )

    def read(self, index: int) -> np.ndarray:
        self._check_index(index)
        return self._data[index].copy()

    def write(self, index: int, value: np.ndarray) -> None:
        self._check_index(index)
        value = np.asarray(value, dtype=np.float64)
        if value.shape != (self.rows, self.cols):
            raise ValueError(
                f"matrix register m{index} expects shape "
                f"({self.rows}, {self.cols}), got {value.shape}"
            )
        self._data[index] = value

    def write_tile(self, index: int, tile: np.ndarray) -> None:
        """Write a possibly smaller tile into the top-left corner, zero-padding."""
        self._check_index(index)
        tile = np.asarray(tile, dtype=np.float64)
        if tile.ndim != 2:
            raise ValueError("tile must be two-dimensional")
        if tile.shape[0] > self.rows or tile.shape[1] > self.cols:
            raise ValueError(
                f"tile shape {tile.shape} exceeds register shape "
                f"({self.rows}, {self.cols})"
            )
        padded = np.zeros((self.rows, self.cols), dtype=np.float64)
        padded[: tile.shape[0], : tile.shape[1]] = tile
        self._data[index] = padded

    def row(self, index: int, row: int) -> np.ndarray:
        """One row of a matrix register (the vector unit's operand width)."""
        self._check_index(index)
        if not 0 <= row < self.rows:
            raise IndexError("row out of range")
        return self._data[index, row].copy()

    def reset(self) -> None:
        self._data[:] = 0.0


class VectorRegisterFile:
    """The 32 vector registers shared by the V-V and M-V instructions."""

    def __init__(self, n_registers: int = 32, length: int = 64) -> None:
        if n_registers <= 0 or length <= 0:
            raise ValueError("register file dimensions must be positive")
        self.n_registers = n_registers
        self.length = length
        self._data = np.zeros((n_registers, length), dtype=np.float64)

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.n_registers:
            raise IndexError(
                f"vector register v{index} out of range (0..{self.n_registers - 1})"
            )

    def read(self, index: int) -> np.ndarray:
        self._check_index(index)
        return self._data[index].copy()

    def write(self, index: int, value: np.ndarray) -> None:
        self._check_index(index)
        value = np.asarray(value, dtype=np.float64).ravel()
        if value.size > self.length:
            raise ValueError(
                f"vector of {value.size} elements exceeds register length {self.length}"
            )
        padded = np.zeros(self.length, dtype=np.float64)
        padded[: value.size] = value
        self._data[index] = padded

    def reset(self) -> None:
        self._data[:] = 0.0


class ScalarRegisterFile:
    """The 32 RISC-V integer registers; x0 is hard-wired to zero."""

    def __init__(self) -> None:
        self._data = [0] * 32

    def read(self, index: int) -> int:
        if not 0 <= index < 32:
            raise IndexError("scalar register index out of range")
        return self._data[index]

    def write(self, index: int, value: int) -> None:
        if not 0 <= index < 32:
            raise IndexError("scalar register index out of range")
        if index == 0:
            return
        self._data[index] = int(value)

    def reset(self) -> None:
        self._data = [0] * 32


#: CSR addresses of the extension's runtime parameters.
CSR_ADDRESSES: Dict[str, int] = {
    "core_index": 0x00,
    "cluster_index": 0x01,
    "core_type": 0x02,       # 0 = CC, 1 = MC (read-only)
    "tile_m": 0x10,
    "tile_k": 0x11,
    "tile_n": 0x12,
    "vector_length": 0x13,
    "prune_k": 0x20,
    "prune_threshold": 0x21,
    "prune_count": 0x22,     # written by the hardware pruner (n of Alg. 1)
}

#: CSRs that software may not write (identification registers).
READ_ONLY_CSRS = frozenset({"core_index", "cluster_index", "core_type"})

CSR_NAME_BY_ADDRESS: Dict[int, str] = {addr: name for name, addr in CSR_ADDRESSES.items()}


class CSRFile:
    """Control and status registers holding the extension's runtime state."""

    def __init__(self, initial: Optional[Dict[str, int]] = None) -> None:
        self._values: Dict[str, int] = {name: 0 for name in CSR_ADDRESSES}
        if initial:
            for name, value in initial.items():
                self._require_known(name)
                self._values[name] = int(value)

    @staticmethod
    def _require_known(name: str) -> None:
        if name not in CSR_ADDRESSES:
            raise KeyError(
                f"unknown CSR {name!r}; known CSRs: {', '.join(sorted(CSR_ADDRESSES))}"
            )

    def read(self, name: str) -> int:
        self._require_known(name)
        return self._values[name]

    def read_address(self, address: int) -> int:
        name = CSR_NAME_BY_ADDRESS.get(address)
        if name is None:
            raise KeyError(f"unknown CSR address 0x{address:02x}")
        return self._values[name]

    def write(self, name: str, value: int, *, hardware: bool = False) -> None:
        """Write a CSR; software writes to read-only CSRs raise."""
        self._require_known(name)
        if name in READ_ONLY_CSRS and not hardware:
            raise PermissionError(f"CSR {name!r} is read-only for software")
        self._values[name] = int(value)

    def write_address(self, address: int, value: int, *, hardware: bool = False) -> None:
        name = CSR_NAME_BY_ADDRESS.get(address)
        if name is None:
            raise KeyError(f"unknown CSR address 0x{address:02x}")
        self.write(name, value, hardware=hardware)

    def snapshot(self) -> Dict[str, int]:
        return dict(self._values)


@dataclass
class CoreState:
    """The complete architectural state of one AI-extended core."""

    matrix: MatrixRegisterFile = field(default_factory=MatrixRegisterFile)
    vector: VectorRegisterFile = field(default_factory=VectorRegisterFile)
    scalar: ScalarRegisterFile = field(default_factory=ScalarRegisterFile)
    csr: CSRFile = field(default_factory=CSRFile)

    def reset(self) -> None:
        self.matrix.reset()
        self.vector.reset()
        self.scalar.reset()
        self.csr = CSRFile(
            {name: self.csr.read(name) for name in ("core_index", "cluster_index", "core_type")}
        )
