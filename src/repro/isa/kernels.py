"""Kernel builders: customised kernel functions using the extension ISA.

The EdgeMM programming model keeps the RISC-V toolchain unmodified and
expresses AI work as "customised kernel functions" built from the extended
instructions.  These builders generate such kernels for the common cases:

* :func:`build_gemm_kernel` — tiled GEMM for a CC-core's systolic array,
* :func:`build_gemv_kernel` — GEMV for an MC-core's CIM macro,
* :func:`build_pruned_gemv_kernel` — GEMV preceded by the hardware
  Act-Aware pruner invocation,
* :func:`build_ffn_kernel` — the gated-MLP FFN (Eq. 1) on an MC-core.

Each builder returns a :class:`KernelPlan` bundling the instruction list
with the memory layout it assumes, so callers can place the operands, run
the kernel on a :class:`~repro.isa.executor.CoreExecutor` and read back the
result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .executor import CoreExecutor
from .instructions import (
    BaseInstruction,
    CsrWrite,
    LoadImmediate,
    MMLoad,
    MMMul,
    MMStore,
    MMZero,
    MVMul,
    MVPrune,
    MVWeightLoad,
    VLoad,
    VMul,
    VSilu,
    VStore,
)
from .registers import CSR_ADDRESSES


@dataclass
class KernelPlan:
    """A kernel program plus the memory layout it expects.

    ``layout`` maps operand names (``"a"``, ``"b"``, ``"c"``, ``"w_gate"``,
    ...) to ``(address, shape)`` placements in the core's data memory.
    """

    program: List[BaseInstruction]
    layout: Dict[str, Tuple[int, Tuple[int, ...]]]
    memory_words: int

    def place(self, executor: CoreExecutor, operands: Dict[str, np.ndarray]) -> None:
        """Write operand arrays into the executor's data memory."""
        for name, array in operands.items():
            if name not in self.layout:
                raise KeyError(f"kernel has no operand named {name!r}")
            address, shape = self.layout[name]
            array = np.asarray(array, dtype=np.float64)
            if array.shape != shape:
                raise ValueError(
                    f"operand {name!r} expects shape {shape}, got {array.shape}"
                )
            executor.memory.write(address, array.ravel())

    def fetch(self, executor: CoreExecutor, name: str) -> np.ndarray:
        """Read an operand or result array back from the data memory."""
        if name not in self.layout:
            raise KeyError(f"kernel has no operand named {name!r}")
        address, shape = self.layout[name]
        length = int(np.prod(shape))
        return executor.memory.read(address, length).reshape(shape)


def _set_scalar(program: List[BaseInstruction], register: int, value: int) -> None:
    program.append(LoadImmediate(rd=register, value=value))


def _write_csr(program: List[BaseInstruction], csr_name: str, value: int, scratch: int) -> None:
    _set_scalar(program, scratch, value)
    program.append(CsrWrite(csr=CSR_ADDRESSES[csr_name], rs=scratch))


def build_gemm_kernel(
    m: int, k: int, n: int, *, tile_rows: int = 16, tile_cols: int = 16
) -> KernelPlan:
    """Tiled GEMM ``C = A @ B`` for a CC-core.

    ``A`` is (m x k), ``B`` is (k x n) and ``C`` is (m x n).  All dimensions
    must be multiples of the tile geometry (the simulator-level model handles
    padding; the ISA kernel keeps the addressing exact).
    """
    if m <= 0 or k <= 0 or n <= 0:
        raise ValueError("GEMM dimensions must be positive")
    if m % tile_rows or k % tile_rows or n % tile_cols:
        raise ValueError(
            "m and k must be multiples of tile_rows and n of tile_cols for the ISA kernel"
        )
    a_base = 0
    b_base = a_base + m * k
    c_base = b_base + k * n
    total = c_base + m * n
    layout = {
        "a": (a_base, (m, k)),
        "b": (b_base, (k, n)),
        "c": (c_base, (m, n)),
    }
    program: List[BaseInstruction] = []
    m_tiles = m // tile_rows
    k_tiles = k // tile_rows
    n_tiles = n // tile_cols
    # Matrix register allocation: m0 = A tile, m1 = B tile, m2 = C accumulator.
    for mi in range(m_tiles):
        for ni in range(n_tiles):
            program.append(MMZero(md=2))
            for ki in range(k_tiles):
                # A tile at rows [mi*T, (mi+1)*T), cols [ki*T, (ki+1)*T).
                a_addr = a_base + (mi * tile_rows) * k + ki * tile_rows
                b_addr = b_base + (ki * tile_rows) * n + ni * tile_cols
                _set_scalar(program, 1, a_addr)
                program.extend(_strided_tile_load(md=0, rs=1, stride=k))
                _set_scalar(program, 2, b_addr)
                program.extend(_strided_tile_load(md=1, rs=2, stride=n))
                program.append(MMMul(md=2, ms1=0, ms2=1))
            c_addr = c_base + (mi * tile_rows) * n + ni * tile_cols
            _set_scalar(program, 3, c_addr)
            program.extend(_strided_tile_store(ms=2, rs=3, stride=n))
    return KernelPlan(program=program, layout=layout, memory_words=total)


def _strided_tile_load(md: int, rs: int, stride: int) -> List[BaseInstruction]:
    """Tile load helper.

    The executor's ``mm.ld`` reads a contiguous R x C block; real kernels
    use a strided access pattern.  The plan-level helper keeps a single
    ``mm.ld`` and relies on :func:`pack_tiles` to lay tiles out contiguously;
    the stride argument is kept for interface clarity.
    """
    del stride
    return [MMLoad(md=md, rs=rs)]


def _strided_tile_store(ms: int, rs: int, stride: int) -> List[BaseInstruction]:
    del stride
    return [MMStore(ms=ms, rs=rs)]


def pack_tiles(matrix: np.ndarray, tile_rows: int, tile_cols: int) -> np.ndarray:
    """Reorder a matrix so each (tile_rows x tile_cols) tile is contiguous.

    The ISA-level ``mm.ld`` reads a contiguous tile; kernels therefore expect
    their operands pre-packed into tile-major order, which is what the DMA
    engine does when staging data into the cluster's data memory.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    rows, cols = matrix.shape
    if rows % tile_rows or cols % tile_cols:
        raise ValueError("matrix dimensions must be multiples of the tile size")
    packed = np.empty_like(matrix)
    index = 0
    for r0 in range(0, rows, tile_rows):
        for c0 in range(0, cols, tile_cols):
            tile = matrix[r0 : r0 + tile_rows, c0 : c0 + tile_cols]
            flat = tile.ravel()
            packed.ravel()[index : index + flat.size] = flat
            index += flat.size
    return packed


def simple_gemm_kernel(m: int, k: int, n: int, *, tile: int = 16) -> KernelPlan:
    """GEMM kernel for operands already packed in tile-major order.

    This is the kernel the tests exercise end-to-end: operands must be packed
    with :func:`pack_tiles` (A by rows x reduction, B by reduction x cols) and
    the result tiles come back in tile-major order, unpackable with
    :func:`unpack_tiles`.
    """
    if m % tile or k % tile or n % tile:
        raise ValueError("dimensions must be multiples of the tile size")
    a_base = 0
    b_base = m * k
    c_base = b_base + k * n
    layout = {
        "a": (a_base, (m, k)),
        "b": (b_base, (k, n)),
        "c": (c_base, (m, n)),
    }
    program: List[BaseInstruction] = []
    m_tiles, k_tiles, n_tiles = m // tile, k // tile, n // tile
    tile_words = tile * tile
    for mi in range(m_tiles):
        for ni in range(n_tiles):
            program.append(MMZero(md=2))
            for ki in range(k_tiles):
                a_addr = a_base + ((mi * k_tiles) + ki) * tile_words
                b_addr = b_base + ((ki * n_tiles) + ni) * tile_words
                _set_scalar(program, 1, a_addr)
                program.append(MMLoad(md=0, rs=1))
                _set_scalar(program, 2, b_addr)
                program.append(MMLoad(md=1, rs=2))
                program.append(MMMul(md=2, ms1=0, ms2=1))
            c_addr = c_base + ((mi * n_tiles) + ni) * tile_words
            _set_scalar(program, 3, c_addr)
            program.append(MMStore(ms=2, rs=3))
    return KernelPlan(program=program, layout=layout, memory_words=c_base + m * n)


def unpack_tiles(packed: np.ndarray, rows: int, cols: int, tile_rows: int, tile_cols: int) -> np.ndarray:
    """Inverse of :func:`pack_tiles`."""
    packed = np.asarray(packed, dtype=np.float64)
    if packed.size != rows * cols:
        raise ValueError("packed array has the wrong number of elements")
    result = np.empty((rows, cols), dtype=np.float64)
    index = 0
    flat = packed.ravel()
    for r0 in range(0, rows, tile_rows):
        for c0 in range(0, cols, tile_cols):
            tile = flat[index : index + tile_rows * tile_cols].reshape(tile_rows, tile_cols)
            result[r0 : r0 + tile_rows, c0 : c0 + tile_cols] = tile
            index += tile_rows * tile_cols
    return result


def build_gemv_kernel(k: int, n: int) -> KernelPlan:
    """GEMV ``y = x @ W`` on an MC-core's CIM macro.

    ``x`` is a length-k vector, ``W`` a (k x n) weight matrix resident in
    the macro, ``y`` the length-n output.  The weight block must fit the
    macro; callers tile larger matrices across cores/clusters at the mapping
    level.
    """
    if k <= 0 or n <= 0:
        raise ValueError("GEMV dimensions must be positive")
    x_base = 0
    w_base = k
    y_base = w_base + k * n
    layout = {
        "x": (x_base, (k,)),
        "w": (w_base, (k, n)),
        "y": (y_base, (n,)),
    }
    program: List[BaseInstruction] = []
    _write_csr(program, "tile_k", k, scratch=5)
    _write_csr(program, "tile_n", n, scratch=5)
    _write_csr(program, "vector_length", max(k, n), scratch=5)
    _set_scalar(program, 1, w_base)
    program.append(MVWeightLoad(rs=1))
    _set_scalar(program, 2, x_base)
    program.append(VLoad(vd=1, rs=2))
    program.append(MVMul(vd=2, vs1=1))
    _write_csr(program, "vector_length", n, scratch=5)
    _set_scalar(program, 3, y_base)
    program.append(VStore(vs=2, rs=3))
    return KernelPlan(program=program, layout=layout, memory_words=y_base + n)


def build_pruned_gemv_kernel(k: int, n: int, prune_k: int) -> KernelPlan:
    """GEMV with the hardware Act-Aware pruner selecting ``prune_k`` channels.

    The pruner compacts the activation vector to its Top-k channels; the
    address generator would fetch only the matching weight rows, so the CIM
    weight block loaded here is the compacted (prune_k x n) matrix.  The
    caller obtains the selected channels from
    :class:`~repro.arch.pruner_hw.HardwarePruner` (same configuration) to
    compact the weight matrix, mirroring the DRAM-read reduction.
    """
    if prune_k <= 0 or prune_k > k:
        raise ValueError("prune_k must be in [1, k]")
    x_base = 0
    w_base = k
    y_base = w_base + prune_k * n
    layout = {
        "x": (x_base, (k,)),
        "w_pruned": (w_base, (prune_k, n)),
        "y": (y_base, (n,)),
    }
    program: List[BaseInstruction] = []
    _write_csr(program, "vector_length", k, scratch=5)
    _write_csr(program, "prune_k", prune_k, scratch=5)
    _set_scalar(program, 2, x_base)
    program.append(VLoad(vd=1, rs=2))
    program.append(MVPrune(vd=3, vs1=1))
    _write_csr(program, "tile_k", prune_k, scratch=5)
    _write_csr(program, "tile_n", n, scratch=5)
    _set_scalar(program, 1, w_base)
    program.append(MVWeightLoad(rs=1))
    program.append(MVMul(vd=2, vs1=3))
    _write_csr(program, "vector_length", n, scratch=5)
    _set_scalar(program, 3, y_base)
    program.append(VStore(vs=2, rs=3))
    return KernelPlan(program=program, layout=layout, memory_words=y_base + n)


def build_ffn_kernel(d_model: int, d_ffn: int) -> KernelPlan:
    """Gated-MLP FFN (paper Eq. 1) on an MC-core.

    Computes ``FFN(x) = ((x @ W_up) * silu(x @ W_gate)) @ W_down`` with all
    three weight matrices streamed through the CIM macro.  Suitable for
    block sizes that fit the macro; the mapping layer tiles larger layers.
    """
    if d_model <= 0 or d_ffn <= 0:
        raise ValueError("d_model and d_ffn must be positive")
    x_base = 0
    gate_base = x_base + d_model
    up_base = gate_base + d_model * d_ffn
    down_base = up_base + d_model * d_ffn
    y_base = down_base + d_ffn * d_model
    layout = {
        "x": (x_base, (d_model,)),
        "w_gate": (gate_base, (d_model, d_ffn)),
        "w_up": (up_base, (d_model, d_ffn)),
        "w_down": (down_base, (d_ffn, d_model)),
        "y": (y_base, (d_model,)),
    }
    program: List[BaseInstruction] = []
    _write_csr(program, "vector_length", max(d_model, d_ffn), scratch=5)
    _set_scalar(program, 2, x_base)
    program.append(VLoad(vd=1, rs=2))
    # gate = silu(x @ W_gate)
    _write_csr(program, "tile_k", d_model, scratch=5)
    _write_csr(program, "tile_n", d_ffn, scratch=5)
    _set_scalar(program, 1, gate_base)
    program.append(MVWeightLoad(rs=1))
    program.append(MVMul(vd=2, vs1=1))
    program.append(VSilu(vd=2, vs1=2))
    # up = x @ W_up
    _set_scalar(program, 1, up_base)
    program.append(MVWeightLoad(rs=1))
    program.append(MVMul(vd=3, vs1=1))
    # h = up * gate
    program.append(VMul(vd=4, vs1=3, vs2=2))
    # y = h @ W_down
    _write_csr(program, "tile_k", d_ffn, scratch=5)
    _write_csr(program, "tile_n", d_model, scratch=5)
    _set_scalar(program, 1, down_base)
    program.append(MVWeightLoad(rs=1))
    program.append(MVMul(vd=5, vs1=4))
    _write_csr(program, "vector_length", d_model, scratch=5)
    _set_scalar(program, 3, y_base)
    program.append(VStore(vs=5, rs=3))
    return KernelPlan(program=program, layout=layout, memory_words=y_base + d_model)
