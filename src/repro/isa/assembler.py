"""A small two-way assembler for the EdgeMM extension.

``assemble`` turns assembly text (one instruction per line, ``#`` comments)
into instruction objects; ``assemble_to_words`` additionally encodes them to
32-bit words.  ``disassemble`` renders instruction objects back to text.

The syntax mirrors the instruction ``text()`` output::

    cfg.csrw 0x10, x5
    mm.ld   m0, (x1)
    mm.ld   m1, (x2)
    mm.mul  m2, m0, m1
    mm.st   m2, (x3)
"""

from __future__ import annotations

import re
from typing import List, Sequence

from .instructions import (
    BaseInstruction,
    CsrWrite,
    LoadImmediate,
    MMLoad,
    MMMul,
    MMStore,
    MMZero,
    MVMul,
    MVPrune,
    MVWeightLoad,
    Sync,
    VAdd,
    VConvert,
    VLoad,
    VMax,
    VMul,
    VRelu,
    VSilu,
    VStore,
)


class AssemblerError(ValueError):
    """Raised on malformed assembly input."""


_REGISTER_RE = re.compile(r"^\(?([mvx])(\d+)\)?$")


def _parse_operand(token: str) -> tuple:
    """Parse one operand token into (kind, value).

    Kinds: ``"m"`` matrix register, ``"v"`` vector register, ``"x"`` scalar
    register, ``"imm"`` integer immediate.
    """
    token = token.strip()
    match = _REGISTER_RE.match(token)
    if match:
        return match.group(1), int(match.group(2))
    try:
        return "imm", int(token, 0)
    except ValueError:
        raise AssemblerError(f"cannot parse operand {token!r}") from None


def _expect(operands: Sequence[tuple], kinds: Sequence[str], mnemonic: str) -> List[int]:
    if len(operands) != len(kinds):
        raise AssemblerError(
            f"{mnemonic}: expected {len(kinds)} operand(s), got {len(operands)}"
        )
    values = []
    for (kind, value), expected in zip(operands, kinds):
        if kind != expected:
            raise AssemblerError(
                f"{mnemonic}: expected operand kind {expected!r}, got {kind!r}"
            )
        values.append(value)
    return values


def parse_line(line: str) -> BaseInstruction:
    """Parse one line of assembly into an instruction object."""
    code = line.split("#", 1)[0].strip()
    if not code:
        raise AssemblerError("empty line")
    parts = code.split(None, 1)
    mnemonic = parts[0].lower()
    operand_text = parts[1] if len(parts) > 1 else ""
    operands = [
        _parse_operand(token) for token in operand_text.split(",") if token.strip()
    ]

    if mnemonic == "mm.ld":
        md, rs = _expect(operands, ("m", "x"), mnemonic)
        return MMLoad(md=md, rs=rs)
    if mnemonic == "mm.st":
        ms, rs = _expect(operands, ("m", "x"), mnemonic)
        return MMStore(ms=ms, rs=rs)
    if mnemonic == "mm.mul":
        md, ms1, ms2 = _expect(operands, ("m", "m", "m"), mnemonic)
        return MMMul(md=md, ms1=ms1, ms2=ms2)
    if mnemonic == "mm.zero":
        (md,) = _expect(operands, ("m",), mnemonic)
        return MMZero(md=md)
    if mnemonic == "mv.wld":
        (rs,) = _expect(operands, ("x",), mnemonic)
        return MVWeightLoad(rs=rs)
    if mnemonic == "mv.mul":
        vd, vs1 = _expect(operands, ("v", "v"), mnemonic)
        return MVMul(vd=vd, vs1=vs1)
    if mnemonic == "mv.prune":
        vd, vs1 = _expect(operands, ("v", "v"), mnemonic)
        return MVPrune(vd=vd, vs1=vs1)
    if mnemonic == "v.ld":
        vd, rs = _expect(operands, ("v", "x"), mnemonic)
        return VLoad(vd=vd, rs=rs)
    if mnemonic == "v.st":
        vs, rs = _expect(operands, ("v", "x"), mnemonic)
        return VStore(vs=vs, rs=rs)
    if mnemonic == "v.add":
        vd, vs1, vs2 = _expect(operands, ("v", "v", "v"), mnemonic)
        return VAdd(vd=vd, vs1=vs1, vs2=vs2)
    if mnemonic == "v.mul":
        vd, vs1, vs2 = _expect(operands, ("v", "v", "v"), mnemonic)
        return VMul(vd=vd, vs1=vs1, vs2=vs2)
    if mnemonic == "v.max":
        vd, vs1, vs2 = _expect(operands, ("v", "v", "v"), mnemonic)
        return VMax(vd=vd, vs1=vs1, vs2=vs2)
    if mnemonic == "v.relu":
        vd, vs1 = _expect(operands, ("v", "v"), mnemonic)
        return VRelu(vd=vd, vs1=vs1)
    if mnemonic == "v.silu":
        vd, vs1 = _expect(operands, ("v", "v"), mnemonic)
        return VSilu(vd=vd, vs1=vs1)
    if mnemonic == "v.cvt":
        vd, vs1 = _expect(operands, ("v", "v"), mnemonic)
        return VConvert(vd=vd, vs1=vs1)
    if mnemonic == "cfg.csrw":
        csr, rs = _expect(operands, ("imm", "x"), mnemonic)
        return CsrWrite(csr=csr, rs=rs)
    if mnemonic == "li":
        rd, value = _expect(operands, ("x", "imm"), mnemonic)
        return LoadImmediate(rd=rd, value=value)
    if mnemonic == "sync":
        _expect(operands, (), mnemonic)
        return Sync()
    raise AssemblerError(f"unknown mnemonic {mnemonic!r}")


def assemble(source: str) -> List[BaseInstruction]:
    """Assemble a multi-line program into instruction objects."""
    program: List[BaseInstruction] = []
    for line_number, line in enumerate(source.splitlines(), start=1):
        stripped = line.split("#", 1)[0].strip()
        if not stripped:
            continue
        try:
            program.append(parse_line(stripped))
        except AssemblerError as exc:
            raise AssemblerError(f"line {line_number}: {exc}") from None
    return program


def assemble_to_words(source: str) -> List[int]:
    """Assemble a program and encode every instruction to a 32-bit word.

    Pseudo instructions (``li``) cannot be encoded and raise.
    """
    return [instruction.encode() for instruction in assemble(source)]


def disassemble(program: Sequence[BaseInstruction]) -> str:
    """Render a program back to assembly text."""
    return "\n".join(instruction.text() for instruction in program)
