"""Binary instruction formats of the EdgeMM AI extension (Fig. 7).

The extension adds four 32-bit instruction formats on top of RISC-V:

* **M-M** (matrix-matrix, CC-core): matrix registers for both sources and
  the destination — ``func | uop | ms2 | ms1 | md | func3 | size | opcode``.
* **M-V** (matrix-vector, MC-core): vector source/destination registers and
  a scalar register holding the base address of the matrix operand —
  ``func | uop | vs1 | rs1 | vd | func3 | opcode``.
* **V-V** (vector-vector, all cores): a subset of RISC-V vector
  instructions for activations and precision conversion.
* **Config**: writes runtime parameters (vector/matrix sizes, core index)
  into control and status registers (CSRs).

Field positions follow the figure: bit 0 is the least-significant bit of
the 32-bit word and the major opcode occupies bits [6:0].
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple


class InstructionFormat(enum.Enum):
    """The four extended instruction formats."""

    MM = "m-m"
    MV = "m-v"
    VV = "v-v"
    CONFIG = "config"


#: Major opcodes chosen from RISC-V's *custom* opcode space.
MAJOR_OPCODES: Dict[InstructionFormat, int] = {
    InstructionFormat.MM: 0b0001011,      # custom-0
    InstructionFormat.MV: 0b0101011,      # custom-1
    InstructionFormat.VV: 0b1011011,      # custom-2
    InstructionFormat.CONFIG: 0b1111011,  # custom-3
}

#: Reverse map from opcode value to format.
OPCODE_TO_FORMAT: Dict[int, InstructionFormat] = {
    value: fmt for fmt, value in MAJOR_OPCODES.items()
}


@dataclass(frozen=True)
class BitField:
    """A contiguous bit field ``[msb:lsb]`` inside a 32-bit word."""

    name: str
    lsb: int
    width: int

    def __post_init__(self) -> None:
        if not 0 <= self.lsb < 32:
            raise ValueError("lsb out of range")
        if self.width <= 0 or self.lsb + self.width > 32:
            raise ValueError("field does not fit in a 32-bit word")

    @property
    def msb(self) -> int:
        return self.lsb + self.width - 1

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1

    def insert(self, word: int, value: int) -> int:
        if not 0 <= value <= self.mask:
            raise ValueError(
                f"value {value} does not fit in field {self.name!r} "
                f"({self.width} bits)"
            )
        cleared = word & ~(self.mask << self.lsb)
        return cleared | (value << self.lsb)

    def extract(self, word: int) -> int:
        return (word >> self.lsb) & self.mask


# Field layouts per format (name -> BitField), LSB positions per Fig. 7.
_FORMAT_FIELDS: Dict[InstructionFormat, Tuple[BitField, ...]] = {
    InstructionFormat.MM: (
        BitField("opcode", 0, 7),
        BitField("size", 7, 3),
        BitField("func3", 10, 3),
        BitField("uimm", 13, 2),
        BitField("md", 15, 3),
        BitField("ms1", 18, 3),
        BitField("ms2", 21, 3),
        BitField("uop", 24, 3),
        BitField("func", 27, 5),
    ),
    InstructionFormat.MV: (
        BitField("opcode", 0, 7),
        BitField("func3", 7, 3),
        BitField("vd", 10, 5),
        BitField("rs1", 15, 5),
        BitField("vs1", 20, 5),
        BitField("uop", 25, 2),
        BitField("func", 27, 5),
    ),
    InstructionFormat.VV: (
        BitField("opcode", 0, 7),
        BitField("func3", 7, 3),
        BitField("vd", 10, 5),
        BitField("vs1", 15, 5),
        BitField("vs2", 20, 5),
        BitField("uop", 25, 2),
        BitField("func", 27, 5),
    ),
    InstructionFormat.CONFIG: (
        BitField("opcode", 0, 7),
        BitField("size", 7, 3),
        BitField("func3", 10, 3),
        BitField("csr", 13, 7),
        BitField("rs1", 20, 5),
        BitField("uop", 25, 2),
        BitField("func", 27, 5),
    ),
}


def format_fields(fmt: InstructionFormat) -> Tuple[BitField, ...]:
    """The ordered bit fields of an instruction format."""
    return _FORMAT_FIELDS[fmt]


def field_names(fmt: InstructionFormat) -> Tuple[str, ...]:
    return tuple(field.name for field in _FORMAT_FIELDS[fmt])


def encode_fields(fmt: InstructionFormat, **values: int) -> int:
    """Pack field values into a 32-bit instruction word.

    The ``opcode`` field is filled automatically from the format; any field
    not supplied defaults to zero.
    """
    word = 0
    provided = dict(values)
    provided.setdefault("opcode", MAJOR_OPCODES[fmt])
    known = field_names(fmt)
    unknown = set(provided) - set(known)
    if unknown:
        raise ValueError(
            f"unknown field(s) {sorted(unknown)} for format {fmt.value}; "
            f"valid fields: {list(known)}"
        )
    for field in _FORMAT_FIELDS[fmt]:
        word = field.insert(word, provided.get(field.name, 0))
    return word


def decode_fields(word: int) -> Tuple[InstructionFormat, Dict[str, int]]:
    """Unpack a 32-bit instruction word into its format and field values."""
    if not 0 <= word < (1 << 32):
        raise ValueError("instruction word must be an unsigned 32-bit value")
    opcode = word & 0x7F
    fmt = OPCODE_TO_FORMAT.get(opcode)
    if fmt is None:
        raise ValueError(f"unknown major opcode 0b{opcode:07b}")
    values = {field.name: field.extract(word) for field in _FORMAT_FIELDS[fmt]}
    return fmt, values
