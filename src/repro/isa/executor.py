"""Functional, cycle-counting executor for extension kernels.

The executor models one AI-extended core running a kernel: the host core
decodes each instruction and dispatches it to the coprocessor; the executor
applies the instruction's NumPy semantics to the architectural state and
charges cycles according to the hardware models (Eq. 2 for the systolic
array, Eq. 3 for the CIM macro, comparator throughput for the pruner).

Data memory is modelled as a flat float array; scalar registers hold element
addresses into it.  This keeps kernels simple while still exercising the
load/store, tiling and CSR-configuration behaviour of the programming model.

Dispatch is decoded once, not per execution: a class-level table maps each
instruction type to its handler, and whole kernels memoize their resolved
handler list by instruction tuple, so replaying a kernel (the common case —
tiled matmuls re-run the same program per tile schedule) skips the
per-instruction type resolution entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..arch.cim import CIMMacro, CIMMacroConfig
from ..arch.pruner_hw import HardwarePruner, PrunerConfig
from ..arch.systolic import SystolicArray, SystolicArrayConfig
from .instructions import (
    BaseInstruction,
    CsrWrite,
    LoadImmediate,
    MMLoad,
    MMMul,
    MMStore,
    MMZero,
    MVMul,
    MVPrune,
    MVWeightLoad,
    Sync,
    VAdd,
    VConvert,
    VLoad,
    VMax,
    VMul,
    VRelu,
    VSilu,
    VStore,
)
from .registers import CoreState, CSR_NAME_BY_ADDRESS, MatrixRegisterFile, VectorRegisterFile


class ExecutionError(RuntimeError):
    """Raised when a kernel performs an illegal operation."""


@dataclass
class ExecutionResult:
    """Outcome of running one kernel on one core."""

    cycles: float
    instructions_executed: int
    cycle_breakdown: Dict[str, float] = field(default_factory=dict)

    def cycles_for(self, mnemonic: str) -> float:
        return self.cycle_breakdown.get(mnemonic, 0.0)


class DataMemory:
    """Flat word-addressed data memory (one float64 element per address)."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError("memory size must be positive")
        self._data = np.zeros(size, dtype=np.float64)

    @property
    def size(self) -> int:
        return self._data.size

    def _check_range(self, address: int, length: int) -> None:
        if address < 0 or length < 0 or address + length > self._data.size:
            raise ExecutionError(
                f"memory access [{address}, {address + length}) out of bounds "
                f"(size {self._data.size})"
            )

    def read(self, address: int, length: int) -> np.ndarray:
        self._check_range(address, length)
        return self._data[address : address + length].copy()

    def write(self, address: int, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64).ravel()
        self._check_range(address, values.size)
        self._data[address : address + values.size] = values

    def read_matrix(self, address: int, rows: int, cols: int) -> np.ndarray:
        return self.read(address, rows * cols).reshape(rows, cols)

    def write_matrix(self, address: int, matrix: np.ndarray) -> None:
        self.write(address, np.asarray(matrix, dtype=np.float64).ravel())


class CoreExecutor:
    """Executes extension kernels on one core's architectural state."""

    def __init__(
        self,
        core_type: str = "cc",
        *,
        systolic: Optional[SystolicArrayConfig] = None,
        cim: Optional[CIMMacroConfig] = None,
        pruner: Optional[PrunerConfig] = None,
        memory_size: int = 1 << 20,
        vector_length: int = 64,
    ) -> None:
        if core_type not in ("cc", "mc"):
            raise ValueError("core_type must be 'cc' or 'mc'")
        self.core_type = core_type
        self.systolic = SystolicArray(systolic or SystolicArrayConfig())
        self.cim = CIMMacro(cim or CIMMacroConfig())
        self.pruner = HardwarePruner(pruner or PrunerConfig(vector_length=vector_length))
        sa_cfg = self.systolic.config
        self.state = CoreState(
            matrix=MatrixRegisterFile(
                n_registers=sa_cfg.matrix_registers, rows=sa_cfg.rows, cols=sa_cfg.cols
            ),
            vector=VectorRegisterFile(length=vector_length),
        )
        self.state.csr.write("core_type", 0 if core_type == "cc" else 1, hardware=True)
        self.state.csr.write("vector_length", vector_length, hardware=True)
        self.memory = DataMemory(memory_size)
        self._cim_weights: Optional[np.ndarray] = None
        self._kernel_cache: Dict[
            Tuple[BaseInstruction, ...],
            List[Callable[["CoreExecutor", BaseInstruction], float]],
        ] = {}

    # ------------------------------------------------------------------
    # Program execution
    # ------------------------------------------------------------------
    def decode_kernel(
        self, program: Sequence[BaseInstruction]
    ) -> List[Callable[["CoreExecutor", BaseInstruction], float]]:
        """Resolve every instruction to its handler (one type lookup each)."""
        handlers = []
        for instruction in program:
            handler = _DISPATCH.get(type(instruction))
            if handler is None:
                raise ExecutionError(f"unsupported instruction {instruction!r}")
            handlers.append(handler)
        return handlers

    def run(self, program: Sequence[BaseInstruction]) -> ExecutionResult:
        """Execute a kernel and return its cycle count.

        The decoded handler list is memoized by the instruction tuple
        (instructions are frozen, hashable dataclasses), so replaying a
        kernel costs one dictionary probe instead of re-resolving every
        instruction's dispatch.
        """
        key = tuple(program)
        handlers = self._kernel_cache.get(key)
        if handlers is None:
            handlers = self.decode_kernel(program)
            self._kernel_cache[key] = handlers
        total_cycles = 0.0
        breakdown: Dict[str, float] = {}
        for handler, instruction in zip(handlers, key):
            cycles = handler(self, instruction)
            total_cycles += cycles
            breakdown[instruction.MNEMONIC] = breakdown.get(instruction.MNEMONIC, 0.0) + cycles
        return ExecutionResult(
            cycles=total_cycles,
            instructions_executed=len(program),
            cycle_breakdown=breakdown,
        )

    # ------------------------------------------------------------------
    # Per-instruction semantics
    # ------------------------------------------------------------------
    def _execute(self, instruction: BaseInstruction) -> float:
        handler = _DISPATCH.get(type(instruction))
        if handler is None:
            raise ExecutionError(f"unsupported instruction {instruction!r}")
        return handler(self, instruction)

    def _execute_load_immediate(self, instruction: LoadImmediate) -> float:
        self.state.scalar.write(instruction.rd, instruction.value)
        return 1.0

    def _execute_csr_write(self, instruction: CsrWrite) -> float:
        name = CSR_NAME_BY_ADDRESS.get(instruction.csr)
        if name is None:
            raise ExecutionError(f"unknown CSR address 0x{instruction.csr:02x}")
        value = self.state.scalar.read(instruction.rs)
        self.state.csr.write(name, value)
        return 1.0

    def _execute_sync(self, instruction: Sync) -> float:
        return 1.0

    def _require_cc(self) -> None:
        if self.core_type != "cc":
            raise ExecutionError("matrix (M-M) instructions require a CC-core")

    def _require_mc(self) -> None:
        if self.core_type != "mc":
            raise ExecutionError("CIM (M-V) instructions require an MC-core")

    def _execute_mm(self, instruction: BaseInstruction) -> float:
        self._require_cc()
        sa = self.systolic.config
        if isinstance(instruction, MMZero):
            self.state.matrix.write(instruction.md, np.zeros((sa.rows, sa.cols)))
            return 1.0
        if isinstance(instruction, MMLoad):
            address = self.state.scalar.read(instruction.rs)
            tile = self.memory.read_matrix(address, sa.rows, sa.cols)
            self.state.matrix.write(instruction.md, tile)
            return float(sa.rows)
        if isinstance(instruction, MMStore):
            address = self.state.scalar.read(instruction.rs)
            self.memory.write_matrix(address, self.state.matrix.read(instruction.ms))
            return float(sa.rows)
        if isinstance(instruction, MMMul):
            # md += ms1 @ ms2 with ms2 stationary in the array.
            ms1 = self.state.matrix.read(instruction.ms1)
            ms2 = self.state.matrix.read(instruction.ms2)
            accumulator = self.state.matrix.read(instruction.md)
            self.state.matrix.write(instruction.md, accumulator + ms1 @ ms2)
            # Eq. 2 minus the explicit weight-load cycles charged to mm.ld:
            # fill (R - 1) + drain (C + M - 1) - 1 with M = R activation rows.
            m_rows = sa.rows
            return float((sa.rows - 1) + (sa.cols + m_rows - 1) - 1)
        raise ExecutionError(f"unhandled M-M instruction {instruction!r}")

    def _execute_mv(self, instruction: BaseInstruction) -> float:
        vector_length = self.state.vector.length
        if isinstance(instruction, VLoad):
            address = self.state.scalar.read(instruction.rs)
            length = self.state.csr.read("vector_length") or vector_length
            self.state.vector.write(instruction.vd, self.memory.read(address, length))
            return float(-(-length // 8))
        if isinstance(instruction, VStore):
            address = self.state.scalar.read(instruction.rs)
            length = self.state.csr.read("vector_length") or vector_length
            values = self.state.vector.read(instruction.vs)[:length]
            self.memory.write(address, values)
            return float(-(-length // 8))
        self._require_mc()
        if isinstance(instruction, MVWeightLoad):
            k = self.state.csr.read("tile_k")
            n = self.state.csr.read("tile_n")
            if k <= 0 or n <= 0:
                raise ExecutionError("tile_k and tile_n CSRs must be set before mv.wld")
            if not self.cim.fits_weights(k, n):
                raise ExecutionError(
                    f"weight block {k}x{n} does not fit in the CIM macro "
                    f"({self.cim.config.storage_bytes} bytes)"
                )
            address = self.state.scalar.read(instruction.rs)
            self._cim_weights = self.memory.read_matrix(address, k, n)
            return float(self.cim.weight_fill_cycles(k, n, bytes_per_cycle=64))
        if isinstance(instruction, MVMul):
            if self._cim_weights is None:
                raise ExecutionError("mv.mul executed before mv.wld loaded weights")
            k, n = self._cim_weights.shape
            vs = self.state.vector.read(instruction.vs1)[:k]
            if vs.size < k:
                raise ExecutionError(
                    f"vector register holds {vs.size} elements but the weight "
                    f"block expects {k}"
                )
            self.state.vector.write(instruction.vd, vs @ self._cim_weights)
            return float(self.cim.gemv_cycles(k, n))
        if isinstance(instruction, MVPrune):
            k = self.state.csr.read("prune_k")
            length = self.state.csr.read("vector_length") or vector_length
            vs = self.state.vector.read(instruction.vs1)[:length]
            result = self.pruner.process(vs, max(k, 0))
            compacted = np.zeros(length, dtype=np.float64)
            compacted[: result.selected_values.size] = result.selected_values
            self.state.vector.write(instruction.vd, compacted)
            self.state.csr.write("prune_count", result.above_threshold_count, hardware=True)
            return float(result.cycles)
        raise ExecutionError(f"unhandled M-V instruction {instruction!r}")

    def _execute_vv(self, instruction: BaseInstruction) -> float:
        length = self.state.csr.read("vector_length") or self.state.vector.length
        lanes = (
            self.systolic.config.cols if self.core_type == "cc" else self.cim.config.columns
        )
        cycles = float(-(-length // lanes))
        vs1 = self.state.vector.read(instruction.vs1)
        if isinstance(instruction, (VAdd, VMul, VMax)):
            vs2 = self.state.vector.read(instruction.vs2)
            if isinstance(instruction, VAdd):
                result = vs1 + vs2
            elif isinstance(instruction, VMul):
                result = vs1 * vs2
            else:
                result = np.maximum(vs1, vs2)
        elif isinstance(instruction, VRelu):
            result = np.maximum(vs1, 0.0)
        elif isinstance(instruction, VSilu):
            result = vs1 / (1.0 + np.exp(-vs1))
            cycles *= 4  # SiLU needs the ACU exponential path
        elif isinstance(instruction, VConvert):
            result = vs1
        else:
            raise ExecutionError(f"unhandled V-V instruction {instruction!r}")
        self.state.vector.write(instruction.vd, result)
        return cycles


#: Instruction type -> handler, resolved once at import time.  Group
#: handlers (``_execute_mm`` etc.) keep the per-family semantics together;
#: the table removes the isinstance chains from the execution hot path.
_DISPATCH: Dict[type, Callable[[CoreExecutor, BaseInstruction], float]] = {
    LoadImmediate: CoreExecutor._execute_load_immediate,
    CsrWrite: CoreExecutor._execute_csr_write,
    Sync: CoreExecutor._execute_sync,
    MMLoad: CoreExecutor._execute_mm,
    MMStore: CoreExecutor._execute_mm,
    MMMul: CoreExecutor._execute_mm,
    MMZero: CoreExecutor._execute_mm,
    MVWeightLoad: CoreExecutor._execute_mv,
    MVMul: CoreExecutor._execute_mv,
    MVPrune: CoreExecutor._execute_mv,
    VLoad: CoreExecutor._execute_mv,
    VStore: CoreExecutor._execute_mv,
    VAdd: CoreExecutor._execute_vv,
    VMul: CoreExecutor._execute_vv,
    VMax: CoreExecutor._execute_vv,
    VRelu: CoreExecutor._execute_vv,
    VSilu: CoreExecutor._execute_vv,
    VConvert: CoreExecutor._execute_vv,
}
