"""Binary decoder: 32-bit instruction words back to instruction objects.

The decoder models the host core's role in the EdgeMM programming model:
it recognises the extended major opcodes, extracts the format fields and
reconstructs the instruction, which would then be dispatched to the
coprocessor over the direct-linked interface.
"""

from __future__ import annotations

from typing import List, Sequence

from .encoding import InstructionFormat, decode_fields
from .instructions import (
    BaseInstruction,
    CsrWrite,
    DECODE_TABLE,
    MMLoad,
    MMMul,
    MMStore,
    MMZero,
    MVMul,
    MVPrune,
    MVWeightLoad,
    Sync,
    VAdd,
    VConvert,
    VLoad,
    VMax,
    VMul,
    VRelu,
    VSilu,
    VStore,
)


class DecodeError(ValueError):
    """Raised when a word does not correspond to a known instruction."""


def decode(word: int) -> BaseInstruction:
    """Decode one 32-bit instruction word into an instruction object."""
    try:
        fmt, fields = decode_fields(word)
    except ValueError as exc:
        raise DecodeError(str(exc)) from exc
    func = fields["func"]
    cls = DECODE_TABLE.get((fmt, func))
    if cls is None:
        raise DecodeError(f"no instruction with func={func} in format {fmt.value}")
    return _rebuild(cls, fmt, fields)


def decode_program(words: Sequence[int]) -> List[BaseInstruction]:
    """Decode a sequence of instruction words."""
    return [decode(word) for word in words]


def _rebuild(cls, fmt: InstructionFormat, fields: dict) -> BaseInstruction:
    if cls is MMLoad:
        return MMLoad(md=fields["md"], rs=fields["ms1"] | (fields["uimm"] << 3))
    if cls is MMStore:
        return MMStore(ms=fields["md"], rs=fields["ms1"] | (fields["uimm"] << 3))
    if cls is MMMul:
        return MMMul(md=fields["md"], ms1=fields["ms1"], ms2=fields["ms2"])
    if cls is MMZero:
        return MMZero(md=fields["md"])
    if cls is MVWeightLoad:
        return MVWeightLoad(rs=fields["rs1"])
    if cls is MVMul:
        return MVMul(vd=fields["vd"], vs1=fields["vs1"])
    if cls is MVPrune:
        return MVPrune(vd=fields["vd"], vs1=fields["vs1"])
    if cls is VLoad:
        return VLoad(vd=fields["vd"], rs=fields["rs1"])
    if cls is VStore:
        return VStore(vs=fields["vd"], rs=fields["rs1"])
    if cls is VAdd:
        return VAdd(vd=fields["vd"], vs1=fields["vs1"], vs2=fields["vs2"])
    if cls is VMul:
        return VMul(vd=fields["vd"], vs1=fields["vs1"], vs2=fields["vs2"])
    if cls is VMax:
        return VMax(vd=fields["vd"], vs1=fields["vs1"], vs2=fields["vs2"])
    if cls is VRelu:
        return VRelu(vd=fields["vd"], vs1=fields["vs1"])
    if cls is VSilu:
        return VSilu(vd=fields["vd"], vs1=fields["vs1"])
    if cls is VConvert:
        return VConvert(vd=fields["vd"], vs1=fields["vs1"])
    if cls is CsrWrite:
        return CsrWrite(csr=fields["csr"], rs=fields["rs1"])
    if cls is Sync:
        return Sync()
    raise DecodeError(f"decoder has no rebuild rule for {cls.__name__}")
