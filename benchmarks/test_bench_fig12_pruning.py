"""Benchmark EXP-F12: activation-aware dynamic Top-k pruning (paper Fig. 12)."""

from repro.experiments import fig12_pruning


def run() -> fig12_pruning.Fig12Result:
    return fig12_pruning.run_fig12(n_tokens=4)


def test_bench_fig12_pruning(benchmark):
    result = benchmark(run)
    assert fig12_pruning.first_layer_is_not_pruned(result)
    assert fig12_pruning.pruning_ratio_increases_with_depth(result)
    assert fig12_pruning.dynamic_tracks_mild_fixed_ratio(result)
    assert fig12_pruning.aggressive_fixed_ratio_fails_shallow_layers(result)
    print()
    print(fig12_pruning.format_report(result))
