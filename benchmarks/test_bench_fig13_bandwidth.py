"""Benchmark EXP-F13: bandwidth management and batch decoding (paper Fig. 13)."""

from repro.experiments import fig13_bandwidth_mgmt


def run() -> fig13_bandwidth_mgmt.Fig13Result:
    return fig13_bandwidth_mgmt.run_fig13()


def test_bench_fig13_bandwidth(benchmark):
    result = benchmark(run)
    assert fig13_bandwidth_mgmt.reallocation_helps_long_outputs(result)
    assert fig13_bandwidth_mgmt.short_outputs_keep_equal_sharing(result)
    assert fig13_bandwidth_mgmt.batching_boosts_long_output_throughput(result)
    print()
    print(fig13_bandwidth_mgmt.format_report(result))
