"""Benchmark EXP-F10: design configuration, area and power (paper Fig. 10)."""

from repro.experiments import fig10_config


def run() -> fig10_config.Fig10Result:
    return fig10_config.run_fig10()


def test_bench_fig10_config(benchmark):
    result = benchmark(run)
    assert fig10_config.configuration_matches_paper(result)
    assert fig10_config.coprocessors_dominate_core_area(result)
    print()
    print(fig10_config.format_report(result))
