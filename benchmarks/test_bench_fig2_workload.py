"""Benchmark EXP-F2: workload analysis of two MLLMs (paper Fig. 2).

Regenerates the latency breakdown, per-phase statistics and DRAM-access
breakdown for SPHINX-Tiny and KarmaVLM, and prints the paper-style report.
"""

from repro.experiments import fig2_workload


def run() -> fig2_workload.Fig2Result:
    return fig2_workload.run_fig2(output_lengths=(8, 32, 128, 512))


def test_bench_fig2_workload(benchmark):
    result = benchmark(run)
    # Shape checks mirroring the paper's observations.
    for model in ("sphinx-tiny", "karmavlm"):
        assert fig2_workload.decode_share_increases(result, model)
    assert fig2_workload.ffn_dominates_memory(result, "sphinx-tiny")
    print()
    print(fig2_workload.format_report(result))
