"""Benchmark the macro-stepping engine against the per-step oracle.

The acceptance criterion of the macro engine (`repro.serving.engine`): on
a 100,000-request mixed trace — steady interactive Poisson traffic with a
long-tailed output-length mix — compressing constant-composition decode
runs must beat the one-Python-iteration-per-step loop by >= 10x
wall-clock while producing ``==``-identical ``RequestRecord``s and
identical peak-batch/decode-step counters.

Both engines run with identically seeded cost caches (harvested from an
untimed warm-up run): the caches are engine-independent and only move
work, so the measured gap is the decode-loop compression, not a caching
artefact.

Feeds ``BENCH_results.json`` (via ``benchmarks/run.py``) with the
``serving_macro_100k`` scenario, which records the speedup ratio.
"""

import time

from repro.models.mllm import get_mllm
from repro.serving import (
    ContinuousBatchingSimulator,
    PoissonArrivals,
    RequestSampler,
    build_trace,
)

N_REQUESTS = 100_000
N_TARGET_SPEEDUP = 10
RATE_RPS = 0.5
MAX_BATCH_SIZE = 16


def bench_trace():
    """The 100k-request mixed trace: Poisson arrivals, long-tail outputs."""
    sampler = RequestSampler(
        seed=42,
        images=1,
        prompt_token_range=(16, 64),
        output_token_choices=(32, 64, 128, 256, 512),
        output_token_weights=(0.25, 0.3, 0.25, 0.15, 0.05),
    )
    return build_trace(
        PoissonArrivals(RATE_RPS, seed=42).generate(N_REQUESTS),
        sampler.sample(N_REQUESTS),
    )


def _measure():
    """(macro result, step result, macro seconds, step seconds)."""
    model = get_mllm("sphinx-tiny")
    trace = bench_trace()

    # Untimed warm-up fills the engine-independent cost memos once; both
    # timed chips then start from identical caches.
    warm = ContinuousBatchingSimulator(
        model=model, max_batch_size=MAX_BATCH_SIZE, engine="macro"
    )
    warm.run(trace)

    def seeded(engine):
        chip = ContinuousBatchingSimulator(
            model=model, max_batch_size=MAX_BATCH_SIZE, engine=engine
        )
        chip.seed_cc_latencies(warm.cc_latencies())
        chip.cost_model.seed_bucket_costs(warm.cost_model.bucket_costs())
        chip.cost_model.seed_step_cache(warm.cost_model.step_cache())
        return chip

    macro_chip = seeded("macro")
    start = time.perf_counter()
    macro = macro_chip.run(trace)
    macro_seconds = time.perf_counter() - start

    step_chip = seeded("step")
    start = time.perf_counter()
    step = step_chip.run(trace)
    step_seconds = time.perf_counter() - start
    return macro, step, macro_seconds, step_seconds


def run_macro_100k() -> dict:
    """Time both engines on the 100k trace and report the speedup ratio."""
    macro, step, macro_seconds, step_seconds = _measure()
    return {
        "requests": N_REQUESTS,
        "decode_steps": macro.decode_steps,
        "identical_records": macro.records == step.records,
        "macro_seconds": macro_seconds,
        "step_seconds": step_seconds,
        "speedup": step_seconds / macro_seconds,
    }


def test_bench_macro_engine_10x_over_per_step_loop():
    macro, step, macro_seconds, step_seconds = _measure()

    # Identity first: the speedup is worthless if a single record moved.
    assert macro.records == step.records
    assert macro.peak_batch_size == step.peak_batch_size
    assert macro.decode_steps == step.decode_steps
    assert len(macro.records) == N_REQUESTS

    speedup = step_seconds / macro_seconds
    print(
        f"\nmacro engine: {macro_seconds:.2f} s | per-step loop: "
        f"{step_seconds:.2f} s | speedup {speedup:.1f}x over "
        f"{macro.decode_steps} decode steps"
    )
    assert speedup >= N_TARGET_SPEEDUP, (
        f"macro-engine speedup {speedup:.1f}x below the "
        f"{N_TARGET_SPEEDUP}x target"
    )


SCENARIOS = {
    "serving_macro_100k": run_macro_100k,
}
