"""Benchmark EXP-F3: FFN activation sparsity across layers (paper Fig. 3)."""

from repro.experiments import fig3_sparsity


def run() -> fig3_sparsity.Fig3Result:
    return fig3_sparsity.run_fig3(n_tokens=4)


def test_bench_fig3_sparsity(benchmark):
    result = benchmark(run)
    assert fig3_sparsity.outliers_become_more_prominent(result)
    assert fig3_sparsity.most_channels_are_negligible(result)
    print()
    print(fig3_sparsity.format_report(result))
