"""Benchmark: ablation sweeps over the design choices called out in DESIGN.md.

Not a paper figure — these quantify the sensitivity of the headline results
to the pruning threshold, the assumed DRAM bandwidth, the systolic-array
aspect ratio and the CC:MC cluster mix.
"""

from repro.experiments import ablations


def run() -> ablations.AblationResult:
    return ablations.AblationResult(
        threshold_rows=ablations.pruning_threshold_ablation(
            thresholds=(8.0, 16.0, 32.0), n_tokens=1, d_ffn=128
        ),
        bandwidth_rows=ablations.dram_bandwidth_ablation(),
        geometry_rows=ablations.systolic_geometry_ablation(),
        mix_rows=ablations.cluster_mix_ablation(),
    )


def test_bench_ablations(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert ablations.larger_threshold_prunes_less(result.threshold_rows)
    assert ablations.decode_scales_with_bandwidth(result.bandwidth_rows)
    assert ablations.mixed_clusters_beat_homogeneous(result.mix_rows)
    print()
    print(ablations.format_report(result))
