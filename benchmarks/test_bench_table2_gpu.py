"""Benchmark EXP-T2: EdgeMM vs mobile GPU comparison (paper Table II)."""

from repro.experiments import table2_gpu_comparison


def run() -> table2_gpu_comparison.Table2Result:
    return table2_gpu_comparison.run_table2()


def test_bench_table2_gpu(benchmark):
    result = benchmark(run)
    assert table2_gpu_comparison.edgemm_beats_gpu(result)
    assert table2_gpu_comparison.pruning_widens_the_gap(result)
    assert table2_gpu_comparison.pruned_speedup_in_paper_ballpark(result)
    print()
    print(table2_gpu_comparison.format_report(result))
