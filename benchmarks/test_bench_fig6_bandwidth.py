"""Benchmark EXP-F6: effective bandwidth vs transfer size (paper Fig. 6(b))."""

from repro.experiments import fig6_bandwidth


def run() -> fig6_bandwidth.Fig6Result:
    return fig6_bandwidth.run_fig6()


def test_bench_fig6_bandwidth(benchmark):
    result = benchmark(run)
    assert fig6_bandwidth.bandwidth_is_monotonic(result)
    assert fig6_bandwidth.small_transfers_lose_bandwidth(result)
    assert fig6_bandwidth.mc_buffers_recover_bandwidth(result)
    print()
    print(fig6_bandwidth.format_report(result))
