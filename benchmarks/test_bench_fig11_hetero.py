"""Benchmark EXP-F11: homogeneous vs heterogeneous designs (paper Fig. 11)."""

from repro.experiments import fig11_hetero


def run() -> fig11_hetero.Fig11Result:
    return fig11_hetero.run_fig11()


def test_bench_fig11_hetero(benchmark):
    result = benchmark(run)
    assert fig11_hetero.hetero_wins_full_mllm(result)
    assert fig11_hetero.homo_designs_win_their_phases(result)
    assert fig11_hetero.all_extensions_beat_baseline(result)
    print()
    print(fig11_hetero.format_report(result))
