"""Benchmark harness: time every scenario and write ``BENCH_results.json``.

Each ``benchmarks/test_bench_*.py`` module doubles as a pytest-benchmark
test and a plain scenario provider:

* modules exposing a ``SCENARIOS`` mapping (name -> zero-argument callable)
  contribute one timed scenario per entry;
* every other module contributes its module-level ``run()`` under the
  module's stem (``test_bench_serving`` -> ``serving``).

The harness times each scenario with ``time.perf_counter`` (best of
``--repeats`` runs, default 1) and writes ``BENCH_results.json`` next to
this file: scenario -> seconds (plus any JSON-friendly dict the scenario
returned), with machine info, so the performance trajectory is tracked
across PRs — CI uploads the file as an artifact.

``--check`` additionally compares the fresh run against the *committed*
``BENCH_results.json`` (read before it is overwritten) and exits non-zero
when any scenario regressed beyond ``REGRESSION_FACTOR`` x its committed
seconds — the CI benchmarks job runs in this mode.  A missing baseline
file, or a scenario not yet in the baseline (a just-added benchmark),
warns and passes instead of failing: the gate guards committed numbers,
it must not block the PR that introduces them.  Compare like with like:
the factor absorbs machine-class jitter, not a change of machine class
(see docs/performance.md).

Run with:  PYTHONPATH=src python benchmarks/run.py [--only SUBSTRING] [--check]
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Tuple

BENCH_DIR = Path(__file__).resolve().parent
DEFAULT_OUTPUT = BENCH_DIR / "BENCH_results.json"

#: ``--check`` fails when a scenario's fresh seconds exceed this multiple
#: of its committed seconds.  Generous on purpose: it flags order-of-
#: magnitude regressions (a lost fast path), not benchmarking noise.
REGRESSION_FACTOR = 2.0

#: Scenarios whose *committed* seconds sit below this floor are exempt
#: from ``--check``: at sub-millisecond scale, 2x is scheduler jitter and
#: timer granularity, not a regression (a real lost fast path pushes the
#: scenario far past the floor, where the factor applies again).
MIN_CHECK_SECONDS = 0.05

#: Record keys ``--check`` never treats as workload-shape metadata:
#: ``seconds`` is the measurement itself and ``module`` names the source
#: file.  Every *other* non-float detail a scenario records — counts,
#: engine names, flags such as ``candidates`` or ``identical_records``,
#: and whatever future benchmarks add (per-tenant tallies, fault-event
#: counts) — is compared against the committed baseline without being
#: listed by hand.  Float details are excluded because they are derived
#: measurements (``speedup``, ``wave_seconds``) whose run-to-run jitter
#: would warn spuriously.  Drift warns rather than fails — an intentional
#: workload change lands together with its refreshed baseline.
RESERVED_RECORD_KEYS = frozenset({"seconds", "module"})


def discover_scenarios() -> List[Tuple[str, str, Callable[[], object]]]:
    """All (scenario name, module file, callable) triples, sorted by name."""
    scenarios: List[Tuple[str, str, Callable[[], object]]] = []
    for path in sorted(BENCH_DIR.glob("test_bench_*.py")):
        spec = importlib.util.spec_from_file_location(f"bench_{path.stem}", path)
        module = importlib.util.module_from_spec(spec)
        sys.modules[spec.name] = module
        spec.loader.exec_module(module)
        declared = getattr(module, "SCENARIOS", None)
        if declared is not None:
            for name, fn in declared.items():
                scenarios.append((name, path.name, fn))
        elif hasattr(module, "run"):
            name = path.stem.replace("test_bench_", "")
            scenarios.append((name, path.name, module.run))
    return sorted(scenarios, key=lambda item: item[0])


def machine_info() -> Dict[str, object]:
    import multiprocessing

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": multiprocessing.cpu_count(),
    }


def _json_friendly(value: object) -> Dict[str, object]:
    """Scenario return values that are flat JSON-primitive dicts pass through."""
    if isinstance(value, dict) and all(
        isinstance(k, str) and isinstance(v, (str, int, float, bool, type(None)))
        for k, v in value.items()
    ):
        return dict(value)
    return {}


def time_scenario(fn: Callable[[], object], repeats: int) -> Tuple[float, Dict[str, object]]:
    """Best-of-``repeats`` wall-clock seconds plus any returned details."""
    best = float("inf")
    details: Dict[str, object] = {}
    for _ in range(max(repeats, 1)):
        started = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
        details = _json_friendly(value) or details
    return best, details


def run_benchmarks(
    *, only: str = "", repeats: int = 1, output: Path = DEFAULT_OUTPUT
) -> Dict[str, object]:
    """Time every (matching) scenario and write the results file."""
    scenarios = discover_scenarios()
    if only:
        scenarios = [item for item in scenarios if only in item[0]]
    if not scenarios:
        raise SystemExit(f"no benchmark scenario matches {only!r}")
    results: Dict[str, object] = {}
    for name, module_file, fn in scenarios:
        seconds, details = time_scenario(fn, repeats)
        record: Dict[str, object] = {"seconds": seconds, "module": module_file}
        record.update(details)
        results[name] = record
        print(f"{name:40s} {seconds:9.3f} s")
    report = {
        "machine": machine_info(),
        "repeats": max(repeats, 1),
        "scenarios": results,
    }
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {output}")
    return report


def check_regressions(
    fresh: Dict[str, object],
    baseline: Dict[str, object],
    *,
    factor: float = REGRESSION_FACTOR,
) -> List[str]:
    """Human-readable failures where ``fresh`` regressed past ``baseline``.

    Scenarios are compared by name; a scenario only in ``fresh`` (newly
    added) or only in ``baseline`` (removed) is not a regression, and
    scenarios whose committed seconds sit below ``MIN_CHECK_SECONDS`` are
    exempt (timer noise dominates there).  A failure means ``fresh
    seconds > committed seconds * factor``.
    """
    committed = baseline.get("scenarios", {})
    failures: List[str] = []
    for name, record in sorted(fresh.get("scenarios", {}).items()):
        base = committed.get(name)
        if base is None or base["seconds"] < MIN_CHECK_SECONDS:
            continue
        seconds = record["seconds"]
        budget = base["seconds"] * factor
        if seconds > budget:
            failures.append(
                f"{name}: {seconds:.3f} s vs committed {base['seconds']:.3f} s "
                f"(> {factor:.1f}x budget {budget:.3f} s)"
            )
    return failures


def baseline_warnings(
    fresh: Dict[str, object],
    baseline: Dict[str, object],
    *,
    only: str = "",
) -> List[str]:
    """Warnings where ``fresh`` and ``baseline`` scenario sets disagree.

    A scenario without committed seconds — typically one the current PR
    just added — cannot be regression-checked; it is reported so the gap
    is visible in the CI log, and the check passes (its fresh seconds
    enter the baseline once committed).  A committed scenario the fresh
    run no longer produces (removed or renamed) is reported too, so the
    baseline file cannot silently rot.  Both directions list names in
    sorted order, one warning per name, so successive CI logs diff
    cleanly.  ``only`` mirrors :func:`run_benchmarks`' substring filter:
    a filtered run only reports committed-but-missing names matching the
    filter — the rest were never asked to run.
    """
    committed = baseline.get("scenarios", {})
    current = fresh.get("scenarios", {})
    warnings = [
        f"{name}: no committed baseline; regression check skipped"
        for name in sorted(current)
        if name not in committed
    ]
    warnings.extend(
        f"{name}: committed baseline no longer produced by any benchmark; "
        "regression check skipped"
        for name in sorted(committed)
        if name not in current and only in name
    )
    return warnings


def metadata_warnings(
    fresh: Dict[str, object],
    baseline: Dict[str, object],
) -> List[str]:
    """Warnings where a scenario's workload-shape metadata drifted.

    Compares every non-reserved, non-float detail key a scenario records
    on *either* side (see :data:`RESERVED_RECORD_KEYS`), so newly added
    metadata — per-tenant tallies, fault-event counts — is covered without
    a hand-maintained key list.  A value mismatch means the timed work
    changed (shrunken space, warm cache, different pruning); a key present
    on only one side means the fresh run and the baseline no longer record
    the same workload shape.  Either way the seconds comparison is
    apples-to-oranges, so both warn.  Scenarios absent from the baseline
    are skipped entirely — :func:`baseline_warnings` reports those.
    """
    committed = baseline.get("scenarios", {})
    warnings: List[str] = []
    for name, record in sorted(fresh.get("scenarios", {}).items()):
        base = committed.get(name)
        if base is None:
            continue
        for key in sorted(set(record) | set(base)):
            values = [side[key] for side in (record, base) if key in side]
            if key in RESERVED_RECORD_KEYS or all(
                isinstance(v, float) for v in values
            ):
                continue
            if key not in base:
                warnings.append(
                    f"{name}: {key} recorded but absent from the committed "
                    "baseline; seconds may not be comparable"
                )
            elif key not in record:
                warnings.append(
                    f"{name}: {key} committed but absent from the fresh "
                    "run; seconds may not be comparable"
                )
            elif record[key] != base[key]:
                warnings.append(
                    f"{name}: {key} drifted from committed {base[key]!r} to "
                    f"{record[key]!r}; seconds are not comparable"
                )
    return warnings


def main(argv: List[str] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--only", default="", help="run only scenarios whose name contains this substring"
    )
    parser.add_argument(
        "--repeats", type=int, default=1, help="timing repeats per scenario (best is kept)"
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="result file path"
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) when any scenario regresses beyond "
        f"{REGRESSION_FACTOR:.0f}x its committed seconds",
    )
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_OUTPUT,
        help="committed results file --check compares against",
    )
    args = parser.parse_args(argv)
    baseline: Dict[str, object] = {}
    baseline_found = True
    if args.check:
        # Read before run_benchmarks possibly overwrites the same file.
        if args.baseline.exists():
            baseline = json.loads(args.baseline.read_text())
        else:
            baseline_found = False
            print(
                f"warning: --check baseline not found: {args.baseline}; "
                "running without a regression gate"
            )
    report = run_benchmarks(only=args.only, repeats=args.repeats, output=args.output)
    if args.check:
        if not baseline_found:
            print("\n--check passed: no committed baseline to compare against")
            return
        for warning in baseline_warnings(report, baseline, only=args.only):
            print(f"warning: {warning}")
        for warning in metadata_warnings(report, baseline):
            print(f"warning: {warning}")
        failures = check_regressions(report, baseline)
        if failures:
            print("\nbenchmark regressions beyond the committed budget:")
            for failure in failures:
                print(f"  {failure}")
            raise SystemExit(1)
        print(f"\n--check passed: no scenario beyond {REGRESSION_FACTOR:.0f}x committed")


if __name__ == "__main__":
    main()
