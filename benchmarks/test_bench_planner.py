"""Benchmark the capacity planner against brute-force exact search.

The acceptance criterion of the planner subsystem: on a ~200-point
candidate space (chip designs × fleet sizes), analytic lower-bound pruning
plus exact simulation of the surviving frontier must beat exhaustively
simulating every candidate by >= 10x wall-clock, while returning the same
best plan.

The space crosses 35 chip designs (group counts × CC:MC mixes) with 6
static fleet sizes — 210 candidates.  The TTFT objective is placed between
the analytic floors of the design family's two fastest *tiers*, so the
bound pass retires every design outside the fastest tier without
simulating it; brute force (``prune=False``) must grind through all 210
exact fleet simulations.  Both paths share the per-design warm-cache
optimisation, so the measured gap is the pruning win, not a caching
artefact.

Feeds ``BENCH_results.json`` (via ``benchmarks/run.py``) with both sides'
wall-clock under the ``planner_*`` scenarios.
"""

import time

import numpy as np

from repro.core.batch import batch_service_time_bounds
from repro.models.mllm import get_mllm
from repro.planner import ChipDesign, PlannerConfig, plan_scenario
from repro.scenarios import ArrivalSpec, FleetSpec, ScenarioSpec, SLOSpec, WorkloadComponent
from repro.scenarios.compile import compile_scenario

N_TARGET_SPEEDUP = 10


def bench_config() -> PlannerConfig:
    """The ~200-candidate space: 35 chip designs × 6 static fleet sizes."""
    grid = tuple(
        ChipDesign(n_groups=n_groups, cc_per_group=cc, mc_per_group=mc)
        for n_groups in (1, 2, 3, 4, 6)
        for cc, mc in ((1, 1), (2, 2), (3, 1), (1, 3), (2, 1), (1, 2), (3, 2))
    )
    return PlannerConfig(
        chip_grid=grid, min_chips=1, max_chips=6, include_autoscaled=False
    )


def bench_scenario(ttft_target: float = 1.0) -> ScenarioSpec:
    """A small mixed-traffic scenario (the SLO target is parameterized).

    Arrivals replay a sparse trace (one request per 2 s), so a fleet that
    keeps up serves every request queue-free and its exact p99 TTFT sits on
    the analytic floor — which lets the benchmark place the SLO target
    *between* design tiers and know exactly which designs meet it.
    """
    return ScenarioSpec(
        name="planner-bench",
        description="planner benchmark space",
        n_requests=48,
        mix=(
            WorkloadComponent(
                name="chat",
                images=0,
                prompt_token_range=(16, 160),
                output_token_choices=(32, 64, 128),
                output_token_weights=(0.5, 0.3, 0.2),
            ),
            WorkloadComponent(
                name="image",
                images=1,
                prompt_token_range=(8, 64),
                output_token_choices=(32, 64),
                output_token_weights=(0.6, 0.4),
            ),
        ),
        arrival=ArrivalSpec(
            kind="trace", times=tuple(round(i * 2.0, 6) for i in range(48))
        ),
        fleet=FleetSpec(n_chips=1, max_batch_size=8),
        slo=SLOSpec(ttft_p99_s=ttft_target),
    )


def discriminating_ttft_target(config: PlannerConfig) -> float:
    """A TTFT objective only the fastest design tier can reach.

    Placed halfway between the smallest and second-smallest *distinct*
    per-design p99 TTFT floors: pruning provably retires every slower
    tier, and the fastest tier (queue-free on the sparse trace) meets the
    target exactly.
    """
    spec = bench_scenario()
    compiled = compile_scenario(spec)
    bounds = batch_service_time_bounds(
        get_mllm(spec.fleet.model),
        list(compiled.unique_shapes),
        [design.system() for design in config.chip_grid],
        cc_bandwidth_fraction=spec.fleet.cc_bandwidth_fraction,
        context_bucket=spec.fleet.context_bucket,
    )
    columns = [bounds.shape_index(r.request) for r in compiled.trace]
    tiers = np.unique(np.percentile(bounds.min_ttft_s[:, columns], 99, axis=1))
    return float((tiers[0] + tiers[1]) / 2)


def run_planner() -> dict:
    """Time the pruning planner on the benchmark space."""
    config = bench_config()
    spec = bench_scenario(discriminating_ttft_target(config))
    start = time.perf_counter()
    report = plan_scenario(spec, config)
    seconds = time.perf_counter() - start
    return {
        "candidates": report.n_candidates,
        "pruned": report.n_pruned_candidates,
        "simulated": report.n_simulated,
        "planner_seconds": seconds,
    }


def test_bench_planner_10x_over_brute_force():
    config = bench_config()
    spec = bench_scenario(discriminating_ttft_target(config))

    # Untimed warm-up: pay the process-wide one-time costs (imports, numpy
    # dispatch, model catalogue) outside the timed region so neither side
    # inherits them — the comparison is pruning vs no pruning, nothing else.
    plan_scenario(spec, config)

    start = time.perf_counter()
    planned = plan_scenario(spec, config)
    planner_seconds = time.perf_counter() - start

    start = time.perf_counter()
    brute = plan_scenario(spec, config, prune=False)
    brute_seconds = time.perf_counter() - start

    assert planned.n_candidates >= 200
    assert brute.n_simulated == brute.n_candidates
    assert planned.n_simulated < planned.n_candidates / 4
    # Same verdict: pruning must not move the chosen plan.
    assert planned.best == brute.best
    assert planned.best is not None

    speedup = brute_seconds / planner_seconds
    print(
        f"\nplanner: {planner_seconds:.2f} s ({planned.n_simulated} simulated of "
        f"{planned.n_candidates}) | brute force: {brute_seconds:.2f} s | "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= N_TARGET_SPEEDUP, (
        f"planner speedup {speedup:.1f}x below the {N_TARGET_SPEEDUP}x target"
    )


SCENARIOS = {
    "planner_pruned_search_210": run_planner,
}
