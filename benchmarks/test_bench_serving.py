"""Benchmark the serving layer: requests simulated per wall-clock second."""

from repro.models.mllm import get_mllm
from repro.serving import (
    BurstyArrivals,
    ContinuousBatchingSimulator,
    RequestSampler,
    build_trace,
)

N_REQUESTS = 250


def run():
    model = get_mllm("sphinx-tiny")
    trace = build_trace(
        BurstyArrivals(2.5, seed=3).generate(N_REQUESTS),
        RequestSampler(seed=3).sample(N_REQUESTS),
    )
    chip = ContinuousBatchingSimulator(model=model, max_batch_size=16)
    return chip.run(trace)


def test_bench_serving(benchmark):
    result = benchmark(run)
    assert len(result.records) == N_REQUESTS
    assert result.peak_batch_size <= 16
    mean_s = benchmark.stats.stats.mean
    print()
    print(
        f"serving micro-benchmark: {N_REQUESTS} requests in {mean_s:.3f} s "
        f"-> {N_REQUESTS / mean_s:.0f} requests simulated per second"
    )
