"""Benchmark the wave engine on a million-request diurnal mixed trace.

The acceptance criterion of the wave engine (`repro.serving.engine`): a
1,000,000-request diurnal mixed trace — the diurnal-week workload mix
(text chat, multi-image, long context) over a full day-long sine cycle —
must finish in under 10 seconds single-process, with warm cost caches,
while producing ``==``-identical ``RequestRecord``s to the macro engine
on a 100,000-request equivalence sample of the same trace.

The trace is compiled straight to the columnar ``TRACE_DTYPE`` form via
``compile_scenario_chunks``: one million requests stream through in
100k-row chunks and no per-request ``ServingRequest`` objects are ever
materialised on the benchmark path (the equivalence sample rebuilds
objects for the macro engine only, since macro consumes object traces).

An untimed warm-up run fills the engine-independent cost memos first,
exactly as the macro benchmark does: caches only move work, so the
timed number measures the decode loop, not cost-model evaluation.

Feeds ``BENCH_results.json`` (via ``benchmarks/run.py``) with the
``serving_wave_1M`` scenario, which records the wall-clock seconds of
the timed wave run and the sample-identity verdict.
"""

import time
from dataclasses import replace

from repro.models.mllm import get_mllm
from repro.scenarios import compile_scenario_chunks, get_scenario
from repro.serving import ContinuousBatchingSimulator
from repro.serving.trace import array_to_trace, concat_trace_arrays

N_REQUESTS = 1_000_000
TIME_BUDGET_S = 10.0
SAMPLE_REQUESTS = 100_000
CHUNK_SIZE = 100_000
RATE_RPS = 400.0
PERIOD_S = 86_400.0
MAX_BATCH_SIZE = 64
CONTEXT_BUCKET = 4096


def bench_spec():
    """The diurnal-week mix scaled to one million requests over a day."""
    base = get_scenario("diurnal-week")
    return replace(
        base,
        n_requests=N_REQUESTS,
        arrival=replace(base.arrival, rate_rps=RATE_RPS, period_s=PERIOD_S),
    )


def bench_array():
    """Stream-compile the 1M-request trace straight to columnar form."""
    chunks = compile_scenario_chunks(bench_spec(), chunk_size=CHUNK_SIZE)
    return concat_trace_arrays([chunk.array for chunk in chunks])


def _chip(engine, donor=None):
    chip = ContinuousBatchingSimulator(
        model=get_mllm("sphinx-tiny"),
        max_batch_size=MAX_BATCH_SIZE,
        context_bucket=CONTEXT_BUCKET,
        engine=engine,
    )
    if donor is not None:
        chip.seed_cc_latencies(donor.cc_latencies())
        chip.cost_model.seed_bucket_costs(donor.cost_model.bucket_costs())
        chip.cost_model.seed_step_cache(donor.cost_model.step_cache())
    return chip


def _measure():
    """(wave result, wave seconds, sample identity, sample seconds)."""
    array = bench_array()

    # Untimed warm-up fills the engine-independent cost memos once; the
    # timed run then measures the decode loop alone.
    warm = _chip("wave")
    warm.run(array)

    timed = _chip("wave", donor=warm)
    start = time.perf_counter()
    wave = timed.run(array)
    wave_seconds = time.perf_counter() - start

    # Equivalence sample: macro (object trace) vs wave (columnar) on the
    # first 100k requests, from identical caches.
    sample = array[:SAMPLE_REQUESTS]
    wave_sample = _chip("wave", donor=warm).run(sample)
    macro_chip = _chip("macro", donor=warm)
    start = time.perf_counter()
    macro_sample = macro_chip.run(array_to_trace(sample))
    sample_seconds = time.perf_counter() - start
    identical = (
        macro_sample.records == wave_sample.records
        and macro_sample.peak_batch_size == wave_sample.peak_batch_size
        and macro_sample.decode_steps == wave_sample.decode_steps
    )
    return wave, wave_seconds, identical, sample_seconds


def run_wave_1m() -> dict:
    """Time the 1M-request wave run and report the identity verdict."""
    wave, wave_seconds, identical, sample_seconds = _measure()
    return {
        "requests": N_REQUESTS,
        "decode_steps": wave.decode_steps,
        "peak_batch_size": wave.peak_batch_size,
        "wave_seconds": wave_seconds,
        "time_budget_s": TIME_BUDGET_S,
        "identical_records": identical,
        "sample_requests": SAMPLE_REQUESTS,
        "macro_sample_seconds": sample_seconds,
    }


def test_bench_wave_engine_1m_under_10s():
    wave, wave_seconds, identical, _ = _measure()

    # Identity first: the speed is worthless if a single record moved.
    assert identical
    assert len(wave.records) == N_REQUESTS

    print(
        f"\nwave engine: {wave_seconds:.2f} s for {N_REQUESTS} requests "
        f"({wave.decode_steps} decode steps, peak batch "
        f"{wave.peak_batch_size})"
    )
    assert wave_seconds < TIME_BUDGET_S, (
        f"wave engine took {wave_seconds:.2f} s on the 1M-request trace; "
        f"the budget is {TIME_BUDGET_S:.0f} s"
    )


SCENARIOS = {
    "serving_wave_1M": run_wave_1m,
}
