"""Benchmark the array-native batch engine on a 1,000-point design sweep.

The sweep crosses chip geometry (groups x CC:MC mix) with DRAM bandwidth
shares — the grid shape of the fig10/fig11 surroundings and the ablation
studies.  The scalar path simulates one point at a time through
``PerformanceSimulator``; the batch engine prices the whole grid as
broadcasted NumPy passes over a compiled op table.

Two scenarios feed ``BENCH_results.json`` (via ``benchmarks/run.py``):

* ``design_sweep_batch_1000`` — all 1,000 points through the batch engine,
  including materialising every ``WorkloadResult``;
* ``design_sweep_scalar_100`` — a 100-point sample of the same grid through
  the scalar loop (the full 1,000 would dominate harness time; per-point
  cost is flat, so the extrapolation is honest).

The pytest test asserts the headline acceptance criterion: >= 50x speedup
on the 1,000-point sweep, with batch results bit-identical to the scalar
loop on the sampled points.
"""

import time
from typing import List, Tuple

from repro.core.batch import batch_run_request
from repro.core.config import SystemConfig, scaled_system
from repro.core.simulator import PerformanceSimulator
from repro.models.mllm import InferenceRequest, get_mllm

N_POINTS = 1000
SCALAR_SAMPLE = 100
MODEL_NAME = "sphinx-tiny"
REQUEST = InferenceRequest(images=1, prompt_text_tokens=32, output_tokens=64)


def design_grid() -> Tuple[List[SystemConfig], List[float]]:
    """1,000 distinct (geometry, bandwidth fraction) design points."""
    systems: List[SystemConfig] = []
    fractions: List[float] = []
    for n_groups in (1, 2, 3, 4, 5):
        for cc in range(5):
            for mc in range(5):
                if cc == 0 and mc == 0:
                    continue
                for step in range(9):
                    systems.append(scaled_system(n_groups, cc, mc))
                    fractions.append(0.1 + 0.1 * step)
    return systems[:N_POINTS], fractions[:N_POINTS]


def run_batch() -> dict:
    """Price all N_POINTS design points through the batch engine."""
    systems, fractions = design_grid()
    model = get_mllm(MODEL_NAME)
    batch = batch_run_request(model, REQUEST, systems, bandwidth_fraction=fractions)
    results = batch.results()
    assert len(results) == N_POINTS
    return {"points": N_POINTS, "engine": "batch"}


def run_scalar_sample() -> dict:
    """Price a SCALAR_SAMPLE-point sample through the scalar simulator."""
    systems, fractions = design_grid()
    model = get_mllm(MODEL_NAME)
    for system, fraction in zip(systems[:SCALAR_SAMPLE], fractions[:SCALAR_SAMPLE]):
        simulator = PerformanceSimulator(system)
        workload = model.build_workload(REQUEST)
        simulator.execute_workload(
            workload,
            output_tokens=REQUEST.output_tokens,
            bandwidth_fraction=fraction,
        )
    return {"points": SCALAR_SAMPLE, "engine": "scalar"}


SCENARIOS = {
    "design_sweep_batch_1000": run_batch,
    "design_sweep_scalar_100": run_scalar_sample,
}


def test_bench_batch_sweep_50x_and_identical():
    """The acceptance benchmark: >= 50x on 1,000 points, results identical."""
    systems, fractions = design_grid()
    model = get_mllm(MODEL_NAME)

    started = time.perf_counter()
    batch = batch_run_request(model, REQUEST, systems, bandwidth_fraction=fractions)
    batch_results = batch.results()
    batch_seconds = time.perf_counter() - started

    started = time.perf_counter()
    scalar_results = []
    for system, fraction in zip(systems[:SCALAR_SAMPLE], fractions[:SCALAR_SAMPLE]):
        simulator = PerformanceSimulator(system)
        workload = model.build_workload(REQUEST)
        scalar_results.append(
            simulator.execute_workload(
                workload,
                output_tokens=REQUEST.output_tokens,
                bandwidth_fraction=fraction,
            )
        )
    scalar_sample_seconds = time.perf_counter() - started

    assert batch_results[:SCALAR_SAMPLE] == scalar_results

    scalar_full_estimate = scalar_sample_seconds * (N_POINTS / SCALAR_SAMPLE)
    speedup = scalar_full_estimate / batch_seconds
    print()
    print(
        f"batch: {N_POINTS} points in {batch_seconds:.3f} s | scalar: "
        f"{SCALAR_SAMPLE} points in {scalar_sample_seconds:.3f} s "
        f"(-> {scalar_full_estimate:.1f} s for {N_POINTS}) | speedup {speedup:.0f}x"
    )
    assert speedup >= 50, f"batch engine speedup {speedup:.1f}x below the 50x target"
