"""Benchmark branch-and-bound planning on a 10^5-candidate space.

The acceptance criterion of the PR-7 planner scale-up: on a >= 100,000
candidate space (chip geometry × CC:MC mix × DRAM tier × pruning keep
fraction × fleet size), branch-and-bound search must beat the flat
prune+simulate path by >= 20x wall-clock while returning the identical
best plan *and* the identical Pareto frontier — and a repeat run against a
warm content-addressed plan store must perform zero exact simulations.

The space crosses 8 group counts × 12 mixes × 36 DRAM tiers × 36 keep
fractions = 124,416 chip designs (one static fleet option each).  The
TTFT and latency objectives are each placed between the two smallest
distinct per-design floors, so flat search must price all 124,416 designs
while branch-and-bound retires whole subgrids from corner evaluations (a
few hundred in total; the surviving designs are the corner of every mix —
the mixes tie at the memory-dominated corner, so one survivor per mix).
The workload keeps the request-shape alphabet tiny (one prompt length,
three output lengths) so the per-design bound cost — what both sides pay
per evaluation — is small and the measured gap is the search strategy,
not shape-table compilation.

Monotonicity makes the discriminating targets cheap to find: the best
design of each mix is its subgrid's corner (max groups, max DRAM, min
keep), and the second-best design overall is either another mix's corner
or an immediate axis-neighbor of the winning corner — ~15 bound
evaluations instead of 124,416.

Feeds ``BENCH_results.json`` (via ``benchmarks/run.py``) under the
``planner_bnb_100k`` scenario, with the candidate/pruned/simulated counts
the harness's metadata-drift check watches.
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.planner import ChipDesign, PlannerConfig, PlanStore, plan_scenario
from repro.planner.prune import bound_percentiles, trace_pricer
from repro.scenarios import ArrivalSpec, FleetSpec, ScenarioSpec, SLOSpec, WorkloadComponent
from repro.scenarios.compile import compile_scenario

N_TARGET_SPEEDUP = 20
N_MIN_CANDIDATES = 100_000

#: The chip axes of the benchmark space, each sorted ascending.  Group
#: counts stop at 8, and every mix keeps one CC cluster per group: the
#: prefill bound saturates once a design fields ~8 CC clusters in total,
#: so wider CC mixes would tie whole (mix × groups) tiers at the global
#: optimum and bloat the survivor set the benchmark must simulate.
GROUPS = (1, 2, 3, 4, 5, 6, 7, 8)
MIXES = tuple((1, mc) for mc in range(1, 13))
DRAM_GBPS = tuple(round(51.2 + 5.12 * i, 2) for i in range(36))
KEEP_FRACTIONS = tuple(round(0.4 + 0.017 * i, 4) for i in range(36))


def bench_config() -> PlannerConfig:
    """The 124,416-candidate space: 8 × 12 × 36 × 36 chip designs."""
    return PlannerConfig.from_axes(
        groups=GROUPS,
        mixes=MIXES,
        dram_gbps=DRAM_GBPS,
        keep_fractions=KEEP_FRACTIONS,
        min_chips=1,
        max_chips=1,
        include_autoscaled=False,
    )


def bench_scenario(
    ttft_target: float = 1.0, latency_target: float = 10.0
) -> ScenarioSpec:
    """A sparse-trace scenario with a tiny request-shape alphabet.

    One request per 2 s, a single prompt length and three output lengths:
    a fleet that keeps up serves queue-free, so the exact p99 TTFT sits on
    the analytic floor and the benchmark can place the SLO target between
    design tiers knowing exactly which designs meet it.
    """
    return ScenarioSpec(
        name="planner-bnb-bench",
        description="branch-and-bound planner benchmark space",
        n_requests=48,
        mix=(
            WorkloadComponent(
                name="chat",
                images=0,
                prompt_token_range=(64, 64),
                output_token_choices=(32, 64, 128),
                output_token_weights=(0.5, 0.3, 0.2),
            ),
        ),
        arrival=ArrivalSpec(
            kind="trace", times=tuple(round(i * 2.0, 6) for i in range(48))
        ),
        fleet=FleetSpec(n_chips=1, max_batch_size=8),
        slo=SLOSpec(ttft_p99_s=ttft_target, latency_p95_s=latency_target),
    )


def discriminating_targets() -> tuple:
    """(TTFT, latency) objectives only the per-mix corner designs reach.

    Monotonicity along every boxed axis means each mix's best design is
    its subgrid corner, and the runner-up overall is either another mix's
    corner or an immediate axis-neighbor of the winning corner — so the
    two smallest distinct floors of each metric (and their midpoints)
    fall out of ~15 bound evaluations instead of the full 124,416-design
    grid.  Both objectives are needed: the TTFT floor discriminates the
    geometry axes while the latency floor discriminates the decode-side
    DRAM and keep-fraction axes.
    """
    compiled = compile_scenario(bench_scenario())
    pricer = trace_pricer(compiled)
    columns = pricer.trace_columns(compiled.trace)

    def corner(mix, *, groups=GROUPS[-1], dram=DRAM_GBPS[-1], keep=KEEP_FRACTIONS[0]):
        return ChipDesign(
            n_groups=groups,
            cc_per_group=mix[0],
            mc_per_group=mix[1],
            dram_gbps=dram,
            keep_fraction=keep,
        )

    corners = [corner(mix) for mix in MIXES]
    corner_ttft, corner_lat = bound_percentiles(pricer, columns, corners)
    best_mix = MIXES[int(np.argmin(corner_ttft))]
    neighbors = [
        corner(best_mix, groups=GROUPS[-2]),
        corner(best_mix, dram=DRAM_GBPS[-2]),
        corner(best_mix, keep=KEEP_FRACTIONS[1]),
    ]
    neighbor_ttft, neighbor_lat = bound_percentiles(pricer, columns, neighbors)

    def midpoint(values_a, values_b):
        tiers = np.unique(np.concatenate([values_a, values_b]))
        assert len(tiers) >= 2, "benchmark space collapsed to one bound tier"
        return float((tiers[0] + tiers[1]) / 2)

    return (
        midpoint(corner_ttft, neighbor_ttft),
        midpoint(corner_lat, neighbor_lat),
    )


def run_planner_bnb() -> dict:
    """Time branch-and-bound planning of the 124,416-candidate space."""
    config = bench_config()
    spec = bench_scenario(*discriminating_targets())
    start = time.perf_counter()
    report = plan_scenario(spec, config, search="bnb")
    seconds = time.perf_counter() - start
    return {
        "candidates": report.n_candidates,
        "pruned": report.n_pruned_candidates,
        "simulated": report.n_simulated,
        "bound_evals": report.n_bound_evals,
        "subgrids_pruned": report.n_pruned_subgrids,
        "planner_seconds": seconds,
    }


def test_bench_planner_bnb_20x_over_flat():
    config = bench_config()
    spec = bench_scenario(*discriminating_targets())

    # Untimed warm-up on the bnb side: pay the process-wide one-time costs
    # (imports, numpy dispatch, model catalogue) outside the timed region.
    plan_scenario(spec, config, search="bnb")

    start = time.perf_counter()
    bnb = plan_scenario(spec, config, search="bnb")
    bnb_seconds = time.perf_counter() - start

    start = time.perf_counter()
    flat = plan_scenario(spec, config, search="flat")
    flat_seconds = time.perf_counter() - start

    assert bnb.n_candidates >= N_MIN_CANDIDATES
    # Identical verdict: same best plan AND same Pareto frontier.
    assert bnb.best is not None
    assert bnb.best == flat.best
    assert bnb.frontier == flat.frontier
    assert bnb.n_simulated == flat.n_simulated
    assert bnb.n_pruned_designs == flat.n_pruned_designs
    # The win must come from pricing a tiny fraction of the design grid.
    assert bnb.n_bound_evals < bnb.n_chip_designs / 100

    speedup = flat_seconds / bnb_seconds
    print(
        f"\nbnb: {bnb_seconds:.2f} s ({bnb.n_bound_evals} bound evals, "
        f"{bnb.n_pruned_subgrids} subgrids pruned) | flat: {flat_seconds:.2f} s "
        f"({flat.n_chip_designs} designs priced) | speedup {speedup:.1f}x"
    )
    assert speedup >= N_TARGET_SPEEDUP, (
        f"bnb speedup {speedup:.1f}x below the {N_TARGET_SPEEDUP}x target"
    )


def test_bench_planner_bnb_warm_store_zero_simulations():
    config = bench_config()
    spec = bench_scenario(*discriminating_targets())
    with tempfile.TemporaryDirectory() as tmp:
        store = PlanStore(Path(tmp))
        cold = plan_scenario(spec, config, search="bnb", store=store)
        assert cold.store_hits == 0
        assert cold.store_misses == cold.n_simulated > 0

        warm = plan_scenario(spec, config, search="bnb", store=store)
        assert warm.n_simulated == 0, "warm store must skip every simulation"
        assert warm.store_misses == 0
        assert warm.store_hits == cold.n_simulated
        assert warm.best == cold.best
        assert warm.frontier == cold.frontier


SCENARIOS = {
    "planner_bnb_100k": run_planner_bnb,
}
